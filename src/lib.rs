//! # quadranet
//!
//! A pure-Rust reproduction of *"Computational and Storage Efficient Quadratic
//! Neurons for Deep Neural Networks"* (DATE 2024, arXiv:2306.07294).
//!
//! The workspace implements the paper's efficient quadratic neuron
//! `y = xᵀQᵏΛᵏ(Qᵏ)ᵀx + wᵀx + b` with vectorized output `{y, fᵏ}`, every
//! comparator neuron family from the paper's Table I, and the full training
//! substrate (tensors, reverse-mode autodiff, layers, optimizers, synthetic
//! datasets, ResNets and Transformers) needed to regenerate each table and
//! figure of the evaluation section.
//!
//! This umbrella crate re-exports the member crates under stable names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`parallel`] | `qn-parallel` | std-only worker pool: `par_chunks_mut`/`par_map`/`par_join` |
//! | [`simd`] | `qn-simd` | vectorized kernel layer: runtime SIMD dispatch + determinism tiers |
//! | [`tensor`] | `qn-tensor` | dense `f32` tensors, matmul, im2col convolution |
//! | [`linalg`] | `qn-linalg` | symmetric eigendecomposition, spectral top-k |
//! | [`autograd`] | `qn-autograd` | tape-based reverse-mode differentiation + tape-free eager execution |
//! | [`nn`] | `qn-nn` | layers, losses, optimizers, LR schedules |
//! | [`core`] | `qn-core` | the paper's neuron + all comparator neurons |
//! | [`data`] | `qn-data` | synthetic CIFAR / ImageNet / translation data |
//! | [`models`] | `qn-models` | ResNet family, Transformer, `InferenceSession` |
//! | [`metrics`] | `qn-metrics` | accuracy, BLEU, parameter/MAC counting |
//! | [`experiments`] | `qn-experiments` | per-table / per-figure harnesses |
//! | [`serve`] | `qn-serve` | std-only HTTP serving: dynamic batching, backpressure, hot-swap |
//!
//! Every layer's forward pass is written once against the
//! [`Exec`](autograd::Exec) execution context and runs in **two modes**:
//! on the autograd tape ([`Graph`](autograd::Graph)) for training, or
//! tape-free on an [`EagerExec`](autograd::EagerExec) arena for inference
//! (wrapped by [`InferenceSession`](models::InferenceSession) for serving).
//!
//! # Quickstart
//!
//! Training (tape mode): build a [`Graph`](autograd::Graph), run the
//! forward pass, backpropagate.
//!
//! ```
//! use quadranet::core::neurons::EfficientQuadraticLinear;
//! use quadranet::autograd::Graph;
//! use quadranet::nn::Module;
//! use quadranet::tensor::Tensor;
//!
//! # fn main() -> Result<(), quadranet::tensor::TensorError> {
//! // A layer of efficient quadratic neurons: 8 inputs, rank k = 3,
//! // 2 neurons, each emitting k + 1 = 4 channels -> 8 outputs.
//! let mut rng = quadranet::tensor::Rng::seed_from(7);
//! let layer = EfficientQuadraticLinear::new(8, 2, 3, &mut rng);
//! let mut g = Graph::training(0);
//! let x = g.leaf(Tensor::randn(&[4, 8], &mut rng));
//! let y = layer.forward(&mut g, x);
//! assert_eq!(g.value(y).shape().dims(), &[4, 8]);
//! let sq = g.square(y);
//! let loss = g.sum_all(sq);
//! g.backward(loss); // gradients land in layer.params()
//! # Ok(())
//! # }
//! ```
//!
//! Inference (tape-free mode): wrap any model in an
//! [`InferenceSession`](models::InferenceSession) — no tape nodes, no
//! backward closures, a reusable activation arena across requests.
//!
//! ```
//! use quadranet::core::NeuronSpec;
//! use quadranet::models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
//! use quadranet::tensor::{Rng, Tensor};
//!
//! let net = ResNet::cifar(ResNetConfig {
//!     depth: 8,
//!     base_width: 4,
//!     num_classes: 10,
//!     neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
//!     placement: NeuronPlacement::All,
//!     seed: 0,
//! });
//! let mut rng = Rng::seed_from(1);
//! // validate untrusted request shapes instead of panicking:
//! let mut session = InferenceSession::with_sample_shape(&net, &[3, 16, 16]);
//! let logits = session
//!     .try_predict(&Tensor::randn(&[3, 16, 16], &mut rng))
//!     .expect("shape was validated");
//! assert_eq!(logits.shape().dims(), &[10]);
//! assert!(session.try_predict(&Tensor::zeros(&[1, 8, 8])).is_err());
//! ```
//!
//! # Scaling
//!
//! The hot kernels (matmul family, conv2d, pooling, the fused inference
//! kernels, batched inference and data-parallel training) run on the
//! [`parallel`] worker pool, sized from `QN_NUM_THREADS` (default:
//! [`std::thread::available_parallelism`]; `QN_NUM_THREADS=1` disables
//! parallelism). Work is only ever split into disjoint output regions with
//! sequential per-unit accumulation, so **results are bit-identical at any
//! thread count** — `predict_batch` on one thread and on eight produce the
//! same bits, which the workspace's property suites assert. Training with
//! `TrainConfig::grad_shards > 1` shards each mini-batch across the pool
//! and accumulates gradients in shard order (deterministic per shard
//! count; batch norm then uses per-shard statistics, the standard
//! unsynchronized data-parallel semantics).
pub use qn_autograd as autograd;
pub use qn_core as core;
pub use qn_data as data;
pub use qn_experiments as experiments;
pub use qn_linalg as linalg;
pub use qn_metrics as metrics;
pub use qn_models as models;
pub use qn_nn as nn;
pub use qn_parallel as parallel;
pub use qn_serve as serve;
pub use qn_simd as simd;
pub use qn_tensor as tensor;
