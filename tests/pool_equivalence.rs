//! Buffer-pool equivalence: pooled, slot-recycled execution must be
//! **bit-identical** to fresh-allocation execution.
//!
//! The recycling subsystem (the `BufferPool` free lists, the `EagerExec`
//! high-water-mark arena, the pooled GEMM packing scratch, the `Graph`
//! backward reclamation) hands kernels buffers with stale contents; the
//! contract is that every consumer fully overwrites (or zero-fills) what it
//! reads back out. These properties enforce the contract with
//! `Tensor::bit_identical` across random inputs, both `Exec` contexts,
//! 1-vs-N threads, and warm vs cold pools — including pools deliberately
//! **poisoned with NaN**, so a single recycled element leaking into a
//! result flips the comparison.

use proptest::prelude::*;
use quadranet::autograd::{EagerExec, Exec, Graph, Var};
use quadranet::core::NeuronSpec;
use quadranet::models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
use quadranet::tensor::{BufferPool, Conv2dSpec, PoolSpec, Tensor};
use std::sync::Arc;

fn vals(numel: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, numel)
}

fn tiny_net(seed: u64) -> ResNet {
    ResNet::cifar(ResNetConfig {
        depth: 8,
        base_width: 4,
        num_classes: 10,
        neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
        placement: NeuronPlacement::All,
        seed,
    })
}

/// A mixed op chain covering every eager kernel family: elementwise,
/// broadcast, channel ops, shape ops, reductions, matmul/bmm, conv/pool,
/// norms, softmax, embedding and the fused composites.
fn op_gauntlet(cx: &mut dyn Exec, x4: &Tensor, w4: &Tensor, res3: &Tensor) -> Vec<Tensor> {
    let x = cx.leaf(x4.clone());
    let w = cx.leaf(w4.clone());
    let conv = cx.conv2d(x, w, Conv2dSpec::new(3, 1, 1));
    let bias = cx.leaf(Tensor::from_fn(&[4], |i| i as f32 * 0.3 - 0.5));
    let biased = cx.add_channel(conv, bias);
    let act = cx.relu(biased);
    let pooled = cx.max_pool2d(act, PoolSpec::new(2, 2));
    let avg = cx.avg_pool2d(act, PoolSpec::new(2, 2));
    let sum = cx.add(pooled, avg);
    let gap = cx.global_avg_pool(sum);
    let sq = cx.square(gap);
    let sm = cx.softmax_last(sq);
    let r3 = cx.leaf(res3.clone());
    let b1 = cx.slice_axis(r3, 0, 0, 1); // [1, 3, 6]
    let b2 = cx.slice_axis(r3, 0, 1, 2);
    let b2t = cx.permute(b2, &[0, 2, 1]); // [1, 6, 3]
    let bm = cx.bmm(b1, b2t); // [1, 3, 3]
    let cat = cx.concat(&[bm, b1], 2); // [1, 3, 9]
    let perm = cx.permute(cat, &[1, 0, 2]);
    let red = cx.sum_axis(perm, 1);
    let tot = cx.sum_all(red);
    let gamma = cx.leaf(Tensor::ones(&[6]));
    let beta = cx.leaf(Tensor::zeros(&[6]));
    let flat = cx.reshape(r3, &[2, 3, 6]);
    let ln = cx.layer_norm(flat, gamma, beta, 1e-5);
    let emb_w = cx.leaf(Tensor::from_fn(&[5, 3], |i| (i as f32).sin()));
    let emb = cx.embedding(emb_w, &[4, 0, 2]);
    [act, sm, red, tot, ln, emb]
        .into_iter()
        .map(|v| cx.value(v).clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Warm (slot-recycled, pool-backed) session output equals a cold
    /// fresh-session output bit-for-bit, request after request — with the
    /// session pool *and* the global pool poisoned with NaN between
    /// requests.
    #[test]
    fn pooled_predict_equals_fresh_even_when_poisoned(
        x in vals(3 * 12 * 12), seed in 0u64..50
    ) {
        let net = tiny_net(seed);
        let tx = Tensor::from_vec(x, &[3, 12, 12]).unwrap();
        let mut warm = InferenceSession::new(&net);
        // warm up the arena slots and every pool bucket
        let first = warm.predict(&tx);
        for round in 0..3 {
            // poison everything recycling can hand back: any kernel that
            // reads a recycled element before writing it surfaces as NaN
            warm.pool().poison_held(f32::NAN);
            BufferPool::global().poison_held(f32::NAN);
            let again = warm.predict(&tx);
            // cold reference: fresh session, fresh (empty) pool
            let mut cold = InferenceSession::new(&net);
            let reference = cold.predict(&tx);
            prop_assert!(again.bit_identical(&reference), "round {round}");
            prop_assert!(again.bit_identical(&first), "round {round} vs first");
            warm.recycle(again);
        }
    }

    /// The full eager op set, run twice through one recycled arena with
    /// different inputs, matches a fresh arena and the tape bit-for-bit.
    #[test]
    fn eager_arena_reuse_matches_fresh_and_tape(
        x1 in vals(2 * 3 * 8 * 8), x2 in vals(2 * 3 * 8 * 8),
        w in vals(4 * 3 * 3 * 3), r in vals(2 * 3 * 6)
    ) {
        let tw = Tensor::from_vec(w, &[4, 3, 3, 3]).unwrap();
        let tr = Tensor::from_vec(r, &[2, 3, 6]).unwrap();
        let tx1 = Tensor::from_vec(x1, &[2, 3, 8, 8]).unwrap();
        let tx2 = Tensor::from_vec(x2, &[2, 3, 8, 8]).unwrap();
        let mut arena = EagerExec::new();
        let _warm = op_gauntlet(&mut arena, &tx1, &tw, &tr);
        for tx in [&tx1, &tx2] {
            arena.reset();
            arena.pool().poison_held(f32::NAN);
            let warm = op_gauntlet(&mut arena, tx, &tw, &tr);
            let mut fresh = EagerExec::with_pool(Arc::new(BufferPool::new()));
            let cold = op_gauntlet(&mut fresh, tx, &tw, &tr);
            let mut tape = Graph::new();
            let taped = op_gauntlet(&mut tape, tx, &tw, &tr);
            for ((w, c), t) in warm.iter().zip(&cold).zip(&taped) {
                prop_assert!(w.bit_identical(c), "warm arena vs fresh arena");
                prop_assert!(w.bit_identical(t), "eager vs tape");
            }
        }
    }

    /// Pooled predict is bit-identical across thread counts (the recycled
    /// buffers must not perturb the parallel determinism contract).
    #[test]
    fn pooled_predict_bit_identical_across_thread_counts(
        x in vals(2 * 3 * 12 * 12), seed in 0u64..50
    ) {
        let net = tiny_net(seed);
        let tx = Tensor::from_vec(x, &[2, 3, 12, 12]).unwrap();
        let mut session = InferenceSession::new(&net);
        // warm in the parallel configuration, then poison and re-run
        let parallel = session.predict_batch(&tx);
        session.pool().poison_held(f32::NAN);
        let parallel2 = session.predict_batch(&tx);
        prop_assert!(parallel.bit_identical(&parallel2));
        let sequential = qn_parallel::with_max_threads(1, || {
            let mut s = InferenceSession::new(&net);
            s.predict_batch(&tx)
        });
        prop_assert!(parallel.bit_identical(&sequential));
    }

    /// A pooled training step (Graph::training_pooled + recycle_into)
    /// produces bit-identical gradients to unpooled graphs, on the first
    /// (cold) and second (warm, recycled-buffer) steps alike.
    #[test]
    fn pooled_backward_grads_match_unpooled(
        x in vals(4 * 3 * 8 * 8), seed in 0u64..50
    ) {
        let tx = Tensor::from_vec(x, &[4, 3, 8, 8]).unwrap();
        let targets = [0usize, 3, 1, 2];
        let step = |net: &ResNet, pool: Option<&Arc<BufferPool>>| -> Vec<Tensor> {
            let mut g = match pool {
                Some(p) => Graph::training_pooled(seed, Arc::clone(p)),
                None => Graph::training(seed),
            };
            let xv = g.leaf(tx.clone());
            let y = quadranet::nn::Module::forward(net, &mut g, xv);
            let loss = g.softmax_cross_entropy(y, &targets, 0.0);
            g.backward(loss);
            let grads: Vec<Tensor> = quadranet::nn::Module::params(net)
                .iter()
                .map(|p| {
                    let grad = p.grad();
                    p.zero_grad();
                    grad
                })
                .collect();
            if let Some(p) = pool {
                g.recycle_into(p);
            }
            grads
        };
        let net = tiny_net(seed);
        let pool = Arc::new(BufferPool::new());
        for round in 0..2 {
            let pooled = step(&net, Some(&pool));
            // poisoning between steps must not change the next step either
            pool.poison_held(f32::NAN);
            let fresh = step(&net, None);
            prop_assert_eq!(pooled.len(), fresh.len());
            for (pg, fg) in pooled.iter().zip(&fresh) {
                prop_assert!(pg.bit_identical(fg), "round {}", round);
            }
        }
    }
}

/// Non-property checks of the recycling bookkeeping itself.
#[test]
fn warm_pool_actually_recycles() {
    let net = tiny_net(3);
    let mut rng = quadranet::tensor::Rng::seed_from(9);
    let tx = Tensor::randn(&[3, 12, 12], &mut rng);
    let mut session = InferenceSession::new(&net);
    let y = session.predict(&tx);
    session.recycle(y);
    let before = session.pool().stats();
    let y = session.predict(&tx);
    session.recycle(y);
    let after = session.pool().stats();
    assert!(
        after.hits > before.hits,
        "second request must hit the pool ({before:?} -> {after:?})"
    );
    assert_eq!(
        after.misses, before.misses,
        "second request must not miss the pool"
    );
}

#[test]
fn take_and_reset_still_behave_on_the_slot_arena() {
    let mut e = EagerExec::new();
    let v = e.leaf(Tensor::ones(&[4]));
    let w: Var = e.relu(v);
    assert_eq!(e.len(), 2);
    let out = e.take(w);
    assert_eq!(out.data(), &[1.0, 1.0, 1.0, 1.0]);
    e.reset();
    assert!(e.is_empty());
    let v2 = e.leaf_view(&Tensor::zeros(&[2]));
    assert_eq!(e.value(v2).data(), &[0.0, 0.0]);
}
