//! Transformer integration: training improves BLEU over the untrained
//! model, quadratic projections train end to end, and the four Table II
//! evaluation settings are internally consistent.

use quadranet::data::{TranslationConfig, TranslationDataset};
use quadranet::experiments::{train_transformer, TransformerTrainConfig};
use quadranet::metrics::bleu::{corpus_bleu, Tokenization};
use quadranet::models::{Transformer, TransformerConfig};

fn tiny_model(data: &TranslationDataset, quadratic_rank: Option<usize>, seed: u64) -> Transformer {
    Transformer::new(TransformerConfig {
        src_vocab: data.src_vocab_len(),
        tgt_vocab: data.tgt_vocab_len(),
        d_model: 16,
        heads: 2,
        enc_layers: 1,
        dec_layers: 1,
        d_ff: 32,
        quadratic_rank,
        max_len: 32,
        dropout: 0.0,
        seed,
    })
}

#[test]
fn training_improves_bleu_over_untrained() {
    let data = TranslationDataset::generate(TranslationConfig {
        train_pairs: 80,
        test_pairs: 10,
        min_clauses: 1,
        max_clauses: 1,
        seed: 21,
    });
    // untrained model: decode and score
    let model = tiny_model(&data, Some(3), 23);
    let max_len = data.max_len() + 4;
    let untrained_hyp: Vec<String> = data
        .test
        .iter()
        .map(|p| data.detokenize_target(&model.greedy_decode(&p.source, max_len)))
        .collect();
    let refs: Vec<String> = data
        .test
        .iter()
        .map(|p| data.detokenize_target(&p.target))
        .collect();
    let untrained = corpus_bleu(&untrained_hyp, &refs, Tokenization::Thirteen, true);

    let result = train_transformer(
        &model,
        &data,
        TransformerTrainConfig {
            epochs: 4,
            batch_size: 16,
            seed: 25,
            ..TransformerTrainConfig::default()
        },
    );
    let trained = corpus_bleu(&result.hypotheses, &refs, Tokenization::Thirteen, true);
    assert!(
        trained > untrained + 1.0,
        "training must improve BLEU: {untrained} -> {trained}"
    );
    // loss decreased monotonically-ish
    assert!(result.losses.last().unwrap() < &result.losses[0]);
}

#[test]
fn uncased_bleu_never_below_cased() {
    let hyp = vec!["der hund läuft.".to_string(), "Ein Haus groß!".to_string()];
    let refs = vec!["Der Hund läuft.".to_string(), "ein Haus groß!".to_string()];
    for scheme in [Tokenization::Thirteen, Tokenization::International] {
        let cased = corpus_bleu(&hyp, &refs, scheme, true);
        let uncased = corpus_bleu(&hyp, &refs, scheme, false);
        assert!(uncased >= cased, "{scheme:?}: {uncased} < {cased}");
    }
}

#[test]
fn quadratic_and_linear_models_have_comparable_params_at_same_width() {
    let data = TranslationDataset::generate(TranslationConfig {
        train_pairs: 4,
        test_pairs: 1,
        ..TranslationConfig::default()
    });
    let lin = tiny_model(&data, None, 1);
    let quad = tiny_model(&data, Some(3), 1);
    let ratio = quad.param_count() as f64 / lin.param_count() as f64;
    assert!(ratio > 0.9 && ratio < 1.1, "ratio {ratio}");
    // and the quadratic model exposes a non-empty lambda group
    assert!(!quad.param_groups().0.is_empty());
    assert!(lin.param_groups().0.is_empty());
}
