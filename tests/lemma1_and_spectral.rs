//! Cross-crate property tests for the paper's mathematical claims:
//! Lemma 1 (symmetrization preserves the quadratic form), the spectral
//! rank-k truncation (Eckart–Young optimality) and the compression
//! pipeline built on them.

use proptest::prelude::*;
use quadranet::core::compress::{compress_general_layer, compression_error};
use quadranet::core::neurons::GeneralQuadraticLinear;
use quadranet::linalg::{eigh, quadratic_form, spectral_top_k, symmetrize};
use quadranet::nn::Module;
use quadranet::tensor::{Rng, Tensor};

fn tensor_from(values: &[f32], n: usize) -> Tensor {
    Tensor::from_vec(values[..n * n].to_vec(), &[n, n]).expect("sizes consistent")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 1: xᵀMx == xᵀ((M+Mᵀ)/2)x for arbitrary M and x.
    #[test]
    fn lemma1_symmetrization_preserves_form(
        values in prop::collection::vec(-2.0f32..2.0, 36),
        xs in prop::collection::vec(-2.0f32..2.0, 6),
    ) {
        let m = tensor_from(&values, 6);
        let s = symmetrize(&m);
        let x = Tensor::from_vec(xs, &[6]).expect("sizes consistent");
        let a = quadratic_form(&x, &m);
        let b = quadratic_form(&x, &s);
        prop_assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0), "{a} vs {b}");
    }

    /// Eigendecomposition reconstructs the symmetrized matrix and its
    /// eigenvalues are magnitude-sorted.
    #[test]
    fn eigh_reconstructs_and_sorts(values in prop::collection::vec(-1.5f32..1.5, 25)) {
        let s = symmetrize(&tensor_from(&values, 5));
        let e = eigh(&s, 200);
        prop_assert!(e.reconstruct().allclose(&s, 2e-2));
        for w in e.values.windows(2) {
            prop_assert!(w[0].abs() >= w[1].abs() - 1e-5);
        }
    }

    /// Rank-k spectral truncation error never increases with k, and the
    /// rank-k error is optimal vs a random projection of the same rank.
    #[test]
    fn eckart_young_truncation(values in prop::collection::vec(-1.0f32..1.0, 36), seed in 0u64..1000) {
        let s = symmetrize(&tensor_from(&values, 6));
        let mut prev = f32::INFINITY;
        for k in 1..=6usize {
            let err = s.sub(&spectral_top_k(&s, k).reconstruct()).frob_norm();
            prop_assert!(err <= prev + 1e-4, "error increased at k={k}");
            prev = err;
        }
        // optimality vs a random orthonormal basis at k=2
        let mut rng = Rng::seed_from(seed);
        let q = quadranet::linalg::random_orthonormal(6, 2, &mut rng);
        let core = q.matmul_transa(&s.matmul(&q));
        let proj = q.matmul(&core).matmul_transb(&q);
        let rand_err = s.sub(&proj).frob_norm();
        let opt_err = s.sub(&spectral_top_k(&s, 2).reconstruct()).frob_norm();
        prop_assert!(opt_err <= rand_err + 1e-3);
    }
}

#[test]
fn compression_pipeline_end_to_end() {
    let mut rng = Rng::seed_from(5);
    let src = GeneralQuadraticLinear::new(10, 3, &mut rng);
    let mut prev = f32::INFINITY;
    for k in [1usize, 3, 5, 10] {
        let compressed = compress_general_layer(&src, k);
        let err = compression_error(&src, &compressed);
        assert!(err <= prev + 1e-4, "compression error increased at k={k}");
        prev = err;
        // parameter reduction is monotone in k too
        assert!(compressed.param_count() < src.param_count() || k == 10);
    }
    assert!(
        prev < 1e-2,
        "full-rank compression must be exact, err={prev}"
    );
}
