//! End-to-end training integration tests: the full pipeline (data →
//! model → loss → backward → optimizer → evaluation) learns, and the
//! quadratic neuron demonstrates its expressivity advantage on a
//! second-order task.

use quadranet::autograd::Graph;
use quadranet::core::neurons::EfficientQuadraticLinear;
use quadranet::core::NeuronSpec;
use quadranet::data::synthetic_cifar10;
use quadranet::experiments::{train_classifier, TrainConfig};
use quadranet::metrics::accuracy;
use quadranet::models::{NeuronPlacement, ResNet, ResNetConfig};
use quadranet::nn::{Linear, Module, Sgd, SgdConfig};
use quadranet::tensor::{Rng, Tensor};

#[test]
fn resnet_beats_chance_on_synthetic_cifar() {
    let data = synthetic_cifar10(8, 12, 6, 1);
    let net = ResNet::cifar(ResNetConfig {
        depth: 8,
        base_width: 4,
        num_classes: 10,
        neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
        placement: NeuronPlacement::All,
        seed: 2,
    });
    let result = train_classifier(
        &net,
        &data,
        TrainConfig {
            epochs: 4,
            batch_size: 24,
            augment: false,
            seed: 3,
            ..TrainConfig::default()
        },
    );
    assert!(!result.diverged);
    assert!(
        result.test_accuracy > 0.2,
        "expected above-chance accuracy, got {}",
        result.test_accuracy
    );
    // loss decreased
    assert!(result.curve.last().unwrap().loss < result.curve[0].loss);
}

/// Same-mean / different-covariance task: a linear model is information-
/// theoretically stuck at chance; one quadratic layer solves it. This is
/// the paper's expressivity argument in its purest form.
#[test]
fn quadratic_layer_solves_covariance_task_linear_cannot() {
    let dim = 6;
    let sample = |n: usize, rng: &mut Rng| -> (Tensor, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            for d in 0..dim {
                let scale = if class == 0 {
                    1.0
                } else if d % 2 == 0 {
                    2.0
                } else {
                    0.5
                };
                data.push(rng.normal() * scale);
            }
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, dim]).unwrap(), labels)
    };
    let mut rng = Rng::seed_from(11);
    let (train_x, train_y) = sample(400, &mut rng);
    let (test_x, test_y) = sample(200, &mut rng);

    // baseline: a PURE linear softmax classifier. Both classes are
    // zero-mean and symmetric, so its Bayes-optimal accuracy is 50%.
    let run = |quadratic: bool, rng: &mut Rng| -> f32 {
        let quad = EfficientQuadraticLinear::new(dim, 4, 3, rng);
        let head_in = if quadratic { quad.out_features() } else { dim };
        let head = Linear::new(head_in, 2, true, rng);
        let mut params = head.params();
        if quadratic {
            params.extend(quad.params());
        }
        let (lambda, other) = quadranet::core::split_lambda_params(params);
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        opt.add_group(other, None, None);
        if !lambda.is_empty() {
            opt.add_group(lambda, Some(3e-2), None);
        }
        for epoch in 0..60 {
            let mut g = Graph::training(epoch);
            let x = g.leaf(train_x.clone());
            let h = if quadratic {
                quad.forward(&mut g, x)
            } else {
                x
            };
            let logits = head.forward(&mut g, h);
            let loss = g.softmax_cross_entropy(logits, &train_y, 0.0);
            g.backward(loss);
            opt.step(1.0);
            opt.zero_grad();
        }
        let mut g = Graph::new();
        let x = g.leaf(test_x.clone());
        let h = if quadratic {
            quad.forward(&mut g, x)
        } else {
            x
        };
        let logits = head.forward(&mut g, h);
        accuracy(g.value(logits), &test_y)
    };

    let quad_acc = run(true, &mut rng);
    let lin_acc = run(false, &mut rng);
    assert!(
        quad_acc > 0.75,
        "quadratic should largely solve the covariance task, got {quad_acc}"
    );
    assert!(
        lin_acc < 0.65,
        "a pure linear classifier must stay near chance, got {lin_acc}"
    );
    assert!(
        quad_acc > lin_acc + 0.15,
        "quadratic {quad_acc} should clearly beat linear {lin_acc}"
    );
}

#[test]
fn lambda_learning_rate_group_changes_lambda_slowly() {
    // with Λ-lr = 0, Λ must stay at its initialization while other params move
    let data = synthetic_cifar10(8, 4, 2, 5);
    let net = ResNet::cifar(ResNetConfig {
        depth: 8,
        base_width: 4,
        num_classes: 10,
        neuron: NeuronSpec::EfficientQuadratic { rank: 2 },
        placement: NeuronPlacement::All,
        seed: 7,
    });
    let (lambda, _) = net.param_groups();
    let before: Vec<Tensor> = lambda.iter().map(|p| p.value()).collect();
    let _ = train_classifier(
        &net,
        &data,
        TrainConfig {
            epochs: 1,
            batch_size: 16,
            lambda_lr: 0.0,
            augment: false,
            seed: 9,
            ..TrainConfig::default()
        },
    );
    for (p, b) in lambda.iter().zip(before.iter()) {
        assert!(p.value().allclose(b, 1e-7), "lambda moved despite lr=0");
    }
}
