//! Determinism under parallelism: every parallel kernel must produce
//! **bit-identical** results at any thread count, because work is only ever
//! split into disjoint output regions with sequential per-unit accumulation
//! (see the `qn-parallel` crate docs for the contract).
//!
//! Each property runs the same computation with the pool capped to one
//! thread (`with_max_threads(1)`) and uncapped, then compares the outputs
//! bit-for-bit. Under `QN_NUM_THREADS=1` both sides are sequential and the
//! comparison is trivial; CI also runs the suite with the cap unset so the
//! parallel path is exercised wherever the host has cores.

use proptest::prelude::*;
use quadranet::autograd::{EagerExec, Exec, Graph};
use quadranet::core::NeuronSpec;
use quadranet::models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
use quadranet::tensor::{Conv2dSpec, Tensor};

fn vals(numel: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, numel)
}

fn tiny_net(seed: u64) -> ResNet {
    ResNet::cifar(ResNetConfig {
        depth: 8,
        base_width: 4,
        num_classes: 10,
        neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
        placement: NeuronPlacement::All,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Sizes are chosen above the kernels' parallel thresholds (e.g.
    // 48·32·40 MACs > 32k) so the pool path actually engages when the host
    // has more than one thread.

    #[test]
    fn matmul_bit_identical_across_thread_counts(
        a in vals(48 * 32), b in vals(32 * 40)
    ) {
        let ta = Tensor::from_vec(a, &[48, 32]).unwrap();
        let tb = Tensor::from_vec(b, &[32, 40]).unwrap();
        let parallel = ta.matmul(&tb);
        let sequential = qn_parallel::with_max_threads(1, || ta.matmul(&tb));
        prop_assert!(parallel.bit_identical(&sequential));
    }

    #[test]
    fn matmul_trans_variants_bit_identical_across_thread_counts(
        a in vals(32 * 48), b in vals(32 * 40)
    ) {
        let ta = Tensor::from_vec(a, &[32, 48]).unwrap();
        let tb = Tensor::from_vec(b, &[32, 40]).unwrap();
        let pa = ta.matmul_transa(&tb);
        let sa = qn_parallel::with_max_threads(1, || ta.matmul_transa(&tb));
        prop_assert!(pa.bit_identical(&sa));
        let tbt = Tensor::from_vec(tb.data().to_vec(), &[40, 32]).unwrap();
        let tat = Tensor::from_vec(ta.data().to_vec(), &[48, 32]).unwrap();
        let pb = tat.matmul_transb(&tbt);
        let sb = qn_parallel::with_max_threads(1, || tat.matmul_transb(&tbt));
        prop_assert!(pb.bit_identical(&sb));
    }

    #[test]
    fn fused_conv2d_bit_identical_across_thread_counts(
        x in vals(2 * 3 * 12 * 12), w in vals(8 * 3 * 3 * 3)
    ) {
        let tx = Tensor::from_vec(x, &[2, 3, 12, 12]).unwrap();
        let tw = Tensor::from_vec(w, &[8, 3, 3, 3]).unwrap();
        let spec = Conv2dSpec::new(3, 1, 1);
        let run = || {
            let mut e = EagerExec::new();
            let xv = e.leaf(tx.clone());
            let wv = e.leaf(tw.clone());
            let y = e.conv2d(xv, wv, spec);
            e.take(y)
        };
        let parallel = run();
        let sequential = qn_parallel::with_max_threads(1, run);
        prop_assert!(parallel.bit_identical(&sequential));
    }

    #[test]
    fn elementwise_map_bit_identical_across_thread_counts(
        x in vals(20_000)
    ) {
        // 20k elements exceeds the elementwise parallel threshold.
        let tx = Tensor::from_vec(x, &[20_000]).unwrap();
        let parallel = tx.map(|v| v.tanh() * 0.5 + v * v);
        let sequential = qn_parallel::with_max_threads(1, || tx.map(|v| v.tanh() * 0.5 + v * v));
        prop_assert!(parallel.bit_identical(&sequential));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn predict_batch_bit_identical_across_thread_counts(
        x in vals(6 * 3 * 16 * 16), seed in 0u64..4
    ) {
        let net = tiny_net(seed);
        let batch = Tensor::from_vec(x, &[6, 3, 16, 16]).unwrap();
        let mut session = InferenceSession::new(&net);
        let parallel = session.predict_batch(&batch);
        let sequential = qn_parallel::with_max_threads(1, || {
            let mut s = InferenceSession::new(&net);
            s.predict_batch(&batch)
        });
        prop_assert!(
            parallel.bit_identical(&sequential),
            "sharded predict_batch must match the unsharded result bit-for-bit"
        );
    }

    #[test]
    fn tape_eager_equivalence_holds_on_parallel_path(
        x in vals(4 * 3 * 16 * 16), seed in 0u64..4
    ) {
        // The PR 2 tape/eager equivalence property, re-asserted with the
        // parallel kernels engaged on both sides.
        let net = tiny_net(seed);
        let batch = Tensor::from_vec(x, &[4, 3, 16, 16]).unwrap();
        let mut g = Graph::new();
        let xv = g.leaf(batch.clone());
        let yv = quadranet::nn::Module::forward(&net, &mut g, xv);
        let taped = g.value(yv).clone();
        let mut session = InferenceSession::new(&net);
        let eager = session.predict_batch(&batch);
        prop_assert!(taped.allclose(&eager, 1e-6));
    }
}
