//! Integration tests across `qn-core`, `qn-nn` and `qn-models`: every
//! neuron family builds into the same architectures, runs, trains, and its
//! measured costs agree with the Table I formulas.

use proptest::prelude::*;
use quadranet::autograd::Graph;
use quadranet::core::complexity::NeuronFamily;
use quadranet::core::neurons::{EfficientQuadraticLinear, LowRankQuadraticLinear};
use quadranet::core::NeuronSpec;
use quadranet::models::{NeuronPlacement, ResNet, ResNetConfig};
use quadranet::nn::Module;
use quadranet::tensor::{Rng, Tensor};

fn all_specs() -> Vec<NeuronSpec> {
    vec![
        NeuronSpec::Linear,
        NeuronSpec::EfficientQuadratic { rank: 3 },
        NeuronSpec::EfficientQuadraticScalar { rank: 3 },
        NeuronSpec::LowRank { rank: 2 },
        NeuronSpec::Quad1,
        NeuronSpec::Quad2,
        NeuronSpec::Factorized,
        NeuronSpec::Kervolution {
            degree: 3,
            offset: 1.0,
        },
    ]
}

#[test]
fn every_family_builds_a_resnet_and_classifies() {
    let mut rng = Rng::seed_from(1);
    let x = Tensor::randn(&[2, 3, 12, 12], &mut rng);
    for spec in all_specs() {
        let net = ResNet::cifar(ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 7,
            neuron: spec,
            placement: NeuronPlacement::All,
            seed: 3,
        });
        // training mode: BatchNorm must normalize with batch statistics,
        // otherwise kervolution's powered activations saturate the softmax
        // and zero out gradients (the Fig. 6 pathology, tested separately)
        let mut g = Graph::training(0);
        let xv = g.leaf(x.clone());
        let y = net.forward(&mut g, xv);
        assert_eq!(
            g.value(y).shape().dims(),
            &[2, 7],
            "family {} wrong output",
            spec.label()
        );
        assert!(!g.value(y).has_non_finite(), "family {}", spec.label());
        // gradients flow to every parameter
        let loss = g.softmax_cross_entropy(y, &[0, 1], 0.0);
        g.backward(loss);
        let grads_nonzero = net
            .params()
            .iter()
            .filter(|p| p.grad().frob_norm() > 0.0)
            .count();
        assert!(
            grads_nonzero > net.params().len() / 2,
            "family {}: only {grads_nonzero}/{} params got gradient",
            spec.label(),
            net.params().len()
        );
        for p in net.params() {
            p.zero_grad();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Layer-measured MACs and params match the Table I closed forms for
    /// arbitrary (n, k, units, batch).
    #[test]
    fn costs_match_formulas(n in 4usize..40, k in 1usize..4, units in 1usize..4, batch in 1usize..4) {
        let mut rng = Rng::seed_from((n * 31 + k * 7 + units) as u64);
        let ours = EfficientQuadraticLinear::new(n, units, k, &mut rng);
        let c = ours.costs(&[batch, n]);
        let f = NeuronFamily::EfficientQuadratic.complexity(n as u64, k as u64);
        prop_assert_eq!(c.macs, batch as u64 * units as u64 * f.macs);
        prop_assert_eq!(
            ours.param_count() as u64,
            units as u64 * (f.params + 1) // + bias, excluded from Table I
        );

        let lowrank = LowRankQuadraticLinear::new(n, units, k, &mut rng);
        let lf = NeuronFamily::LowRank.complexity(n as u64, k as u64);
        prop_assert_eq!(lowrank.param_count() as u64, units as u64 * lf.params);
        prop_assert_eq!(lowrank.costs(&[batch, n]).macs, batch as u64 * units as u64 * lf.macs);
    }

    /// The symmetric factorization always stores strictly fewer parameters
    /// than the unsymmetric form of [18] at the same rank — the paper's
    /// halving claim.
    #[test]
    fn ours_always_cheaper_than_lowrank(n in 2usize..200, k in 1usize..10) {
        let k = k.min(n);
        let ours = NeuronFamily::EfficientQuadratic.complexity(n as u64, k as u64);
        let lr = NeuronFamily::LowRank.complexity(n as u64, k as u64);
        prop_assert!(ours.params < lr.params);
        prop_assert!(ours.macs <= lr.macs + 2 * k as u64);
    }
}

#[test]
fn vectorized_output_orders_channels_per_neuron() {
    // channel layout [y, f1..fk] per neuron, verified against manual slices
    let mut rng = Rng::seed_from(9);
    let layer = EfficientQuadraticLinear::new(5, 2, 3, &mut rng);
    let x = Tensor::randn(&[1, 5], &mut rng);
    let mut g = Graph::new();
    let xv = g.leaf(x.clone());
    let out = layer.forward(&mut g, xv);
    assert_eq!(g.value(out).shape().dims(), &[1, 8]);
    // the f part of neuron 0 is columns 1..4 and must equal Q₀ᵀx
    let q = layer.params()[0].value();
    for i in 0..3 {
        let mut f = 0.0f32;
        for p in 0..5 {
            f += q.get(&[i, p]) * x.get(&[0, p]);
        }
        assert!((g.value(out).get(&[0, 1 + i]) - f).abs() < 1e-4);
    }
}
