//! # qn-metrics
//!
//! Evaluation metrics and reporting utilities for the reproduction:
//!
//! - [`accuracy`] / [`top_k_accuracy`] — classification metrics (Figs. 4–6).
//! - [`bleu`] — corpus BLEU with the paper's Table II evaluation settings:
//!   13a-style vs international tokenization, cased vs uncased.
//! - [`stats`] — quantiles/histograms for the parameter-distribution study
//!   (Fig. 7).
//! - [`pgm`] — grayscale image output for the response visualization
//!   (Fig. 8) plus a low/high-frequency energy split quantifying the
//!   paper's "quadratic responses are low-frequency" observation.

pub mod bleu;
pub mod pgm;
pub mod stats;

use qn_tensor::Tensor;

/// Top-1 accuracy of logits `[B, C]` against integer labels, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or the batch sizes differ.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), labels.len(), "batch size mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

/// Top-k accuracy of logits `[B, C]` against integer labels.
///
/// # Panics
///
/// Panics if `k == 0`, `logits` is not 2-D, or batch sizes differ.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f32 {
    assert!(k >= 1, "k must be positive");
    let (b, c) = logits.dims2();
    assert_eq!(b, labels.len(), "batch size mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let target = row[label];
        let better = row.iter().filter(|&&v| v > target).count();
        if better < k {
            correct += 1;
        }
    }
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn top_k_reduces_to_top1() {
        let logits = Tensor::from_vec(vec![0.5, 0.3, 0.2, 0.1, 0.7, 0.2], &[2, 3]).unwrap();
        assert_eq!(
            top_k_accuracy(&logits, &[0, 1], 1),
            accuracy(&logits, &[0, 1])
        );
        assert_eq!(top_k_accuracy(&logits, &[1, 2], 2), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[2, 0], 1), 0.0);
    }

    #[test]
    fn empty_batch_is_zero() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }
}
