//! # qn-metrics
//!
//! Evaluation metrics and reporting utilities for the reproduction:
//!
//! - [`accuracy`] / [`top_k_accuracy`] — classification metrics (Figs. 4–6).
//! - [`bleu`] — corpus BLEU with the paper's Table II evaluation settings:
//!   13a-style vs international tokenization, cased vs uncased.
//! - [`stats`] — quantiles/histograms for the parameter-distribution study
//!   (Fig. 7).
//! - [`pgm`] — grayscale image output for the response visualization
//!   (Fig. 8) plus a low/high-frequency energy split quantifying the
//!   paper's "quadratic responses are low-frequency" observation.

pub mod bleu;
pub mod pgm;
pub mod stats;

use qn_tensor::{Tensor, TensorError};

/// Top-1 accuracy of logits `[B, C]` against integer labels, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or the batch sizes differ.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), labels.len(), "batch size mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

/// Validating variant of [`accuracy`] for untrusted evaluation requests.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `logits` is not 2-D or the
/// batch sizes differ.
pub fn try_accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32, TensorError> {
    let dims = logits.shape().dims();
    if dims.len() != 2 || dims[0] != labels.len() {
        return Err(TensorError::ShapeMismatch {
            expected: vec![labels.len(), dims.last().copied().unwrap_or(0)],
            actual: dims.to_vec(),
        });
    }
    Ok(accuracy(logits, labels))
}

/// Top-k accuracy of logits `[B, C]` against integer labels.
///
/// # Panics
///
/// Panics if `k == 0`, `logits` is not 2-D, batch sizes differ, or any
/// label is `>= C`; use [`try_top_k_accuracy`] for untrusted input.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f32 {
    assert!(k >= 1, "k must be positive");
    let (b, c) = logits.dims2();
    assert_eq!(b, labels.len(), "batch size mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        // explicit contract instead of an anonymous slice-index panic
        assert!(label < c, "label {label} out of range for {c} classes");
        let row = &logits.data()[i * c..(i + 1) * c];
        let target = row[label];
        let better = row.iter().filter(|&&v| v > target).count();
        if better < k {
            correct += 1;
        }
    }
    correct as f32 / labels.len() as f32
}

/// Validating variant of [`top_k_accuracy`] for untrusted evaluation
/// requests.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on rank/batch mismatch,
/// [`TensorError::IndexOutOfRange`] if a label is `>= C` or `k == 0`.
pub fn try_top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> Result<f32, TensorError> {
    if k == 0 {
        return Err(TensorError::IndexOutOfRange { index: 0, bound: 1 });
    }
    let dims = logits.shape().dims();
    if dims.len() != 2 || dims[0] != labels.len() {
        return Err(TensorError::ShapeMismatch {
            expected: vec![labels.len(), dims.last().copied().unwrap_or(0)],
            actual: dims.to_vec(),
        });
    }
    let c = dims[1];
    if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
        return Err(TensorError::IndexOutOfRange {
            index: bad,
            bound: c,
        });
    }
    Ok(top_k_accuracy(logits, labels, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn top_k_reduces_to_top1() {
        let logits = Tensor::from_vec(vec![0.5, 0.3, 0.2, 0.1, 0.7, 0.2], &[2, 3]).unwrap();
        assert_eq!(
            top_k_accuracy(&logits, &[0, 1], 1),
            accuracy(&logits, &[0, 1])
        );
        assert_eq!(top_k_accuracy(&logits, &[1, 2], 2), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[2, 0], 1), 0.0);
    }

    #[test]
    fn empty_batch_is_zero() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }

    #[test]
    fn try_variants_reject_malformed_requests() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]).unwrap();
        assert!(try_accuracy(&logits, &[0, 1]).is_ok());
        assert!(matches!(
            try_accuracy(&logits, &[0]),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            try_accuracy(&Tensor::zeros(&[4]), &[0]),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(try_top_k_accuracy(&logits, &[0, 1], 1).is_ok());
        assert!(matches!(
            try_top_k_accuracy(&logits, &[0, 5], 1),
            Err(TensorError::IndexOutOfRange { index: 5, bound: 2 })
        ));
        assert!(matches!(
            try_top_k_accuracy(&logits, &[0, 1], 0),
            Err(TensorError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "label 7 out of range")]
    fn top_k_label_out_of_range_panics_clearly() {
        let logits = Tensor::zeros(&[1, 3]);
        top_k_accuracy(&logits, &[7], 1);
    }
}
