//! Grayscale PGM output and frequency-energy analysis for the response
//! visualization experiment (Fig. 8).

use qn_tensor::Tensor;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders a 2-D tensor as an ASCII PGM (P2) string, min–max normalized to
/// 0–255.
///
/// # Panics
///
/// Panics if `image` is not 2-D.
pub fn to_pgm(image: &Tensor) -> String {
    let (h, w) = image.dims2();
    let lo = image.min();
    let hi = image.max();
    let range = (hi - lo).max(1e-12);
    let mut out = String::new();
    let _ = writeln!(out, "P2\n{w} {h}\n255");
    for y in 0..h {
        let row: Vec<String> = (0..w)
            .map(|x| {
                let v = ((image.get(&[y, x]) - lo) / range * 255.0).round() as u32;
                v.min(255).to_string()
            })
            .collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

/// Writes a 2-D tensor to a PGM file.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
///
/// # Panics
///
/// Panics if `image` is not 2-D.
pub fn write_pgm(image: &Tensor, path: &Path) -> io::Result<()> {
    std::fs::write(path, to_pgm(image))
}

/// Splits an image's energy into low- and high-frequency halves using a
/// separable Haar-style decomposition: the low band is a 2×2 box-filtered
/// image, the high band the residual. Returns
/// `(low_energy, high_energy)` (sums of squares).
///
/// The paper's Fig. 8 observes that quadratic responses concentrate on
/// low-frequency shape information; this statistic quantifies that: a
/// higher `low / (low + high)` fraction means a smoother, shape-dominated
/// response.
///
/// # Panics
///
/// Panics if `image` is not 2-D or smaller than 2×2.
pub fn frequency_split(image: &Tensor) -> (f32, f32) {
    let (h, w) = image.dims2();
    assert!(h >= 2 && w >= 2, "image too small for frequency analysis");
    // centre the image so constant offsets do not dominate the low band
    let mean = image.mean();
    let centred = image.add_scalar(-mean);
    let mut low = Tensor::zeros(&[h, w]);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            let mut count = 0.0f32;
            for dy in 0..2 {
                for dx in 0..2 {
                    let yy = (y + dy).min(h - 1);
                    let xx = (x + dx).min(w - 1);
                    acc += centred.get(&[yy, xx]);
                    count += 1.0;
                }
            }
            low.set(&[y, x], acc / count);
        }
    }
    let high = centred.sub(&low);
    let le: f32 = low.data().iter().map(|&v| v * v).sum();
    let he: f32 = high.data().iter().map(|&v| v * v).sum();
    (le, he)
}

/// Fraction of energy in the low band, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `image` is not 2-D or smaller than 2×2.
pub fn low_frequency_fraction(image: &Tensor) -> f32 {
    let (le, he) = frequency_split(image);
    le / (le + he).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_tensor::Rng;

    #[test]
    fn pgm_header_and_range() {
        let img = Tensor::from_vec(vec![0.0, 0.5, 1.0, 0.25], &[2, 2]).unwrap();
        let pgm = to_pgm(&img);
        assert!(pgm.starts_with("P2\n2 2\n255"));
        assert!(pgm.contains("255"));
        assert!(pgm.contains("0"));
    }

    #[test]
    fn constant_image_does_not_divide_by_zero() {
        let img = Tensor::full(&[3, 3], 7.0);
        let pgm = to_pgm(&img);
        assert!(pgm.lines().count() >= 4);
    }

    #[test]
    fn smooth_image_is_low_frequency() {
        // smooth gradient vs checkerboard
        let smooth = Tensor::from_fn(&[8, 8], |i| (i / 8) as f32 / 8.0);
        let checker = Tensor::from_fn(&[8, 8], |i| ((i / 8 + i % 8) % 2) as f32);
        assert!(low_frequency_fraction(&smooth) > 0.8);
        assert!(low_frequency_fraction(&checker) < 0.4);
        assert!(low_frequency_fraction(&smooth) > low_frequency_fraction(&checker));
    }

    #[test]
    fn energy_is_conserved_between_bands() {
        let mut rng = Rng::seed_from(1);
        let img = Tensor::randn(&[6, 6], &mut rng);
        let (le, he) = frequency_split(&img);
        assert!(le >= 0.0 && he >= 0.0);
        assert!(le + he > 0.0);
    }

    #[test]
    fn write_pgm_round_trips_to_disk() {
        let img = Tensor::from_fn(&[4, 4], |i| i as f32);
        let dir = std::env::temp_dir().join("qn_pgm_test.pgm");
        write_pgm(&img, &dir).expect("write pgm");
        let content = std::fs::read_to_string(&dir).expect("read back");
        assert!(content.starts_with("P2"));
        let _ = std::fs::remove_file(&dir);
    }
}
