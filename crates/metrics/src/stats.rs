//! Distribution summaries for the parameter-distribution study (Fig. 7).

use qn_tensor::TensorError;

/// Summary statistics of a scalar sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f32,
    /// Sample standard deviation (population).
    pub std: f32,
    /// Minimum.
    pub min: f32,
    /// Maximum.
    pub max: f32,
    /// 5th percentile.
    pub p5: f32,
    /// Median.
    pub p50: f32,
    /// 95th percentile.
    pub p95: f32,
}

/// Computes summary statistics.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn summarize(values: &[f32]) -> Summary {
    assert!(!values.is_empty(), "cannot summarize an empty sample");
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Summary {
        mean,
        std: var.sqrt(),
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        p5: quantile(&sorted, 0.05),
        p50: quantile(&sorted, 0.50),
        p95: quantile(&sorted, 0.95),
    }
}

/// Validating variant of [`summarize`] for samples that may be empty
/// (e.g. a layer with no quadratic parameters in the Fig. 7 sweep).
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] if `values` is empty.
pub fn try_summarize(values: &[f32]) -> Result<Summary, TensorError> {
    if values.is_empty() {
        return Err(TensorError::EmptyInput { what: "sample" });
    }
    Ok(summarize(values))
}

/// Linear-interpolated quantile of a **sorted** sample, `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` out of range.
pub fn quantile(sorted: &[f32], q: f32) -> f32 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Fixed-width histogram over `[lo, hi]` with `bins` buckets; values outside
/// the range clamp to the edge buckets.
///
/// # Panics
///
/// Panics if `bins == 0` or `lo >= hi`.
pub fn histogram(values: &[f32], lo: f32, hi: f32, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    assert!(lo < hi, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f32;
    for &v in values {
        let idx = (((v - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.std - (2.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile(&sorted, 0.0), 0.0);
        assert_eq!(quantile(&sorted, 0.5), 5.0);
        assert_eq!(quantile(&sorted, 1.0), 10.0);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = histogram(&[-5.0, 0.1, 0.2, 0.6, 99.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![3, 2]); // -5 clamps low, 99 clamps high
        assert_eq!(h.iter().sum::<usize>(), 5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_summary_panics() {
        summarize(&[]);
    }

    #[test]
    fn try_summarize_reports_empty_input() {
        assert!(matches!(
            try_summarize(&[]),
            Err(TensorError::EmptyInput { what: "sample" })
        ));
        assert_eq!(try_summarize(&[1.0, 3.0]).unwrap().mean, 2.0);
    }
}
