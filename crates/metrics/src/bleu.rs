//! Corpus BLEU with the evaluation settings of the paper's Table II.

use std::collections::HashMap;

/// Tokenization scheme applied before n-gram matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tokenization {
    /// 13a-style: split ASCII punctuation off words (the mteval/sacrebleu
    /// default).
    Thirteen,
    /// International: split on Unicode category boundaries — every
    /// non-alphanumeric codepoint (ASCII or not) becomes its own token.
    International,
}

/// Tokenizes `s` under the given scheme; `cased == false` lowercases first.
pub fn tokenize(s: &str, scheme: Tokenization, cased: bool) -> Vec<String> {
    let text = if cased {
        s.to_string()
    } else {
        s.to_lowercase()
    };
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        let is_break = match scheme {
            Tokenization::Thirteen => ch.is_ascii_punctuation(),
            Tokenization::International => !ch.is_alphanumeric() && !ch.is_whitespace(),
        };
        if ch.is_whitespace() {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        } else if is_break {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            tokens.push(ch.to_string());
        } else {
            current.push(ch);
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

fn ngram_counts(tokens: &[String], n: usize) -> HashMap<&[String], usize> {
    let mut map: HashMap<&[String], usize> = HashMap::new();
    if tokens.len() >= n {
        for w in tokens.windows(n) {
            *map.entry(w).or_insert(0) += 1;
        }
    }
    map
}

/// Corpus-level BLEU-4 (percent, 0–100) with brevity penalty and add-one
/// smoothing for higher-order n-grams (Lin & Och smoothing-1), matching the
/// behaviour expected for short synthetic sentences.
///
/// # Panics
///
/// Panics if `hypotheses.len() != references.len()`.
pub fn corpus_bleu(
    hypotheses: &[String],
    references: &[String],
    scheme: Tokenization,
    cased: bool,
) -> f32 {
    assert_eq!(
        hypotheses.len(),
        references.len(),
        "hypothesis/reference count mismatch"
    );
    if hypotheses.is_empty() {
        return 0.0;
    }
    let hyp_tok: Vec<Vec<String>> = hypotheses
        .iter()
        .map(|h| tokenize(h, scheme, cased))
        .collect();
    let ref_tok: Vec<Vec<String>> = references
        .iter()
        .map(|r| tokenize(r, scheme, cased))
        .collect();

    let mut hyp_len = 0usize;
    let mut ref_len = 0usize;
    let mut matched = [0usize; 4];
    let mut total = [0usize; 4];
    for (h, r) in hyp_tok.iter().zip(ref_tok.iter()) {
        hyp_len += h.len();
        ref_len += r.len();
        for n in 1..=4 {
            let hc = ngram_counts(h, n);
            let rc = ngram_counts(r, n);
            for (gram, &count) in &hc {
                let clip = rc.get(gram).copied().unwrap_or(0);
                matched[n - 1] += count.min(clip);
            }
            total[n - 1] += h.len().saturating_sub(n - 1);
        }
    }
    if total[0] == 0 {
        return 0.0;
    }
    let mut log_precision = 0.0f64;
    for n in 0..4 {
        let (m, t) = if n == 0 {
            (matched[0] as f64, total[0] as f64)
        } else {
            // smoothing-1: add one to numerator and denominator for n > 1
            ((matched[n] + 1) as f64, (total[n] + 1) as f64)
        };
        if m == 0.0 {
            return 0.0;
        }
        log_precision += (m / t).ln() / 4.0;
    }
    let bp = if hyp_len >= ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / hyp_len.max(1) as f64).exp()
    };
    (bp * log_precision.exp() * 100.0) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_13a_splits_ascii_punct_only() {
        let t = tokenize("der Hund läuft.", Tokenization::Thirteen, true);
        assert_eq!(t, vec!["der", "Hund", "läuft", "."]);
        // international additionally has no effect here (no non-ASCII punct)
        let t2 = tokenize("große-Tür!", Tokenization::Thirteen, true);
        assert_eq!(t2, vec!["große", "-", "Tür", "!"]);
    }

    #[test]
    fn international_splits_unicode_punctuation() {
        let s = "Haus\u{201E}quote\u{201C}"; // German low/high quotes
        let thirteen = tokenize(s, Tokenization::Thirteen, true);
        let international = tokenize(s, Tokenization::International, true);
        assert!(international.len() > thirteen.len());
        assert!(international.contains(&"\u{201E}".to_string()));
    }

    #[test]
    fn uncased_lowercases() {
        let t = tokenize("Der Hund", Tokenization::Thirteen, false);
        assert_eq!(t, vec!["der", "hund"]);
    }

    #[test]
    fn perfect_hypothesis_scores_100() {
        let refs = vec!["der große Hund läuft schnell heute.".to_string()];
        let bleu = corpus_bleu(&refs, &refs, Tokenization::Thirteen, true);
        assert!((bleu - 100.0).abs() < 0.5, "bleu {bleu}");
    }

    #[test]
    fn disjoint_hypothesis_scores_0() {
        let hyp = vec!["aaa bbb ccc ddd".to_string()];
        let refs = vec!["www xxx yyy zzz".to_string()];
        assert_eq!(corpus_bleu(&hyp, &refs, Tokenization::Thirteen, true), 0.0);
    }

    #[test]
    fn hand_computed_unigram_case() {
        // hyp: "a b c d", ref: "a b x y": p1 = 2/4, p2 = (1+1)/(3+1),
        // p3 = (0+1)/(2+1), p4 = (0+1)/(1+1), BP = 1
        let hyp = vec!["a b c d".to_string()];
        let refs = vec!["a b x y".to_string()];
        let expected = (0.5f64 * 0.5 * (1.0 / 3.0) * 0.5).powf(0.25) * 100.0;
        let bleu = corpus_bleu(&hyp, &refs, Tokenization::Thirteen, true);
        assert!((bleu as f64 - expected).abs() < 0.1, "{bleu} vs {expected}");
    }

    #[test]
    fn brevity_penalty_applies_to_short_hypotheses() {
        let long_ref = vec!["a b c d e f g h".to_string()];
        let short_hyp = vec!["a b c d".to_string()];
        let full_hyp = vec!["a b c d e f g h".to_string()];
        let short = corpus_bleu(&short_hyp, &long_ref, Tokenization::Thirteen, true);
        let full = corpus_bleu(&full_hyp, &long_ref, Tokenization::Thirteen, true);
        assert!(short < full * 0.6, "{short} vs {full}");
    }

    #[test]
    fn casing_changes_score() {
        let hyp = vec!["der hund läuft heute schnell.".to_string()];
        let refs = vec!["Der Hund läuft heute schnell.".to_string()];
        let cased = corpus_bleu(&hyp, &refs, Tokenization::Thirteen, true);
        let uncased = corpus_bleu(&hyp, &refs, Tokenization::Thirteen, false);
        assert!(uncased > cased, "{uncased} vs {cased}");
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mismatched_corpora_panic() {
        corpus_bleu(
            &["a".to_string()],
            &["a".to_string(), "b".to_string()],
            Tokenization::Thirteen,
            true,
        );
    }
}
