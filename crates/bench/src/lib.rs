//! Shared helpers for the qn-bench benchmark binaries.

use std::time::Instant;

pub mod counting_alloc;

/// Mean seconds per call of `f` over `samples` timed runs (one warmup).
///
/// The single timing helper behind every `BENCH_*.json` artifact, so the
/// recorded numbers stay methodologically comparable across benches.
///
/// # Panics
///
/// Panics if `samples == 0`: a zero-sample mean would silently record
/// `inf` GFLOP/s into a `BENCH_*.json` artifact.
pub fn time_mean(samples: usize, mut f: impl FnMut()) -> f64 {
    assert!(samples > 0, "time_mean needs at least one timed sample");
    f();
    let start = Instant::now();
    for _ in 0..samples {
        f();
    }
    start.elapsed().as_secs_f64() / samples as f64
}
