pub fn placeholder() {}
