//! A counting global allocator: the measurement instrument behind the
//! zero-alloc steady-state guarantee.
//!
//! Install it in a binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: qn_bench::counting_alloc::CountingAlloc =
//!     qn_bench::counting_alloc::CountingAlloc;
//! ```
//!
//! then bracket the region of interest with [`snapshot`] and read the
//! delta. Counters are process-global atomics, so measurements are only
//! attributable when the measured region runs single-threaded (the `alloc`
//! bench pins the worker pool to one thread for its assertion).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

/// Forwarding wrapper around [`System`] that counts every allocation call
/// and allocated byte (deallocations are counted separately; `realloc`
/// counts as one allocation of the new size).
pub struct CountingAlloc;

// SAFETY: pure forwarding to `System`; the counters are lock-free atomics
// and touch no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// Point-in-time reading of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Allocation calls (`alloc` + `alloc_zeroed` + `realloc`) so far.
    pub allocations: u64,
    /// Bytes requested by those calls.
    pub bytes: u64,
    /// Deallocation calls so far.
    pub frees: u64,
}

impl Snapshot {
    /// Counter deltas since `earlier` (`self` must be the later snapshot).
    ///
    /// # Panics
    ///
    /// Panics in debug builds (wrapping in release) if `earlier` was taken
    /// **after** `self` — the counters are monotone, so a negative delta
    /// always means the snapshots were swapped at the call site.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            allocations: self.allocations - earlier.allocations,
            bytes: self.bytes - earlier.bytes,
            frees: self.frees - earlier.frees,
        }
    }
}

/// Reads the current counters.
pub fn snapshot() -> Snapshot {
    Snapshot {
        allocations: ALLOCS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
    }
}
