//! Batched-inference throughput scaling across the `qn-parallel` pool:
//! batch-32 quadratic ResNet-20 `predict_batch` at 1/2/4/8 threads.
//!
//! Besides the criterion timings, the bench measures samples/sec per thread
//! count directly, asserts the outputs are bit-identical across thread
//! counts (the workspace's determinism contract), and records everything in
//! `BENCH_throughput.json` at the repo root — including the host's actual
//! core count, since speedups are bounded by physical parallelism. Set
//! `QN_SMOKE=1` for a CI-sized configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_bench::time_mean;
use qn_core::NeuronSpec;
use qn_models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
use qn_tensor::{Rng, Tensor};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn build(smoke: bool) -> (ResNet, Tensor) {
    let mut rng = Rng::seed_from(41);
    let (depth, width, res, rank, batch) = if smoke {
        (8, 4, 12, 3, 8)
    } else {
        (20, 8, 16, 9, 32)
    };
    let net = ResNet::cifar(ResNetConfig {
        depth,
        base_width: width,
        num_classes: 10,
        neuron: NeuronSpec::EfficientQuadratic { rank },
        placement: NeuronPlacement::All,
        seed: 43,
    });
    let input = Tensor::randn(&[batch, 3, res, res], &mut rng);
    (net, input)
}

fn bench(c: &mut Criterion) {
    // Size the pool for the largest measured configuration before first use;
    // `with_max_threads` then selects the effective count per measurement.
    qn_parallel::configure_pool_threads(*THREAD_COUNTS.iter().max().expect("non-empty"));
    let smoke = std::env::var("QN_SMOKE").map(|v| v == "1").unwrap_or(false);
    let samples = if smoke { 3 } else { 15 };
    let (net, input) = build(smoke);
    let batch = input.shape().dim(0);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut session = InferenceSession::new(&net);
    let reference = qn_parallel::with_max_threads(1, || session.predict_batch(&input));

    let mut records = Vec::new();
    let mut base_throughput = 0.0f64;
    let mut speedup_at = [0.0f64; THREAD_COUNTS.len()];
    for (ti, &threads) in THREAD_COUNTS.iter().enumerate() {
        let (secs, output) = qn_parallel::with_max_threads(threads, || {
            let secs = time_mean(samples, || {
                std::hint::black_box(session.predict_batch(&input).sum());
            });
            (secs, session.predict_batch(&input))
        });
        assert!(
            output.bit_identical(&reference),
            "outputs must be bit-identical at {threads} threads"
        );
        let throughput = batch as f64 / secs;
        if threads == 1 {
            base_throughput = throughput;
        }
        let speedup = throughput / base_throughput;
        speedup_at[ti] = speedup;
        eprintln!(
            "throughput/{threads}t: {:.3} ms/batch, {:.1} samples/s, speedup {:.2}x, bit-identical",
            secs * 1e3,
            throughput,
            speedup
        );
        records.push(format!(
            "    {{\n      \"threads\": {threads},\n      \"batch_ms\": {:.4},\n      \
\"samples_per_sec\": {:.2},\n      \"speedup_vs_1\": {:.3},\n      \
\"bit_identical\": true\n    }}",
            secs * 1e3,
            throughput,
            speedup
        ));
    }
    // Scaling assertion, gated on physical parallelism: thread counts
    // beyond `host_cpus` only add context-switch overhead (the committed
    // single-core numbers show 2 threads at ~0.84x of 1 thread for exactly
    // that reason), so the ≥2.5x-at-4-threads target is only meaningful —
    // and only enforced — on hosts with at least 4 cores.
    let speedup_4t = speedup_at[THREAD_COUNTS
        .iter()
        .position(|&t| t == 4)
        .expect("4 threads is a measured configuration")];
    if smoke {
        eprintln!("throughput: smoke run, scaling assertion skipped");
    } else if host_cpus < 4 {
        eprintln!(
            "throughput: host has {host_cpus} CPU(s) < 4 — skipping the \
             >=2.5x@4t scaling assertion (thread counts beyond the core \
             count cannot speed anything up)"
        );
    } else {
        assert!(
            speedup_4t >= 2.5,
            "4-thread speedup {speedup_4t:.2}x below the 2.5x target on a \
             {host_cpus}-core host"
        );
    }
    let note = if host_cpus < 4 {
        format!(
            "host has {host_cpus} CPU(s): speedups at thread counts beyond the \
             core count measure scheduling overhead, not scaling; the \
             >=2.5x@4t assertion is skipped on this host"
        )
    } else {
        format!("host has {host_cpus} CPUs: >=2.5x@4t assertion enforced")
    };
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"model\": \"resnet{}_quadratic\",\n  \
\"input\": {:?},\n  \"smoke\": {smoke},\n  \"samples\": {samples},\n  \
\"host_cpus\": {host_cpus},\n  \"note\": \"{note}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        net.config().depth,
        input.shape().dims(),
        records.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        eprintln!("recorded {path}");
    }

    let mut group = c.benchmark_group("throughput");
    group.sample_size(samples);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("predict_batch", format!("{threads}t")),
            &threads,
            |b, &threads| {
                qn_parallel::with_max_threads(threads, || {
                    b.iter(|| std::hint::black_box(session.predict_batch(&input).sum()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
