//! Training-cost benchmark: one full step (forward + backward + SGD) of the
//! small ResNet with linear vs quadratic neurons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_autograd::Graph;
use qn_core::NeuronSpec;
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::{Module, Sgd, SgdConfig};
use qn_tensor::{Rng, Tensor};

fn bench(c: &mut Criterion) {
    let mut rng = Rng::seed_from(13);
    let x = Tensor::randn(&[8, 3, 12, 12], &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let mut group = c.benchmark_group("training_step");
    group.sample_size(10);
    for (name, neuron) in [
        ("linear", NeuronSpec::Linear),
        ("ours_k9", NeuronSpec::EfficientQuadratic { rank: 9 }),
    ] {
        let net = ResNet::cifar(ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 10,
            neuron,
            placement: NeuronPlacement::All,
            seed: 17,
        });
        let (lambda, other) = net.param_groups();
        let mut opt = Sgd::new(SgdConfig::default());
        opt.add_group(other, None, None);
        if !lambda.is_empty() {
            opt.add_group(lambda, Some(1e-4), None);
        }
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut g = Graph::training(0);
                let xv = g.leaf(x.clone());
                let logits = net.forward(&mut g, xv);
                let loss = g.softmax_cross_entropy(logits, &labels, 0.0);
                g.backward(loss);
                opt.step(1.0);
                opt.zero_grad();
                std::hint::black_box(())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
