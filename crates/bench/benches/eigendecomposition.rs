//! §III-A benchmark: Jacobi eigendecomposition scaling over the matrix
//! sizes quadratic convolutions produce (n = C·K²).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_linalg::{eigh, spectral_top_k, symmetrize};
use qn_tensor::{Rng, Tensor};

fn bench(c: &mut Criterion) {
    let mut rng = Rng::seed_from(11);
    let mut group = c.benchmark_group("eigendecomposition");
    group.sample_size(10);
    for n in [9usize, 27, 72] {
        let m = symmetrize(&Tensor::randn(&[n, n], &mut rng));
        group.bench_with_input(BenchmarkId::new("eigh", n), &m, |b, m| {
            b.iter(|| std::hint::black_box(eigh(m, 200).values[0]))
        });
        group.bench_with_input(BenchmarkId::new("top_k9", n), &m, |b, m| {
            b.iter(|| std::hint::black_box(spectral_top_k(m, 9.min(n)).lambda[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
