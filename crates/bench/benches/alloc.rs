//! Allocation accounting for the serving path, measured with a counting
//! global allocator: proves that steady-state `InferenceSession::predict`
//! on the paper's quadratic ResNet performs **zero** heap allocations once
//! the session's buffer pool is warm.
//!
//! Records cold-call vs steady-state allocation counts (and steady-state
//! latency) in `BENCH_alloc.json` at the repo root, and **fails** —
//! failing CI's smoke run — if the steady state allocates. The assertion
//! runs with the worker pool pinned to one thread so the process-global
//! counters are attributable to the measured loop; the sharded
//! `predict_batch` path is recorded unasserted for reference. Set
//! `QN_SMOKE=1` for a CI-sized configuration.

#[global_allocator]
static ALLOC: qn_bench::counting_alloc::CountingAlloc = qn_bench::counting_alloc::CountingAlloc;

use qn_bench::counting_alloc::{snapshot, Snapshot};
use qn_bench::time_mean;
use qn_core::NeuronSpec;
use qn_models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
use qn_tensor::{Rng, Tensor};

fn main() {
    let smoke = std::env::var("QN_SMOKE").map(|v| v == "1").unwrap_or(false);
    let (depth, width, res, rank, batch) = if smoke {
        (8, 4, 12, 3, 4)
    } else {
        (20, 8, 16, 9, 8)
    };
    let samples = if smoke { 5 } else { 30 };
    let net = ResNet::cifar(ResNetConfig {
        depth,
        base_width: width,
        num_classes: 10,
        neuron: NeuronSpec::EfficientQuadratic { rank },
        placement: NeuronPlacement::All,
        seed: 47,
    });
    let mut rng = Rng::seed_from(48);
    let x = Tensor::randn(&[3, res, res], &mut rng);
    let xb = Tensor::randn(&[batch, 3, res, res], &mut rng);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Spawn the worker pool before measuring: thread startup allocates.
    let _ = qn_parallel::pool_threads();

    // ---- single-sample predict: the asserted zero-alloc path ------------
    let (cold, steady, steady_ms, reference) = qn_parallel::with_max_threads(1, || {
        let mut session = InferenceSession::new(&net);
        let before = snapshot();
        let y = session.predict(&x);
        let cold = snapshot().since(&before);
        let reference = y.clone();
        session.recycle(y);
        // a few more rounds so every pool bucket reaches steady state
        for _ in 0..3 {
            let y = session.predict(&x);
            session.recycle(y);
        }
        let iters = 10u64;
        let before = snapshot();
        let mut sink = 0.0f32;
        for _ in 0..iters {
            let y = session.predict(&x);
            sink += y.data()[0];
            session.recycle(y);
        }
        let steady = snapshot().since(&before);
        std::hint::black_box(sink);
        let steady_ms = time_mean(samples, || {
            let y = session.predict(&x);
            std::hint::black_box(y.data()[0]);
            session.recycle(y);
        }) * 1e3;
        // steady-state output must still be the cold output, bit for bit
        let y = session.predict(&x);
        assert!(
            y.bit_identical(&reference),
            "pooled steady state must reproduce the cold result bit-for-bit"
        );
        session.recycle(y);
        (cold, steady, steady_ms, reference)
    });
    let per_predict = Snapshot {
        allocations: steady.allocations / 10,
        bytes: steady.bytes / 10,
        frees: steady.frees / 10,
    };
    eprintln!(
        "alloc/predict: cold {} allocations ({} KiB); steady-state {} allocations, {} frees per call, {:.3} ms",
        cold.allocations,
        cold.bytes / 1024,
        per_predict.allocations,
        per_predict.frees,
        steady_ms
    );
    std::hint::black_box(reference.sum());

    // ---- batched predict (informational, not asserted) ------------------
    let (batch_steady, batch_ms) = {
        let mut session = InferenceSession::new(&net);
        for _ in 0..4 {
            let y = session.predict_batch(&xb);
            session.recycle(y);
        }
        let iters = 5u64;
        let before = snapshot();
        for _ in 0..iters {
            let y = session.predict_batch(&xb);
            std::hint::black_box(y.data()[0]);
            session.recycle(y);
        }
        let delta = snapshot().since(&before);
        let batch_ms = time_mean(samples.min(10), || {
            let y = session.predict_batch(&xb);
            std::hint::black_box(y.data()[0]);
            session.recycle(y);
        }) * 1e3;
        (
            Snapshot {
                allocations: delta.allocations / iters,
                bytes: delta.bytes / iters,
                frees: delta.frees / iters,
            },
            batch_ms,
        )
    };
    eprintln!(
        "alloc/predict_batch[{batch}]: steady-state {} allocations ({} B) per call, {:.3} ms \
         (sharded path boxes one task per worker when threads > 1)",
        batch_steady.allocations, batch_steady.bytes, batch_ms
    );

    let json = format!(
        "{{\n  \"bench\": \"alloc\",\n  \"model\": \"resnet{depth}_quadratic\",\n  \
\"input\": [3, {res}, {res}],\n  \"smoke\": {smoke},\n  \"host_cpus\": {host_cpus},\n  \
\"predict\": {{\n    \"cold_allocations\": {},\n    \"cold_bytes\": {},\n    \
\"steady_allocations_per_call\": {},\n    \"steady_bytes_per_call\": {},\n    \
\"steady_frees_per_call\": {},\n    \"steady_ms\": {:.4}\n  }},\n  \
\"predict_batch\": {{\n    \"batch\": {batch},\n    \
\"steady_allocations_per_call\": {},\n    \"steady_bytes_per_call\": {},\n    \
\"steady_ms\": {:.4}\n  }}\n}}\n",
        cold.allocations,
        cold.bytes,
        per_predict.allocations,
        per_predict.bytes,
        per_predict.frees,
        steady_ms,
        batch_steady.allocations,
        batch_steady.bytes,
        batch_ms
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_alloc.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        eprintln!("recorded {path}");
    }

    // The contract this bench exists to enforce — checked last so the JSON
    // is written either way; a violation still fails CI's smoke run.
    assert_eq!(
        per_predict.allocations, 0,
        "steady-state predict must perform zero heap allocations \
         (got {} per call)",
        per_predict.allocations
    );
    assert_eq!(
        per_predict.frees, 0,
        "steady-state predict must free nothing (got {} per call)",
        per_predict.frees
    );
    eprintln!("alloc: steady-state predict is allocation-free ✓");
}
