//! Fig. 4 FLOP-axis benchmark: linear vs quadratic convolution forward cost
//! at matched output channels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_autograd::Graph;
use qn_core::NeuronSpec;
use qn_tensor::{Conv2dSpec, Rng, Tensor};

fn bench(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let spec = Conv2dSpec::new(3, 1, 1);
    let x = Tensor::randn(&[4, 8, 16, 16], &mut rng);
    let mut group = c.benchmark_group("conv_layers");
    group.sample_size(10);
    for (name, neuron) in [
        ("linear", NeuronSpec::Linear),
        ("ours_k3", NeuronSpec::EfficientQuadratic { rank: 3 }),
        ("ours_k9", NeuronSpec::EfficientQuadratic { rank: 9 }),
        ("quad2", NeuronSpec::Quad2),
    ] {
        let (layer, _) = neuron.build_conv(8, 16, spec, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(name), &layer, |b, layer| {
            b.iter(|| {
                let mut g = Graph::new();
                let xv = g.leaf(x.clone());
                let y = layer.forward(&mut g, xv);
                std::hint::black_box(g.value(y).sum())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
