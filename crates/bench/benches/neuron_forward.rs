//! Table I benchmark: forward cost of one dense layer per neuron family at
//! fixed width — the measured counterpart of the MAC column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_autograd::Graph;
use qn_core::neurons::{
    EfficientQuadraticLinear, FactorizedQuadraticLinear, KervolutionLinear, LowRankQuadraticLinear,
    Quad1Linear, Quad2Linear,
};
use qn_nn::{Linear, Module};
use qn_tensor::{Rng, Tensor};

fn bench(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let n = 128usize;
    let units = 16usize;
    let k = 9usize;
    let x = Tensor::randn(&[32, n], &mut rng);
    let layers: Vec<(&str, Box<dyn Module>)> = vec![
        ("linear", Box::new(Linear::new(n, units, false, &mut rng))),
        (
            "ours_k9",
            Box::new(EfficientQuadraticLinear::new(n, units, k, &mut rng)),
        ),
        (
            "lowrank_k9",
            Box::new(LowRankQuadraticLinear::new(n, units, k, &mut rng)),
        ),
        ("quad1", Box::new(Quad1Linear::new(n, units, &mut rng))),
        ("quad2", Box::new(Quad2Linear::new(n, units, &mut rng))),
        (
            "factorized",
            Box::new(FactorizedQuadraticLinear::new(n, units, &mut rng)),
        ),
        (
            "kervolution",
            Box::new(KervolutionLinear::new(n, units, 1.0, 3, &mut rng)),
        ),
    ];
    let mut group = c.benchmark_group("neuron_forward");
    group.sample_size(10);
    for (name, layer) in &layers {
        group.bench_with_input(BenchmarkId::from_parameter(name), layer, |b, layer| {
            b.iter(|| {
                let mut g = Graph::new();
                let xv = g.leaf(x.clone());
                let y = layer.forward(&mut g, xv);
                std::hint::black_box(g.value(y).sum())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
