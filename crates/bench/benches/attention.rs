//! Table II benchmark: transformer forward cost with linear vs quadratic
//! attention projections (the quadratic model at its reduced width).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_autograd::Graph;
use qn_models::{Transformer, TransformerConfig};

fn bench(c: &mut Criterion) {
    let base = TransformerConfig {
        src_vocab: 40,
        tgt_vocab: 44,
        d_model: 40,
        heads: 4,
        enc_layers: 2,
        dec_layers: 2,
        d_ff: 80,
        quadratic_rank: None,
        max_len: 24,
        dropout: 0.0,
        seed: 7,
    };
    let quad = TransformerConfig {
        d_model: 32,
        d_ff: 64,
        quadratic_rank: Some(7),
        ..base
    };
    let src: Vec<Vec<usize>> = (0..4).map(|i| vec![3 + i, 4, 5, 6, 7, 8]).collect();
    let tgt: Vec<Vec<usize>> = (0..4).map(|i| vec![1, 9 + i, 10, 11, 12]).collect();
    let mut group = c.benchmark_group("attention");
    group.sample_size(10);
    for (name, cfg) in [("baseline_d40", base), ("quadratic_d32_k7", quad)] {
        let model = Transformer::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, model| {
            b.iter(|| {
                let mut g = Graph::new();
                let y = model.forward(&mut g, &src, &tgt);
                std::hint::black_box(g.value(y).sum())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
