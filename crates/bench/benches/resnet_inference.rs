//! Figs. 4–5 model-level benchmark: end-to-end inference cost of the ResNet
//! family with linear vs quadratic neurons.
//!
//! Runs on the tape-free [`InferenceSession`] path so the numbers measure
//! inference arithmetic, not autograd tape bookkeeping (the taped/eager
//! comparison itself lives in the `tape_vs_eager` bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_core::NeuronSpec;
use qn_models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
use qn_tensor::{Rng, Tensor};

fn bench(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let x = Tensor::randn(&[1, 3, 16, 16], &mut rng);
    let mut group = c.benchmark_group("resnet_inference");
    group.sample_size(10);
    for depth in [8usize, 20] {
        for (name, neuron) in [
            ("linear", NeuronSpec::Linear),
            ("ours_k9", NeuronSpec::EfficientQuadratic { rank: 9 }),
        ] {
            let net = ResNet::cifar(ResNetConfig {
                depth,
                base_width: 8,
                num_classes: 10,
                neuron,
                placement: NeuronPlacement::All,
                seed: 5,
            });
            let mut session = InferenceSession::new(&net);
            group.bench_with_input(BenchmarkId::new(name, depth), &x, |b, x| {
                b.iter(|| std::hint::black_box(session.predict_batch(x).sum()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
