//! The int8 inference tier, measured: weight-memory reduction, `gemm_i8`
//! vs the f32 exact GEMM at ResNet-20 im2col shapes, end-to-end `predict`
//! latency of a quantized ResNet-20 session vs the f32 exact session, and
//! top-1 accuracy drift on the synthetic classifier evaluation — all
//! recorded in `BENCH_quant.json` at the repo root.
//!
//! Also asserts the determinism contract inline: `gemm_i8` must be
//! bit-identical between a single-thread and a full-pool run.
//!
//! Set `QN_SMOKE=1` for a CI-sized configuration, `QN_SIMD={scalar,sse2,
//! avx2}` to pin the dispatch level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_bench::time_mean;
use qn_core::NeuronSpec;
use qn_data::{ImageDataset, ImageDatasetConfig};
use qn_experiments::{
    evaluate_classifier, evaluate_classifier_session, train_classifier, TrainConfig,
};
use qn_models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
use qn_tensor::{gemm_i8, MatMut, QTensor, Rng, Tensor};

/// ResNet-20/CIFAR im2col products `[B·OH·OW, C·K²] × [OC, C·K²]ᵀ`, the
/// same shapes `BENCH_gemm.json` reports for the f32 core.
const SHAPES: [(&str, usize, usize, usize); 3] = [
    ("resnet20_stage1_im2col", 1024, 144, 16),
    ("resnet20_stage2_im2col", 256, 288, 32),
    ("resnet20_stage3_im2col", 64, 576, 64),
];

fn resnet20(neuron: NeuronSpec) -> ResNet {
    ResNet::cifar(ResNetConfig {
        depth: 20,
        base_width: 8,
        num_classes: 10,
        neuron,
        placement: NeuronPlacement::All,
        seed: 5,
    })
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("QN_SMOKE").map(|v| v == "1").unwrap_or(false);
    let samples = if smoke { 5 } else { 30 };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rng = Rng::seed_from(91);

    // -- weight memory + gemm latency at the im2col shapes ----------------
    let mut mem_records = Vec::new();
    let mut gemm_records = Vec::new();
    for &(label, m, k, n) in &SHAPES {
        let a = Tensor::randn(&[m, k], &mut rng); // activations (im2col rows)
        let w = Tensor::randn(&[n, k], &mut rng); // weights, row-major [OC, C·K²]

        let qw = QTensor::quantize(&w);
        let reduction = qw.f32_bytes() as f64 / qw.weight_bytes() as f64;
        mem_records.push(format!(
            "    {{\n      \"shape\": \"{label}\",\n      \"rows\": {n},\n      \"cols\": {k},\n      \
\"f32_bytes\": {},\n      \"int8_bytes\": {},\n      \"reduction\": {reduction:.3}\n    }}",
            qw.f32_bytes(),
            qw.weight_bytes(),
        ));

        let qa = QTensor::quantize(&a);
        let run_i8 = || {
            let mut out = vec![0.0f32; m * n];
            gemm_i8(
                MatMut::new(&mut out, m, n),
                qa.mat(),
                qw.mat().transpose(),
                qa.scales(),
                qw.scales(),
            );
            out
        };
        // determinism contract: single-thread and full-pool runs agree bitwise
        let full_pool = run_i8();
        let one_thread = qn_parallel::with_max_threads(1, run_i8);
        assert!(
            full_pool
                .iter()
                .zip(&one_thread)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "{label}: gemm_i8 must be bit-identical across thread counts"
        );

        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let f32_1t = qn_parallel::with_max_threads(1, || {
            time_mean(samples, || {
                std::hint::black_box(a.matmul_transb(&w).data()[0]);
            })
        });
        let i8_1t = qn_parallel::with_max_threads(1, || {
            time_mean(samples, || {
                std::hint::black_box(run_i8()[0]);
            })
        });
        let (gf_f32, gf_i8) = (flops / f32_1t / 1e9, flops / i8_1t / 1e9);
        let speedup = gf_i8 / gf_f32;
        eprintln!(
            "quant/{label} ({m}x{k}x{n}): f32 exact 1t {gf_f32:.2} GFLOP/s, \
             int8 1t {gf_i8:.2} GFLOP/s ({speedup:.2}x), mem {reduction:.2}x",
        );
        gemm_records.push(format!(
            "    {{\n      \"shape\": \"{label}\",\n      \"m\": {m},\n      \"k\": {k},\n      \
\"n\": {n},\n      \"f32_exact_1t_gflops\": {gf_f32:.3},\n      \
\"int8_1t_gflops\": {gf_i8:.3},\n      \"speedup\": {speedup:.3},\n      \
\"bit_identical_across_threads\": true\n    }}"
        ));
    }

    // -- end-to-end predict latency on ResNet-20 --------------------------
    let mut model_records = Vec::new();
    let x = Tensor::randn(&[8, 3, 16, 16], &mut rng);
    for (name, neuron) in [
        ("linear", NeuronSpec::Linear),
        ("ours_k9", NeuronSpec::EfficientQuadratic { rank: 9 }),
    ] {
        let net = resnet20(neuron);
        let mut f32_session = InferenceSession::new(&net);
        // calibrated = the deployment configuration (frozen activation
        // scales, no per-row absmax pass); dynamic = the fallback tier
        let mut cal_session =
            InferenceSession::quantized_calibrated(&net, [x.clone()]).expect("ResNet quantizes");
        let mut dyn_session = InferenceSession::quantized(&net).expect("ResNet quantizes");
        // warm the arenas
        std::hint::black_box(f32_session.predict_batch(&x).sum());
        std::hint::black_box(cal_session.predict_batch(&x).sum());
        std::hint::black_box(dyn_session.predict_batch(&x).sum());
        let f32_1t = qn_parallel::with_max_threads(1, || {
            time_mean(samples, || {
                std::hint::black_box(f32_session.predict_batch(&x).sum());
            })
        });
        let i8_1t = qn_parallel::with_max_threads(1, || {
            time_mean(samples, || {
                std::hint::black_box(cal_session.predict_batch(&x).sum());
            })
        });
        let i8_dyn_1t = qn_parallel::with_max_threads(1, || {
            time_mean(samples, || {
                std::hint::black_box(dyn_session.predict_batch(&x).sum());
            })
        });
        let speedup = f32_1t / i8_1t;
        eprintln!(
            "quant/resnet20_{name} predict[8x3x16x16]: f32 exact 1t {:.2} ms, \
             int8 calibrated 1t {:.2} ms ({speedup:.2}x), int8 dynamic 1t {:.2} ms ({:.2}x)",
            f32_1t * 1e3,
            i8_1t * 1e3,
            i8_dyn_1t * 1e3,
            f32_1t / i8_dyn_1t,
        );
        model_records.push(format!(
            "    {{\n      \"model\": \"resnet20_{name}\",\n      \"batch\": 8,\n      \
\"f32_exact_1t_ms\": {:.4},\n      \"int8_calibrated_1t_ms\": {:.4},\n      \
\"int8_dynamic_1t_ms\": {:.4},\n      \"speedup\": {speedup:.3},\n      \
\"speedup_dynamic\": {:.3}\n    }}",
            f32_1t * 1e3,
            i8_1t * 1e3,
            i8_dyn_1t * 1e3,
            f32_1t / i8_dyn_1t,
        ));
    }

    // -- top-1 accuracy drift on the classifier evaluation ----------------
    let data = ImageDataset::generate(ImageDatasetConfig {
        classes: 10,
        resolution: 16,
        train_per_class: if smoke { 30 } else { 80 },
        test_per_class: 50,
        seed: 7,
        variability: 0.5,
    });
    let net = ResNet::cifar(ResNetConfig {
        depth: 8,
        base_width: 8,
        num_classes: data.classes,
        neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
        placement: NeuronPlacement::All,
        seed: 11,
    });
    let train = train_classifier(
        &net,
        &data,
        TrainConfig {
            epochs: if smoke { 2 } else { 5 },
            ..TrainConfig::default()
        },
    );
    let f32_top1 = evaluate_classifier(&net, &data.test_images, &data.test_labels, 64);
    let mut q_session = InferenceSession::quantized(&net).expect("quantizes");
    let int8_top1 =
        evaluate_classifier_session(&mut q_session, &data.test_images, &data.test_labels, 64);
    let drift = (f32_top1 - int8_top1).abs();
    eprintln!(
        "quant/accuracy: f32 top-1 {:.2}% vs int8 top-1 {:.2}% (drift {:.2} pts, \
         train acc {:.2}%)",
        f32_top1 * 100.0,
        int8_top1 * 100.0,
        drift * 100.0,
        train.test_accuracy * 100.0,
    );
    let accuracy = format!(
        "{{\n    \"dataset\": \"synthetic-10c-16px\",\n    \"test_images\": {},\n    \
\"f32_top1\": {f32_top1:.4},\n    \"int8_top1\": {int8_top1:.4},\n    \
\"drift_points\": {:.4}\n  }}",
        data.test_labels.len(),
        drift * 100.0,
    );

    let json = format!(
        "{{\n  \"bench\": \"quant\",\n  \"smoke\": {smoke},\n  \"samples\": {samples},\n  \
\"host_cpus\": {host_cpus},\n  \"simd\": \"{simd}\",\n  \"weight_memory\": [\n{}\n  ],\n  \
\"gemm\": [\n{}\n  ],\n  \"model\": [\n{}\n  ],\n  \"accuracy\": {accuracy}\n}}\n",
        mem_records.join(",\n"),
        gemm_records.join(",\n"),
        model_records.join(",\n"),
        simd = qn_simd::SimdLevel::active().name(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_quant.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        eprintln!("recorded {path}");
    }

    let mut group = c.benchmark_group("quant");
    group.sample_size(10);
    let net = resnet20(NeuronSpec::EfficientQuadratic { rank: 9 });
    let x = Tensor::randn(&[1, 3, 16, 16], &mut rng);
    let mut f32_session = InferenceSession::new(&net);
    group.bench_function(BenchmarkId::new("predict", "f32_exact"), |b| {
        b.iter(|| std::hint::black_box(f32_session.predict_batch(&x).sum()))
    });
    let mut q_session = InferenceSession::quantized(&net).expect("quantizes");
    group.bench_function(BenchmarkId::new("predict", "int8"), |b| {
        b.iter(|| std::hint::black_box(q_session.predict_batch(&x).sum()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
