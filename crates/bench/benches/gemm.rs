//! The packed GEMM core vs. the retained seed kernels
//! (`qn_tensor::reference`), at the shapes the reproduction actually runs:
//! ResNet-20 im2col products (the conv hot path, a `matmul_transb`) and
//! transformer attention products (square `matmul`s per head).
//!
//! For every shape the bench measures single-thread GFLOP/s of both
//! implementations, asserts the outputs are bit-identical (the determinism
//! contract the refactor preserves), and records everything — including the
//! packed core's full-pool throughput — in `BENCH_gemm.json` at the repo
//! root. Set `QN_SMOKE=1` for a CI-sized run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_bench::time_mean;
use qn_tensor::{reference, Rng, Tensor};

/// (label, m, k, n, lhs-of-transb?): ResNet-20/CIFAR im2col products are
/// `[B·OH·OW, C·K²] × [OC, C·K²]ᵀ`; attention products are `[T, dh] × [dh, T]`
/// per head.
const SHAPES: [(&str, usize, usize, usize, bool); 6] = [
    ("resnet20_stage1_im2col", 1024, 144, 16, true),
    ("resnet20_stage2_im2col", 256, 288, 32, true),
    ("resnet20_stage3_im2col", 64, 576, 64, true),
    ("attention_scores_t64", 64, 32, 64, false),
    ("attention_context_t64", 64, 64, 32, false),
    ("attention_scores_t128", 128, 64, 128, false),
];

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("QN_SMOKE").map(|v| v == "1").unwrap_or(false);
    let samples = if smoke { 5 } else { 40 };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rng = Rng::seed_from(61);

    let mut records = Vec::new();
    for &(label, m, k, n, transb) in &SHAPES {
        let a = Tensor::randn(&[m, k], &mut rng);
        // transb stores B as [N, K] (weights row-major); plain matmul as [K, N]
        let b = if transb {
            Tensor::randn(&[n, k], &mut rng)
        } else {
            Tensor::randn(&[k, n], &mut rng)
        };
        let packed = |a: &Tensor, b: &Tensor| {
            if transb {
                a.matmul_transb(b)
            } else {
                a.matmul(b)
            }
        };
        let naive = |a: &Tensor, b: &Tensor| {
            if transb {
                reference::matmul_transb(a, b)
            } else {
                reference::matmul(a, b)
            }
        };
        assert!(
            packed(&a, &b).bit_identical(&naive(&a, &b)),
            "{label}: packed core must be bit-identical to the seed kernel"
        );
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let naive_s = time_mean(samples, || {
            std::hint::black_box(naive(&a, &b).data()[0]);
        });
        let packed_1t = qn_parallel::with_max_threads(1, || {
            time_mean(samples, || {
                std::hint::black_box(packed(&a, &b).data()[0]);
            })
        });
        let packed_nt = time_mean(samples, || {
            std::hint::black_box(packed(&a, &b).data()[0]);
        });
        let (gf_naive, gf_1t, gf_nt) = (
            flops / naive_s / 1e9,
            flops / packed_1t / 1e9,
            flops / packed_nt / 1e9,
        );
        let speedup = gf_1t / gf_naive;
        eprintln!(
            "gemm/{label} ({m}x{k}x{n}): naive {gf_naive:.2} GFLOP/s, \
             packed 1t {gf_1t:.2} GFLOP/s ({speedup:.2}x), \
             packed {host_cpus}t {gf_nt:.2} GFLOP/s"
        );
        records.push(format!(
            "    {{\n      \"shape\": \"{label}\",\n      \"m\": {m},\n      \"k\": {k},\n      \
\"n\": {n},\n      \"transb\": {transb},\n      \"naive_gflops\": {gf_naive:.3},\n      \
\"packed_1t_gflops\": {gf_1t:.3},\n      \"packed_full_pool_gflops\": {gf_nt:.3},\n      \
\"speedup_1t_vs_naive\": {speedup:.3},\n      \"bit_identical\": true\n    }}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"gemm\",\n  \"smoke\": {smoke},\n  \"samples\": {samples},\n  \
\"host_cpus\": {host_cpus},\n  \"results\": [\n{}\n  ]\n}}\n",
        records.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        eprintln!("recorded {path}");
    }

    let mut group = c.benchmark_group("gemm");
    group.sample_size(samples);
    let a = Tensor::randn(&[1024, 144], &mut rng);
    let b = Tensor::randn(&[16, 144], &mut rng);
    group.bench_function(BenchmarkId::new("packed", "resnet20_stage1"), |bch| {
        bch.iter(|| std::hint::black_box(a.matmul_transb(&b).data()[0]))
    });
    group.bench_function(BenchmarkId::new("naive", "resnet20_stage1"), |bch| {
        bch.iter(|| std::hint::black_box(reference::matmul_transb(&a, &b).data()[0]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
