//! The packed GEMM core vs. the retained seed kernels
//! (`qn_tensor::reference`), at the shapes the reproduction actually runs:
//! ResNet-20 im2col products (the conv hot path, a `matmul_transb`) and
//! transformer attention products (square `matmul`s per head).
//!
//! For every shape the bench measures single-thread GFLOP/s of the naive
//! seed kernel, the packed scalar (`Exact`-profile) core, and the packed
//! vector (`Fast`-profile) core at the active SIMD level; asserts the exact
//! outputs are bit-identical to the seed (the determinism contract) and the
//! fast outputs are close (the ULP tier); and records everything —
//! including the packed core's full-pool throughput — in `BENCH_gemm.json`
//! at the repo root. Set `QN_SMOKE=1` for a CI-sized run,
//! `QN_SIMD={scalar,sse2,avx2}` to pin the vector level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_bench::time_mean;
use qn_tensor::{reference, Rng, Tensor};

/// (label, m, k, n, lhs-of-transb?): ResNet-20/CIFAR im2col products are
/// `[B·OH·OW, C·K²] × [OC, C·K²]ᵀ`; attention products are `[T, dh] × [dh, T]`
/// per head.
const SHAPES: [(&str, usize, usize, usize, bool); 6] = [
    ("resnet20_stage1_im2col", 1024, 144, 16, true),
    ("resnet20_stage2_im2col", 256, 288, 32, true),
    ("resnet20_stage3_im2col", 64, 576, 64, true),
    ("attention_scores_t64", 64, 32, 64, false),
    ("attention_context_t64", 64, 64, 32, false),
    ("attention_scores_t128", 128, 64, 128, false),
];

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("QN_SMOKE").map(|v| v == "1").unwrap_or(false);
    let samples = if smoke { 5 } else { 40 };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rng = Rng::seed_from(61);

    let mut records = Vec::new();
    for &(label, m, k, n, transb) in &SHAPES {
        let a = Tensor::randn(&[m, k], &mut rng);
        // transb stores B as [N, K] (weights row-major); plain matmul as [K, N]
        let b = if transb {
            Tensor::randn(&[n, k], &mut rng)
        } else {
            Tensor::randn(&[k, n], &mut rng)
        };
        let packed = |a: &Tensor, b: &Tensor| {
            if transb {
                a.matmul_transb(b)
            } else {
                a.matmul(b)
            }
        };
        let naive = |a: &Tensor, b: &Tensor| {
            if transb {
                reference::matmul_transb(a, b)
            } else {
                reference::matmul(a, b)
            }
        };
        assert!(
            packed(&a, &b).bit_identical(&naive(&a, &b)),
            "{label}: packed core must be bit-identical to the seed kernel"
        );
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let naive_s = time_mean(samples, || {
            std::hint::black_box(naive(&a, &b).data()[0]);
        });
        let packed_1t = qn_parallel::with_max_threads(1, || {
            time_mean(samples, || {
                std::hint::black_box(packed(&a, &b).data()[0]);
            })
        });
        let packed_nt = time_mean(samples, || {
            std::hint::black_box(packed(&a, &b).data()[0]);
        });
        // Fast-profile (vector) single-thread run at the active SIMD level.
        let prev = qn_simd::force_profile(qn_simd::KernelProfile::Fast);
        let fast_out = packed(&a, &b);
        let fast_1t = qn_parallel::with_max_threads(1, || {
            time_mean(samples, || {
                std::hint::black_box(packed(&a, &b).data()[0]);
            })
        });
        qn_simd::force_profile(prev);
        let exact_out = packed(&a, &b);
        for (f, e) in fast_out.data().iter().zip(exact_out.data()) {
            assert!(
                (f - e).abs() <= 1e-4 * (1.0 + e.abs()),
                "{label}: fast-profile output drifted beyond the ULP tier: {f} vs {e}"
            );
        }
        let (gf_naive, gf_1t, gf_nt, gf_fast) = (
            flops / naive_s / 1e9,
            flops / packed_1t / 1e9,
            flops / packed_nt / 1e9,
            flops / fast_1t / 1e9,
        );
        let speedup = gf_1t / gf_naive;
        let fast_speedup = gf_fast / gf_1t;
        eprintln!(
            "gemm/{label} ({m}x{k}x{n}): naive {gf_naive:.2} GFLOP/s, \
             packed 1t {gf_1t:.2} GFLOP/s ({speedup:.2}x), \
             fast({simd}) 1t {gf_fast:.2} GFLOP/s ({fast_speedup:.2}x over packed), \
             packed {host_cpus}t {gf_nt:.2} GFLOP/s",
            simd = qn_simd::SimdLevel::active().name(),
        );
        records.push(format!(
            "    {{\n      \"shape\": \"{label}\",\n      \"m\": {m},\n      \"k\": {k},\n      \
\"n\": {n},\n      \"transb\": {transb},\n      \"naive_gflops\": {gf_naive:.3},\n      \
\"packed_1t_gflops\": {gf_1t:.3},\n      \"packed_vector_1t_gflops\": {gf_fast:.3},\n      \
\"packed_full_pool_gflops\": {gf_nt:.3},\n      \
\"speedup_1t_vs_naive\": {speedup:.3},\n      \
\"speedup_vector_vs_packed_1t\": {fast_speedup:.3},\n      \"bit_identical\": true\n    }}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"gemm\",\n  \"smoke\": {smoke},\n  \"samples\": {samples},\n  \
\"host_cpus\": {host_cpus},\n  \"simd\": \"{simd}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        records.join(",\n"),
        simd = qn_simd::SimdLevel::active().name(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        eprintln!("recorded {path}");
    }

    let mut group = c.benchmark_group("gemm");
    group.sample_size(samples);
    let a = Tensor::randn(&[1024, 144], &mut rng);
    let b = Tensor::randn(&[16, 144], &mut rng);
    group.bench_function(BenchmarkId::new("packed", "resnet20_stage1"), |bch| {
        bch.iter(|| std::hint::black_box(a.matmul_transb(&b).data()[0]))
    });
    group.bench_function(BenchmarkId::new("naive", "resnet20_stage1"), |bch| {
        bch.iter(|| std::hint::black_box(reference::matmul_transb(&a, &b).data()[0]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
