//! Persistence-path benchmark: checkpoint serialize throughput, cold-start
//! load latency (blob-copying vs zero-copy mmap), and registry hot-swap
//! latency — recorded in `BENCH_load.json` at the repo root.
//!
//! Doubles as the enforcement point for the PR's zero-copy contract, with
//! the counting global allocator as the instrument:
//!
//! 1. a mmap load must leave **every** parameter backed by the mapped file,
//! 2. the mmap-loaded model must predict **bit-identically** to the model
//!    the checkpoint was saved from, and
//! 3. the mmap load must allocate at least the parameter-byte total *less*
//!    than the copying load — i.e. zero parameter bytes are copied.
//!
//! Set `QN_SMOKE=1` for a CI-sized configuration.

#[global_allocator]
static ALLOC: qn_bench::counting_alloc::CountingAlloc = qn_bench::counting_alloc::CountingAlloc;

use qn_autograd::Parameter;
use qn_bench::counting_alloc::snapshot;
use qn_bench::time_mean;
use qn_core::NeuronSpec;
use qn_models::{InferenceSession, ModelRegistry, NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::{checkpoint, LoadMode, Module, ParamVisitor};
use qn_tensor::{Rng, Tensor};
use std::sync::Arc;

fn quadratic_resnet(depth: usize, width: usize, rank: usize, seed: u64) -> ResNet {
    ResNet::cifar(ResNetConfig {
        depth,
        base_width: width,
        num_classes: 10,
        neuron: NeuronSpec::EfficientQuadratic { rank },
        placement: NeuronPlacement::All,
        seed,
    })
}

/// Counts parameters whose storage is / is not a mapped file window.
struct MapCensus {
    mapped: usize,
    owned: usize,
}

impl ParamVisitor for MapCensus {
    fn param(&mut self, _name: &str, p: &Parameter) {
        if p.value().is_mapped() {
            self.mapped += 1;
        } else {
            self.owned += 1;
        }
    }
}

fn main() {
    let smoke = std::env::var("QN_SMOKE").map(|v| v == "1").unwrap_or(false);
    let (depth, width, res, rank) = if smoke { (8, 4, 12, 3) } else { (20, 8, 16, 9) };
    let samples = if smoke { 5 } else { 20 };
    let net = quadratic_resnet(depth, width, rank, 47);
    let param_bytes = 4 * net.param_count() as u64;
    let path = std::env::temp_dir().join("qn_bench_checkpoint.qnckpt");

    // ---- serialize ------------------------------------------------------
    let save_s = time_mean(samples, || {
        checkpoint::save_module(&net, &[("bench", "checkpoint")], &path).expect("save");
    });
    let file_bytes = std::fs::metadata(&path).expect("checkpoint written").len();
    let serialize_mb_s = file_bytes as f64 / 1e6 / save_s;
    eprintln!(
        "serialize: {file_bytes} B in {:.3} ms ({serialize_mb_s:.0} MB/s)",
        save_s * 1e3
    );

    // ---- cold-start load: copy vs mmap ----------------------------------
    let copied = quadratic_resnet(depth, width, rank, 48);
    let copy_s = time_mean(samples, || {
        checkpoint::load_module(&copied, &path, LoadMode::Copy).expect("copy load");
    });
    let mapped = quadratic_resnet(depth, width, rank, 49);
    let mapped_s = time_mean(samples, || {
        checkpoint::load_module(&mapped, &path, LoadMode::Mapped).expect("mmap load");
    });
    eprintln!(
        "cold-start load: copy {:.3} ms, mmap {:.3} ms ({:.2}x)",
        copy_s * 1e3,
        mapped_s * 1e3,
        copy_s / mapped_s
    );

    // ---- allocation accounting (single-threaded attribution) ------------
    let _ = qn_parallel::pool_threads();
    let (copy_alloc, mapped_alloc) = qn_parallel::with_max_threads(1, || {
        let before = snapshot();
        checkpoint::load_module(&copied, &path, LoadMode::Copy).expect("copy load");
        let copy_alloc = snapshot().since(&before);
        let before = snapshot();
        checkpoint::load_module(&mapped, &path, LoadMode::Mapped).expect("mmap load");
        let mapped_alloc = snapshot().since(&before);
        (copy_alloc, mapped_alloc)
    });
    eprintln!(
        "load allocations: copy {} B, mmap {} B ({param_bytes} parameter bytes in the model)",
        copy_alloc.bytes, mapped_alloc.bytes
    );

    // ---- the zero-copy contract -----------------------------------------
    let mut census = MapCensus {
        mapped: 0,
        owned: 0,
    };
    mapped.visit_params(&mut census);
    let mut rng = Rng::seed_from(51);
    let x = Tensor::randn(&[2, 3, res, res], &mut rng);
    let want = InferenceSession::new(&net).predict_batch(&x);
    let got = InferenceSession::new(&mapped).predict_batch(&x);
    let bit_identical = want.bit_identical(&got);

    // ---- registry hot-swap ----------------------------------------------
    let registry = ModelRegistry::new();
    let gen_a: Arc<dyn Module> = Arc::new(net);
    let gen_b: Arc<dyn Module> = Arc::new(mapped);
    registry.publish("serve", Arc::clone(&gen_a));
    let mut session = registry.session("serve").expect("slot exists");
    std::hint::black_box(session.predict_batch(&x).data()[0]);
    let mut flip = false;
    let swap_s = time_mean(samples, || {
        flip = !flip;
        registry.publish("serve", Arc::clone(if flip { &gen_b } else { &gen_a }));
        session.refresh();
    });
    std::hint::black_box(session.predict_batch(&x).data()[0]);
    eprintln!(
        "registry hot-swap (publish + session rebuild): {:.2} us",
        swap_s * 1e6
    );

    let json = format!(
        "{{\n  \"bench\": \"load\",\n  \"model\": \"resnet{depth}_quadratic_k{rank}\",\n  \
\"smoke\": {smoke},\n  \"file_bytes\": {file_bytes},\n  \"param_bytes\": {param_bytes},\n  \
\"serialize_ms\": {:.4},\n  \"serialize_mb_s\": {serialize_mb_s:.1},\n  \
\"cold_load_copy_ms\": {:.4},\n  \"cold_load_mmap_ms\": {:.4},\n  \
\"load_alloc_bytes_copy\": {},\n  \"load_alloc_bytes_mmap\": {},\n  \
\"mapped_params\": {},\n  \"owned_params\": {},\n  \
\"mmap_predict_bit_identical\": {bit_identical},\n  \"hot_swap_us\": {:.4}\n}}\n",
        save_s * 1e3,
        copy_s * 1e3,
        mapped_s * 1e3,
        copy_alloc.bytes,
        mapped_alloc.bytes,
        census.mapped,
        census.owned,
        swap_s * 1e6,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("could not write {out}: {e}");
    } else {
        eprintln!("recorded {out}");
    }
    let _ = std::fs::remove_file(&path);

    // Checked last so the JSON is written either way; violations fail CI.
    assert_eq!(
        census.owned, 0,
        "mmap load left {} parameters owned",
        census.owned
    );
    assert!(census.mapped > 0, "census walked no parameters");
    assert!(
        bit_identical,
        "mmap-loaded model must predict bit-identically"
    );
    assert!(
        copy_alloc.bytes >= mapped_alloc.bytes + param_bytes,
        "mmap load must allocate at least the parameter-byte total ({param_bytes} B) less than \
         the copying load (copy {} B, mmap {} B) — parameter bytes were copied",
        copy_alloc.bytes,
        mapped_alloc.bytes
    );
    eprintln!("load: mmap path copies zero parameter bytes ✓");
}
