//! Dual-mode execution benchmark: the taped forward pass ([`Graph`]) vs the
//! tape-free inference path ([`InferenceSession`]) on the paper's quadratic
//! ResNet.
//!
//! Besides the criterion timings, this bench measures the tape/eager
//! speedup directly and records it in `BENCH_inference.json` at the repo
//! root. Set `QN_SMOKE=1` for a CI-sized configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qn_autograd::Graph;
use qn_core::NeuronSpec;
use qn_models::{InferenceSession, NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::Module;
use qn_tensor::{Rng, Tensor};
use std::time::Instant;

struct Case {
    name: &'static str,
    net: ResNet,
    input: Tensor,
}

fn cases(smoke: bool) -> Vec<Case> {
    let mut rng = Rng::seed_from(23);
    let (depth, width, res, rank) = if smoke { (8, 4, 12, 3) } else { (20, 8, 16, 9) };
    let build = |neuron: NeuronSpec| {
        ResNet::cifar(ResNetConfig {
            depth,
            base_width: width,
            num_classes: 10,
            neuron,
            placement: NeuronPlacement::All,
            seed: 29,
        })
    };
    vec![
        Case {
            name: "linear",
            net: build(NeuronSpec::Linear),
            input: Tensor::randn(&[1, 3, res, res], &mut rng),
        },
        Case {
            name: "ours_quadratic",
            net: build(NeuronSpec::EfficientQuadratic { rank }),
            input: Tensor::randn(&[1, 3, res, res], &mut rng),
        },
    ]
}

/// Mean seconds per call of `f` over `samples` timed runs (one warmup).
fn time_mean(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..samples {
        f();
    }
    start.elapsed().as_secs_f64() / samples as f64
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("QN_SMOKE").map(|v| v == "1").unwrap_or(false);
    let samples = if smoke { 3 } else { 20 };
    let cases = cases(smoke);

    // direct measurement for the recorded speedup
    let mut records = Vec::new();
    for case in &cases {
        let taped = time_mean(samples, || {
            let mut g = Graph::new();
            let xv = g.leaf(case.input.clone());
            let y = case.net.forward(&mut g, xv);
            std::hint::black_box(g.value(y).sum());
        });
        let mut session = InferenceSession::new(&case.net);
        let eager = time_mean(samples, || {
            std::hint::black_box(session.predict_batch(&case.input).sum());
        });
        let speedup = taped / eager;
        eprintln!(
            "tape_vs_eager/{}: taped {:.3} ms, eager {:.3} ms, speedup {:.2}x",
            case.name,
            taped * 1e3,
            eager * 1e3,
            speedup
        );
        records.push(format!(
            "    {{\n      \"model\": \"resnet{}_{}\",\n      \"input\": {:?},\n      \
\"taped_ms\": {:.4},\n      \"eager_ms\": {:.4},\n      \"speedup\": {:.3}\n    }}",
            case.net.config().depth,
            case.name,
            case.input.shape().dims(),
            taped * 1e3,
            eager * 1e3,
            speedup
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"tape_vs_eager\",\n  \"smoke\": {},\n  \"samples\": {},\n  \
\"results\": [\n{}\n  ]\n}}\n",
        smoke,
        samples,
        records.join(",\n")
    );
    if smoke {
        eprintln!("smoke run: leaving the committed BENCH_inference.json untouched");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("could not write {path}: {e}");
        } else {
            eprintln!("recorded {path}");
        }
    }

    // criterion timings for both paths
    let mut group = c.benchmark_group("tape_vs_eager");
    group.sample_size(samples);
    for case in &cases {
        group.bench_with_input(BenchmarkId::new("taped", case.name), case, |b, case| {
            b.iter(|| {
                let mut g = Graph::new();
                let xv = g.leaf(case.input.clone());
                let y = case.net.forward(&mut g, xv);
                std::hint::black_box(g.value(y).sum())
            })
        });
        let mut session = InferenceSession::new(&case.net);
        group.bench_with_input(BenchmarkId::new("eager", case.name), case, |b, case| {
            b.iter(|| std::hint::black_box(session.predict_batch(&case.input).sum()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
