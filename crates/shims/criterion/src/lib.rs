//! Offline stand-in for the parts of the `criterion` benchmark harness
//! this workspace uses.
//!
//! The build environment has no crates.io access, so this shim implements
//! the same bench-definition surface — [`criterion_group!`],
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and [`black_box`] — backed by a simple wall-clock timer: each benchmark
//! runs a warmup pass and `sample_size` timed samples, then prints the
//! per-iteration mean and minimum. No statistics, plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value-laundering to defeat constant folding; forwards to
/// [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter, rendered `name/param`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Entry point handed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        let name = group_name.into();
        eprintln!("benchmark group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group. (The shim reports incrementally, so this only exists
    /// for API compatibility.)
    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let n = bencher.samples.len().max(1) as u32;
    let total: Duration = bencher.samples.iter().sum();
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    eprintln!(
        "  {label}: mean {:?}, min {:?} ({} samples)",
        total / n,
        min,
        bencher.samples.len()
    );
}

/// Timing driver passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one untimed warmup call, then `sample_size` timed
    /// calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        for n in [4usize, 8] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>())
            });
        }
        group.bench_with_input(BenchmarkId::from_parameter("named"), &16usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        c.sample_size(2)
            .bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
