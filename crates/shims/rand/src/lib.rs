//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no crates.io access, so instead of the real
//! `rand` we vendor a minimal, API-compatible subset: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and a [`Rng`] trait providing
//! `gen` / `gen_range` over the range types the workspace samples from.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for test/experiment purposes. It is **not**
//! the same stream as the real `StdRng` (ChaCha12), which only matters if
//! you try to byte-compare experiment artifacts against runs made with the
//! real crate.

use std::ops::{Range, RangeInclusive};

/// Seeding interface, mirroring `rand::SeedableRng` for the one constructor
/// the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the subset of `rand::Rng` the workspace
/// calls.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types samplable uniformly over their "natural" domain (`rand`'s
/// `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a [`Rng`] can sample from uniformly (`rand`'s `SampleRange`),
/// parameterized by the output type so integer/float literals unify with
/// the annotated binding as with the real crate.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = self.end - self.start;
                assert!(
                    width.is_finite(),
                    "cannot sample range of non-finite width {width}"
                );
                let u: $t = <$t as Standard>::sample(rng);
                let v = self.start + width * u;
                // Guard against round-up to the exclusive bound.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Unbiased uniform sample in `[0, n)` via Lemire-style rejection.
fn reject_sample<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++).
    ///
    /// Mirrors `rand::rngs::StdRng`'s interface; the underlying algorithm
    /// differs (see crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Snapshot of the generator's internal state.
        ///
        /// **Extension over the real `rand` crate** (which keeps `StdRng`
        /// opaque): the workspace's checkpoint/resume machinery needs to
        /// persist the exact stream position so a resumed run reproduces
        /// the uninterrupted one bit-for-bit.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        ///
        /// **Extension over the real `rand` crate** — see [`StdRng::state`].
        /// The all-zero state is a fixed point of xoshiro256++ and is
        /// remapped to the `seed_from_u64(0)` state (a `state()` snapshot
        /// of a seeded generator can never be all-zero).
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..13 {
            a.next_u64();
        }
        let snap = a.state();
        let tail: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snap);
        let resumed: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn zero_state_is_remapped_not_stuck() {
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f32..1.5);
            assert!((-2.5..1.5).contains(&v));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_incl = [false; 4];
        for _ in 0..1_000 {
            seen_incl[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-finite width")]
    fn float_range_of_infinite_width_panics() {
        StdRng::seed_from_u64(0).gen_range(f32::MIN..f32::MAX);
    }

    #[test]
    fn standard_f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
