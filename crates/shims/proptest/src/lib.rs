//! Offline stand-in for the parts of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this shim provides a
//! deterministic randomized-testing core with the same surface syntax:
//!
//! - the `proptest!` macro with `#![proptest_config(...)]` headers and
//!   `arg in strategy` bindings,
//! - [`strategy::Strategy`] implemented for numeric ranges and
//!   [`collection::vec`],
//! - [`prop_assert!`] / [`prop_assert_eq!`] returning soft failures with the
//!   failing case's seed in the panic message.
//!
//! Differences from real proptest: no shrinking (the failing input is
//! printed instead, so generated values must be `Clone + Debug`), and case
//! generation is seeded from the test's module path so runs are
//! reproducible without a persistence file.

// `proptest!`'s surface syntax requires `#[test]` on each property, so the
// macro's doc example necessarily contains one; the example drives the
// generated fn explicitly instead.
#![allow(clippy::test_attr_in_doctest)]

pub mod config {
    /// Mirror of `proptest::test_runner::Config` for the fields the
    /// workspace sets.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Value generator: the shim's equivalent of `proptest::strategy::Strategy`.
    ///
    /// Real proptest separates strategies from value trees to support
    /// shrinking; the shim generates concrete values directly.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Constant strategy (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy producing `Vec`s of a fixed length (the only size shape the
    /// workspace uses).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `proptest::collection::vec` limited to exact lengths.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use crate::config::ProptestConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Soft test-case failure produced by `prop_assert!`-family macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives the case loop for one property: owns the config and the
    /// deterministic per-test RNG.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// Seeds the RNG from the test's fully qualified name so each
        /// property gets an independent, reproducible stream.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(seed),
            }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` resolves after a
    /// glob import of the prelude, as with real proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Mirrors `proptest::proptest!` syntax:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// (Doctests compile but do not run `#[test]` items; the macro's behaviour
/// is exercised by this crate's unit tests.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = [$cfg]; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = [$crate::config::ProptestConfig::default()]; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = [$cfg:expr];) => {};
    (cfg = [$cfg:expr];
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::config::ProptestConfig = $cfg;
            let total = config.cases;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..total {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng());)+
                // Snapshot inputs (the body may move them); only a failing
                // case pays for Debug-formatting the snapshot.
                let __qn_snapshot = ($(::std::clone::Clone::clone(&$arg),)+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    let ($($arg,)+) = __qn_snapshot;
                    let mut inputs = ::std::string::String::new();
                    $(inputs.push_str(&::std::format!(
                        "\n    {} = {:?}", stringify!($arg), &$arg
                    ));)+
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}\n  inputs:{}",
                        case + 1,
                        total,
                        stringify!($name),
                        err,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_items!{ cfg = [$cfg]; $($rest)* }
    };
}

/// Soft assertion: fails the current case with the location and condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("{} ({}:{})", ::std::format_args!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            ::std::format_args!($($fmt)*)
        );
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Skips the rest of the case when the assumption fails. Unlike real
/// proptest the skipped case still counts toward the case total.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f32..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_has_exact_len(v in prop::collection::vec(0.0f32..1.0, 17)) {
            prop_assert_eq!(v.len(), 17);
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    // the nested `#[test]` comes from proptest!'s required syntax; the fn is
    // driven explicitly below rather than by the harness
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
