//! # qn-data
//!
//! Synthetic stand-ins for the paper's datasets, plus batching utilities.
//!
//! The reproduction environment has no CIFAR-10/100, ImageNet or WMT14
//! corpora, so this crate generates **procedural class-conditional data**
//! with the properties the paper's experiments rely on:
//!
//! - [`ImageDataset`] — classes defined by shape × palette × texture
//!   combinations. Several class pairs differ only in *texture variance*
//!   (same mean colour), a second-order statistic that linear neurons cannot
//!   separate but quadratic neurons can — preserving the paper's
//!   expressivity comparison.
//! - [`TranslationDataset`] — a stochastic synthetic language pair with
//!   dictionary mapping, adjective–noun reordering, compound splitting and
//!   suffix morphology, detokenizable to cased, punctuated, partly-Unicode
//!   strings so Table II's four BLEU evaluation settings are all
//!   meaningful.
//! - [`DataLoader`] — shuffled mini-batches with the paper's CIFAR
//!   augmentation (pad-and-random-crop, horizontal flip).

mod image;
mod loader;
mod translation;

pub use image::{
    synthetic_cifar10, synthetic_cifar100, synthetic_imagenet, ImageDataset, ImageDatasetConfig,
};
pub use loader::{augment_batch, DataLoader};
pub use translation::{SentencePair, TranslationConfig, TranslationDataset, BOS, EOS, PAD};
