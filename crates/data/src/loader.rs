use qn_tensor::{Rng, Tensor};

/// Shuffled mini-batch iterator over an image dataset.
///
/// # Example
///
/// ```
/// use qn_data::{synthetic_cifar10, DataLoader};
/// use qn_tensor::Rng;
///
/// let ds = synthetic_cifar10(8, 4, 1, 0);
/// let mut rng = Rng::seed_from(1);
/// let batches: Vec<_> = DataLoader::new(&ds.train_images, &ds.train_labels, 16)
///     .epoch(&mut rng)
///     .collect();
/// assert_eq!(batches.len(), 3); // 40 samples, batch 16 -> 16+16+8
/// ```
#[derive(Debug)]
pub struct DataLoader<'a> {
    images: &'a Tensor,
    labels: &'a [usize],
    batch_size: usize,
}

impl<'a> DataLoader<'a> {
    /// Creates a loader over `[N, …]` images with aligned labels.
    ///
    /// # Panics
    ///
    /// Panics if the leading dim differs from `labels.len()` or
    /// `batch_size == 0`.
    pub fn new(images: &'a Tensor, labels: &'a [usize], batch_size: usize) -> Self {
        assert_eq!(
            images.shape().dim(0),
            labels.len(),
            "images/labels count mismatch"
        );
        assert!(batch_size > 0, "batch_size must be positive");
        DataLoader {
            images,
            labels,
            batch_size,
        }
    }

    /// One shuffled pass over the data, yielding `(images, labels)` batches.
    pub fn epoch(&self, rng: &mut Rng) -> impl Iterator<Item = (Tensor, Vec<usize>)> + '_ {
        let order = self.shuffle_order(rng);
        self.epoch_with_order(order)
    }

    /// The shuffled sample order [`DataLoader::epoch`] would traverse,
    /// consuming the identical RNG draw. Checkpoint resume uses this to
    /// replay an epoch's order from the epoch-start RNG state and skip the
    /// batches a restored run already completed.
    pub fn shuffle_order(&self, rng: &mut Rng) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.labels.len()).collect();
        rng.shuffle(&mut order);
        order
    }

    /// Batches following an explicit sample order (see
    /// [`DataLoader::shuffle_order`]).
    ///
    /// # Panics
    ///
    /// Panics (in `select_rows`) if `order` contains an index at or beyond
    /// the dataset length.
    pub fn epoch_with_order(
        &self,
        order: Vec<usize>,
    ) -> impl Iterator<Item = (Tensor, Vec<usize>)> + '_ {
        let batch = self.batch_size;
        let images = self.images;
        let labels = self.labels;
        (0..order.len().div_ceil(batch)).map(move |b| {
            let idx = &order[b * batch..((b + 1) * batch).min(order.len())];
            let imgs = images.select_rows(idx);
            let labs: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            (imgs, labs)
        })
    }

    /// Deterministic, unshuffled batches (for evaluation).
    pub fn batches(&self) -> impl Iterator<Item = (Tensor, Vec<usize>)> + '_ {
        let batch = self.batch_size;
        let n = self.labels.len();
        (0..n.div_ceil(batch)).map(move |b| {
            let lo = b * batch;
            let hi = ((b + 1) * batch).min(n);
            let idx: Vec<usize> = (lo..hi).collect();
            (self.images.select_rows(&idx), self.labels[lo..hi].to_vec())
        })
    }
}

/// The paper's CIFAR augmentation: zero-pad by `pad`, random crop back to
/// the original size, and random horizontal flip.
pub fn augment_batch(images: &Tensor, pad: usize, rng: &mut Rng) -> Tensor {
    let (b, c, h, w) = images.dims4();
    let padded = images.pad_spatial(pad);
    let mut out = Tensor::zeros(&[b, c, h, w]);
    for bi in 0..b {
        let img = padded.slice_axis(0, bi, bi + 1);
        let top = rng.below(2 * pad + 1);
        let left = rng.below(2 * pad + 1);
        let mut crop = img.crop_spatial(top, left, h, w);
        if rng.chance(0.5) {
            crop = crop.flip_horizontal();
        }
        out.data_mut()[bi * c * h * w..(bi + 1) * c * h * w].copy_from_slice(crop.data());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Tensor, Vec<usize>) {
        (
            Tensor::from_fn(&[10, 1, 4, 4], |i| i as f32),
            (0..10).collect(),
        )
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let (images, labels) = toy();
        let loader = DataLoader::new(&images, &labels, 3);
        let mut rng = Rng::seed_from(1);
        let mut seen: Vec<usize> = loader.epoch(&mut rng).flat_map(|(_, l)| l).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batch_sizes_are_correct() {
        let (images, labels) = toy();
        let loader = DataLoader::new(&images, &labels, 4);
        let mut rng = Rng::seed_from(2);
        let sizes: Vec<usize> = loader
            .epoch(&mut rng)
            .map(|(im, _)| im.shape().dim(0))
            .collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn epoch_with_order_replays_epoch_from_rng_state() {
        let (images, labels) = toy();
        let loader = DataLoader::new(&images, &labels, 3);
        let mut rng = Rng::seed_from(7);
        let start = rng.state();
        let direct: Vec<Vec<usize>> = loader.epoch(&mut rng).map(|(_, l)| l).collect();
        let mut replay_rng = Rng::from_state(start);
        let order = loader.shuffle_order(&mut replay_rng);
        let replayed: Vec<Vec<usize>> = loader.epoch_with_order(order).map(|(_, l)| l).collect();
        assert_eq!(direct, replayed);
        assert_eq!(rng.state(), replay_rng.state());
    }

    #[test]
    fn eval_batches_are_ordered() {
        let (images, labels) = toy();
        let loader = DataLoader::new(&images, &labels, 4);
        let labs: Vec<usize> = loader.batches().flat_map(|(_, l)| l).collect();
        assert_eq!(labs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn augmentation_preserves_shape_and_content_scale() {
        let mut rng = Rng::seed_from(3);
        let images = Tensor::rand_uniform(&[4, 3, 8, 8], -1.0, 1.0, &mut rng);
        let aug = augment_batch(&images, 2, &mut rng);
        assert_eq!(aug.shape().dims(), images.shape().dims());
        // crops/flips never create values outside the input range
        assert!(aug.max() <= 1.0 && aug.min() >= -1.0);
    }

    #[test]
    fn augmentation_varies_across_calls() {
        let mut rng = Rng::seed_from(4);
        let images = Tensor::rand_uniform(&[2, 1, 8, 8], -1.0, 1.0, &mut rng);
        let a = augment_batch(&images, 2, &mut rng);
        let b = augment_batch(&images, 2, &mut rng);
        assert!(!a.allclose(&b, 1e-6));
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn misaligned_labels_panic() {
        let images = Tensor::zeros(&[3, 1, 4, 4]);
        DataLoader::new(&images, &[0, 1], 2);
    }
}
