use qn_tensor::{Rng, Tensor};

/// Configuration for a procedural image dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageDatasetConfig {
    /// Number of classes.
    pub classes: usize,
    /// Square image side length.
    pub resolution: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// RNG seed (datasets are fully deterministic given the seed).
    pub seed: u64,
    /// Intra-class variability in `[0, 1]`: jitter of position, size,
    /// brightness and noise.
    pub variability: f32,
}

impl Default for ImageDatasetConfig {
    fn default() -> Self {
        ImageDatasetConfig {
            classes: 10,
            resolution: 16,
            train_per_class: 100,
            test_per_class: 20,
            seed: 0,
            variability: 0.5,
        }
    }
}

/// A generated image dataset: `[N, 3, R, R]` tensors in roughly `[-1, 1]`
/// with integer labels.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    /// Training images `[N_train, 3, R, R]`.
    pub train_images: Tensor,
    /// Training labels, `len == N_train`.
    pub train_labels: Vec<usize>,
    /// Test images `[N_test, 3, R, R]`.
    pub test_images: Tensor,
    /// Test labels, `len == N_test`.
    pub test_labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

const SHAPES: usize = 10;

/// Foreground/background palettes; the last two entries deliberately share
/// the mean colour and differ only in texture amplitude, so separating them
/// requires second-order statistics.
const PALETTES: [([f32; 3], [f32; 3], f32); 10] = [
    ([0.9, 0.2, 0.2], [-0.6, -0.6, -0.6], 0.0),
    ([0.2, 0.9, 0.2], [-0.6, -0.2, -0.6], 0.0),
    ([0.2, 0.2, 0.9], [-0.2, -0.6, -0.6], 0.0),
    ([0.8, 0.8, 0.1], [-0.7, -0.1, -0.4], 0.0),
    ([0.8, 0.1, 0.8], [-0.1, -0.5, -0.5], 0.0),
    ([0.1, 0.8, 0.8], [-0.5, -0.5, -0.1], 0.0),
    ([0.9, 0.5, 0.1], [-0.3, -0.3, -0.7], 0.0),
    ([0.5, 0.9, 0.5], [-0.7, -0.3, -0.3], 0.0),
    ([0.3, 0.3, 0.3], [0.3, 0.3, 0.3], 0.45), // texture classes: same mean,
    ([0.3, 0.3, 0.3], [0.3, 0.3, 0.3], 0.9),  // different variance
];

fn shape_mask(shape: usize, res: usize, cx: f32, cy: f32, size: f32, x: usize, y: usize) -> bool {
    let fx = (x as f32 + 0.5) / res as f32 - cx;
    let fy = (y as f32 + 0.5) / res as f32 - cy;
    match shape % SHAPES {
        0 => fx * fx + fy * fy < size * size,    // disc
        1 => fx.abs() < size && fy.abs() < size, // square
        2 => fy > -size && fy < size && fx.abs() < (size - fy) * 0.8, // triangle
        3 => fx.abs() < size * 0.35 || fy.abs() < size * 0.35, // cross
        4 => ((fy + 1.0) * res as f32 * 0.5) as usize % 4 < 2 && fy.abs() < size * 1.4, // h-stripes
        5 => ((fx + 1.0) * res as f32 * 0.5) as usize % 4 < 2 && fx.abs() < size * 1.4, // v-stripes
        6 => (fx + fy).abs() < size * 0.5,       // diagonal bar
        7 => {
            let r2 = fx * fx + fy * fy;
            r2 < size * size && r2 > size * size * 0.3 // ring
        }
        8 => {
            (((fx + 1.0) * res as f32 * 0.5) as usize % 4 < 2)
                ^ (((fy + 1.0) * res as f32 * 0.5) as usize % 4 < 2)
        } // checker
        _ => {
            let gx = ((fx + 1.0) * res as f32 * 0.5) as usize % 5;
            let gy = ((fy + 1.0) * res as f32 * 0.5) as usize % 5;
            gx < 2 && gy < 2 // dot grid
        }
    }
}

fn render(class: usize, res: usize, variability: f32, rng: &mut Rng) -> Vec<f32> {
    let shape = class % SHAPES;
    let (fg, bg, texture) = PALETTES[(class / SHAPES) % PALETTES.len()];
    let v = variability;
    let cx = 0.5 + rng.uniform(-0.15, 0.15) * v;
    let cy = 0.5 + rng.uniform(-0.15, 0.15) * v;
    let size = 0.3 * (1.0 + rng.uniform(-0.4, 0.4) * v);
    let brightness = 1.0 + rng.uniform(-0.3, 0.3) * v;
    let noise = 0.08 + 0.12 * v;
    let mut img = vec![0.0f32; 3 * res * res];
    for y in 0..res {
        for x in 0..res {
            let inside = shape_mask(shape, res, cx, cy, size, x, y);
            let base = if inside { fg } else { bg };
            // texture classes: the *foreground* carries high-variance noise
            let tex_amp = if inside { texture } else { texture * 0.15 };
            for c in 0..3 {
                let tex = if tex_amp > 0.0 {
                    rng.uniform(-tex_amp, tex_amp)
                } else {
                    0.0
                };
                img[c * res * res + y * res + x] =
                    (base[c] * brightness + tex + rng.normal() * noise).clamp(-1.0, 1.0);
            }
        }
    }
    img
}

fn generate(cfg: ImageDatasetConfig, per_class: usize, rng: &mut Rng) -> (Tensor, Vec<usize>) {
    let res = cfg.resolution;
    let n = cfg.classes * per_class;
    let mut data = Vec::with_capacity(n * 3 * res * res);
    let mut labels = Vec::with_capacity(n);
    for class in 0..cfg.classes {
        for _ in 0..per_class {
            data.extend(render(class, res, cfg.variability, rng));
            labels.push(class);
        }
    }
    // shuffle samples jointly
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let stride = 3 * res * res;
    let mut shuffled = Vec::with_capacity(data.len());
    let mut shuffled_labels = Vec::with_capacity(n);
    for &i in &order {
        shuffled.extend_from_slice(&data[i * stride..(i + 1) * stride]);
        shuffled_labels.push(labels[i]);
    }
    (
        Tensor::from_vec(shuffled, &[n, 3, res, res]).expect("sizes consistent"),
        shuffled_labels,
    )
}

impl ImageDataset {
    /// Generates a dataset from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or `resolution < 8`.
    pub fn generate(cfg: ImageDatasetConfig) -> Self {
        assert!(cfg.classes > 0, "need at least one class");
        assert!(cfg.resolution >= 8, "resolution must be >= 8");
        let mut rng = Rng::seed_from(cfg.seed);
        let (train_images, train_labels) = generate(cfg, cfg.train_per_class, &mut rng);
        let (test_images, test_labels) = generate(cfg, cfg.test_per_class, &mut rng);
        ImageDataset {
            train_images,
            train_labels,
            test_images,
            test_labels,
            classes: cfg.classes,
        }
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }
}

/// A 10-class CIFAR-10 stand-in at the given resolution and size.
pub fn synthetic_cifar10(
    resolution: usize,
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> ImageDataset {
    ImageDataset::generate(ImageDatasetConfig {
        classes: 10,
        resolution,
        train_per_class,
        test_per_class,
        seed,
        variability: 0.5,
    })
}

/// A 100-class CIFAR-100 stand-in (all shape × palette combinations).
pub fn synthetic_cifar100(
    resolution: usize,
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> ImageDataset {
    ImageDataset::generate(ImageDatasetConfig {
        classes: 100,
        resolution,
        train_per_class,
        test_per_class,
        seed,
        variability: 0.5,
    })
}

/// A higher-variability 20-class ImageNet stand-in for the training-
/// stability experiment (Fig. 6).
pub fn synthetic_imagenet(
    resolution: usize,
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> ImageDataset {
    ImageDataset::generate(ImageDatasetConfig {
        classes: 20,
        resolution,
        train_per_class,
        test_per_class,
        seed,
        variability: 0.8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let ds = synthetic_cifar10(16, 5, 2, 1);
        assert_eq!(ds.train_images.shape().dims(), &[50, 3, 16, 16]);
        assert_eq!(ds.test_images.shape().dims(), &[20, 3, 16, 16]);
        assert_eq!(ds.train_len(), 50);
        assert_eq!(ds.test_len(), 20);
        // every class present
        for c in 0..10 {
            assert_eq!(ds.train_labels.iter().filter(|&&l| l == c).count(), 5);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = synthetic_cifar10(8, 2, 1, 7);
        let b = synthetic_cifar10(8, 2, 1, 7);
        assert!(a.train_images.allclose(&b.train_images, 0.0));
        assert_eq!(a.train_labels, b.train_labels);
        let c = synthetic_cifar10(8, 2, 1, 8);
        assert!(!a.train_images.allclose(&c.train_images, 0.0));
    }

    #[test]
    fn values_bounded() {
        let ds = synthetic_cifar10(8, 3, 1, 2);
        assert!(ds.train_images.max() <= 1.0);
        assert!(ds.train_images.min() >= -1.0);
        assert!(!ds.train_images.has_non_finite());
    }

    #[test]
    fn classes_are_visually_distinct() {
        // mean image of class 0 (red disc) must differ from class 1 (green
        // square) by a wide margin
        let ds = synthetic_cifar10(16, 20, 1, 3);
        let mut mean0 = Tensor::zeros(&[3 * 16 * 16]);
        let mut mean1 = Tensor::zeros(&[3 * 16 * 16]);
        let (mut n0, mut n1) = (0, 0);
        for (i, &l) in ds.train_labels.iter().enumerate() {
            let img = ds
                .train_images
                .slice_axis(0, i, i + 1)
                .reshape(&[3 * 16 * 16])
                .expect("one [1, 3, 16, 16] sample flattens to 3*16*16 elements");
            if l == 0 {
                mean0.add_assign(&img);
                n0 += 1;
            } else if l == 1 {
                mean1.add_assign(&img);
                n1 += 1;
            }
        }
        let d = mean0
            .scale(1.0 / n0 as f32)
            .sub(&mean1.scale(1.0 / n1 as f32));
        assert!(
            d.frob_norm() > 1.0,
            "class means too close: {}",
            d.frob_norm()
        );
    }

    #[test]
    fn texture_classes_share_mean_but_differ_in_variance() {
        // classes 80..89 and 90..99 in the 100-class set use the texture
        // palettes: their channel means match but variances differ
        let ds = synthetic_cifar100(16, 10, 1, 4);
        let stats = |class: usize| -> (f32, f32) {
            let mut vals = Vec::new();
            for (i, &l) in ds.train_labels.iter().enumerate() {
                if l == class {
                    let img = ds.train_images.slice_axis(0, i, i + 1);
                    vals.extend_from_slice(img.data());
                }
            }
            let mean = vals.iter().sum::<f32>() / vals.len() as f32;
            let var =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            (mean, var)
        };
        let (m_low, v_low) = stats(80); // texture amplitude 0.45
        let (m_high, v_high) = stats(90); // texture amplitude 0.9
        assert!((m_low - m_high).abs() < 0.06, "means {m_low} vs {m_high}");
        assert!(v_high > 1.5 * v_low, "variances {v_high} vs {v_low}");
    }

    #[test]
    fn imagenet_variant_has_more_classes_and_spread() {
        let ds = synthetic_imagenet(16, 2, 1, 5);
        assert_eq!(ds.classes, 20);
        assert_eq!(ds.train_len(), 40);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn tiny_resolution_panics() {
        ImageDataset::generate(ImageDatasetConfig {
            resolution: 4,
            ..ImageDatasetConfig::default()
        });
    }
}
