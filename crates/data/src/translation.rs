//! A synthetic language pair standing in for WMT14 En→De.
//!
//! The "source language" draws from a small vocabulary of cased, partly
//! Unicode word forms; the "target language" is produced by a stochastic
//! transducer applying four phenomena that make the task attention-worthy:
//! dictionary mapping, adjective–noun reordering, compound splitting
//! (one source token → two target tokens) and suffix morphology (a suffix
//! token conditioned on the *preceding* word class). Sentences end with
//! sampled punctuation so BLEU tokenization settings (13a vs international,
//! cased vs uncased) measurably differ.

use qn_tensor::Rng;

/// Padding token id.
pub const PAD: usize = 0;
/// Beginning-of-sequence token id.
pub const BOS: usize = 1;
/// End-of-sequence token id.
pub const EOS: usize = 2;

const SPECIALS: usize = 3;

/// Word classes driving the transduction rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WordClass {
    Article,
    Noun,
    Adjective,
    Verb,
    Compound,
}

/// source form, word class, target form(s)
const LEXICON: [(&str, WordClass, &[&str]); 24] = [
    ("the", WordClass::Article, &["der"]),
    ("a", WordClass::Article, &["ein"]),
    ("dog", WordClass::Noun, &["Hund"]),
    ("cat", WordClass::Noun, &["Katze"]),
    ("house", WordClass::Noun, &["Haus"]),
    ("tree", WordClass::Noun, &["Baum"]),
    ("river", WordClass::Noun, &["Fluß"]),
    ("street", WordClass::Noun, &["Straße"]),
    ("king", WordClass::Noun, &["König"]),
    ("door", WordClass::Noun, &["Tür"]),
    ("big", WordClass::Adjective, &["groß"]),
    ("small", WordClass::Adjective, &["klein"]),
    ("fast", WordClass::Adjective, &["schnell"]),
    ("green", WordClass::Adjective, &["grün"]),
    ("old", WordClass::Adjective, &["alt"]),
    ("runs", WordClass::Verb, &["läuft"]),
    ("sees", WordClass::Verb, &["sieht"]),
    ("opens", WordClass::Verb, &["öffnet"]),
    ("builds", WordClass::Verb, &["baut"]),
    ("finds", WordClass::Verb, &["findet"]),
    ("doghouse", WordClass::Compound, &["Hunde", "Haus"]),
    ("streetlight", WordClass::Compound, &["Straßen", "Licht"]),
    ("riverbank", WordClass::Compound, &["Fluß", "Ufer"]),
    ("kingdom", WordClass::Compound, &["König", "Reich"]),
];

const SUFFIX: &str = "chen";
const PUNCT: [&str; 4] = [".", "!", "?", "\u{2026}"]; // "…" is non-ASCII: 13a keeps it glued, international splits it

/// One sentence pair as token-id sequences (no BOS/EOS framing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentencePair {
    /// Source token ids.
    pub source: Vec<usize>,
    /// Target token ids.
    pub target: Vec<usize>,
}

/// Configuration for the synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationConfig {
    /// Training sentence pairs.
    pub train_pairs: usize,
    /// Test sentence pairs.
    pub test_pairs: usize,
    /// Minimum clause count (each clause is article-adjective-noun-verb).
    pub min_clauses: usize,
    /// Maximum clause count.
    pub max_clauses: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TranslationConfig {
    fn default() -> Self {
        TranslationConfig {
            train_pairs: 600,
            test_pairs: 80,
            min_clauses: 1,
            max_clauses: 2,
            seed: 0,
        }
    }
}

/// The generated corpus with vocabulary tables and detokenizers.
#[derive(Debug, Clone)]
pub struct TranslationDataset {
    /// Training pairs.
    pub train: Vec<SentencePair>,
    /// Test pairs.
    pub test: Vec<SentencePair>,
    src_vocab: Vec<String>,
    tgt_vocab: Vec<String>,
}

impl TranslationDataset {
    /// Generates a corpus.
    ///
    /// # Panics
    ///
    /// Panics if `min_clauses == 0` or `min_clauses > max_clauses`.
    pub fn generate(cfg: TranslationConfig) -> Self {
        assert!(
            cfg.min_clauses >= 1 && cfg.min_clauses <= cfg.max_clauses,
            "clause range invalid"
        );
        let mut src_vocab: Vec<String> = vec!["<pad>".into(), "<bos>".into(), "<eos>".into()];
        let mut tgt_vocab = src_vocab.clone();
        for (src, _, _) in LEXICON {
            src_vocab.push(src.to_string());
        }
        for (_, _, tgts) in LEXICON {
            for t in tgts {
                if !tgt_vocab.contains(&t.to_string()) {
                    tgt_vocab.push(t.to_string());
                }
            }
        }
        tgt_vocab.push(SUFFIX.to_string());
        for p in PUNCT {
            src_vocab.push(p.to_string());
            tgt_vocab.push(p.to_string());
        }
        // Panic contract: every token the generator emits comes from
        // `LEXICON`/`PUNCT`/`SUFFIX`, and both vocabularies were built from
        // exactly those tables above — a miss therefore means the tables and
        // the vocab construction went out of sync, which is a programmer
        // error worth a loud diagnostic rather than a silent fallback id.
        let ds_src_id = |s: &str, v: &[String]| {
            v.iter().position(|w| w == s).unwrap_or_else(|| {
                panic!(
                    "token {s:?} missing from a vocabulary of {} entries — \
                     LEXICON/PUNCT/SUFFIX and the vocab construction are out of sync",
                    v.len()
                )
            })
        };

        let mut rng = Rng::seed_from(cfg.seed);
        let gen_pair = |rng: &mut Rng| -> SentencePair {
            let clauses = cfg.min_clauses + rng.below(cfg.max_clauses - cfg.min_clauses + 1);
            let mut src = Vec::new();
            let mut tgt = Vec::new();
            for _ in 0..clauses {
                let art = rng.below(2); // the, a
                let adj = 10 + rng.below(5);
                let use_compound = rng.chance(0.25);
                let noun = if use_compound {
                    20 + rng.below(4)
                } else {
                    2 + rng.below(8)
                };
                let verb = 15 + rng.below(5);
                // source order: article adjective noun verb
                for &i in &[art, adj, noun, verb] {
                    src.push(ds_src_id(LEXICON[i].0, &src_vocab));
                }
                // target: article, then NOUN BEFORE ADJECTIVE (reordering),
                // compounds split, diminutive suffix after noun with p=0.3
                tgt.push(ds_src_id(LEXICON[art].2[0], &tgt_vocab));
                for t in LEXICON[noun].2.iter().copied() {
                    tgt.push(ds_src_id(t, &tgt_vocab));
                }
                if rng.chance(0.3) && LEXICON[noun].1 == WordClass::Noun {
                    tgt.push(ds_src_id(SUFFIX, &tgt_vocab));
                }
                tgt.push(ds_src_id(LEXICON[adj].2[0], &tgt_vocab));
                tgt.push(ds_src_id(LEXICON[verb].2[0], &tgt_vocab));
            }
            let punct = PUNCT[rng.below(PUNCT.len())];
            src.push(ds_src_id(punct, &src_vocab));
            tgt.push(ds_src_id(punct, &tgt_vocab));
            SentencePair {
                source: src,
                target: tgt,
            }
        };

        let train: Vec<SentencePair> = (0..cfg.train_pairs).map(|_| gen_pair(&mut rng)).collect();
        let test: Vec<SentencePair> = (0..cfg.test_pairs).map(|_| gen_pair(&mut rng)).collect();
        TranslationDataset {
            train,
            test,
            src_vocab,
            tgt_vocab,
        }
    }

    /// Source vocabulary size (including specials).
    pub fn src_vocab_len(&self) -> usize {
        self.src_vocab.len()
    }

    /// Target vocabulary size (including specials).
    pub fn tgt_vocab_len(&self) -> usize {
        self.tgt_vocab.len()
    }

    /// Longest source/target sequence in the corpus (without framing).
    pub fn max_len(&self) -> usize {
        self.train
            .iter()
            .chain(self.test.iter())
            .map(|p| p.source.len().max(p.target.len()))
            .max()
            .unwrap_or(0)
    }

    /// Renders target token ids as a detokenized string: words joined with
    /// spaces, punctuation attached to the previous word, and the first word
    /// title-cased (as real detokenizers do) — the form BLEU tokenizers
    /// re-split. Title-casing makes the cased/uncased Table II settings
    /// diverge whenever a hypothesis starts with a word the reference has
    /// mid-sentence.
    pub fn detokenize_target(&self, ids: &[usize]) -> String {
        let mut out = String::new();
        let mut first_word = true;
        for &id in ids {
            if id < SPECIALS || id >= self.tgt_vocab.len() {
                continue;
            }
            let w = &self.tgt_vocab[id];
            if PUNCT.contains(&w.as_str()) {
                out.push_str(w);
            } else {
                if !out.is_empty() {
                    out.push(' ');
                }
                if first_word {
                    let mut chars = w.chars();
                    if let Some(c) = chars.next() {
                        out.extend(c.to_uppercase());
                        out.push_str(chars.as_str());
                    }
                    first_word = false;
                } else {
                    out.push_str(w);
                }
            }
        }
        out
    }

    /// Looks up a target word form.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn tgt_word(&self, id: usize) -> &str {
        &self.tgt_vocab[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sizes_and_determinism() {
        let cfg = TranslationConfig {
            train_pairs: 20,
            test_pairs: 5,
            ..TranslationConfig::default()
        };
        let a = TranslationDataset::generate(cfg);
        let b = TranslationDataset::generate(cfg);
        assert_eq!(a.train.len(), 20);
        assert_eq!(a.test.len(), 5);
        assert_eq!(a.train, b.train);
    }

    #[test]
    fn token_ids_in_range() {
        let ds = TranslationDataset::generate(TranslationConfig {
            train_pairs: 50,
            test_pairs: 10,
            ..TranslationConfig::default()
        });
        for p in ds.train.iter().chain(ds.test.iter()) {
            for &t in &p.source {
                assert!(t >= SPECIALS && t < ds.src_vocab_len());
            }
            for &t in &p.target {
                assert!(t >= SPECIALS && t < ds.tgt_vocab_len());
            }
        }
    }

    #[test]
    fn target_reorders_noun_before_adjective() {
        // for a single simple clause "the big dog runs." the target must be
        // "der Hund [chen] groß läuft." — noun precedes adjective
        let ds = TranslationDataset::generate(TranslationConfig {
            train_pairs: 200,
            test_pairs: 1,
            min_clauses: 1,
            max_clauses: 1,
            seed: 3,
        });
        let mut checked = 0;
        for p in &ds.train {
            let s = ds.detokenize_target(&p.target);
            // adjective forms never appear immediately after the article
            for art in ["Der", "Ein"] {
                if let Some(pos) = s.find(art) {
                    let rest = &s[pos + art.len() + 1..];
                    let first_word = rest.split(' ').next().unwrap_or("");
                    for adj in ["groß", "klein", "schnell", "grün", "alt"] {
                        assert_ne!(first_word, adj, "adjective directly after article in {s:?}");
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 50);
    }

    #[test]
    fn compounds_split_into_two_target_tokens() {
        let ds = TranslationDataset::generate(TranslationConfig {
            train_pairs: 300,
            test_pairs: 1,
            min_clauses: 1,
            max_clauses: 1,
            seed: 4,
        });
        // find a pair whose source contains "doghouse"
        let dog_id = 3 + 20; // specials + lexicon index of doghouse
        let pair = ds
            .train
            .iter()
            .find(|p| p.source.contains(&dog_id))
            .expect("compound appears in 300 sentences");
        let s = ds.detokenize_target(&pair.target);
        assert!(s.contains("Hunde Haus"), "compound not split: {s:?}");
    }

    #[test]
    fn detokenization_attaches_punctuation() {
        let ds = TranslationDataset::generate(TranslationConfig {
            train_pairs: 5,
            test_pairs: 1,
            ..TranslationConfig::default()
        });
        let s = ds.detokenize_target(&ds.train[0].target);
        assert!(
            s.ends_with('.') || s.ends_with('!') || s.ends_with('?') || s.ends_with('\u{2026}')
        );
        assert!(!s.contains(" ."));
        // first word is title-cased
        assert!(s.chars().next().map(char::is_uppercase).unwrap_or(false));
    }

    #[test]
    fn vocabulary_contains_unicode_forms() {
        let ds = TranslationDataset::generate(TranslationConfig::default());
        let joined: String = (0..ds.tgt_vocab_len())
            .map(|i| ds.tgt_word(i).to_string())
            .collect();
        assert!(joined.contains('ß') || joined.contains('ö') || joined.contains('ü'));
    }
}
