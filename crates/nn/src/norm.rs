//! Normalization layers.

use crate::{Costs, Module, ParamVisitor};
use qn_autograd::{ChainStage, Exec, Parameter, Var};
use qn_tensor::Tensor;
use std::sync::RwLock;

/// Batch normalization over `[B, C, H, W]` with running statistics.
///
/// In training mode (graph built with [`Graph::training`](qn_autograd::Graph::training)) the layer
/// normalizes with batch statistics and folds them into its running mean and
/// variance with the configured momentum; in inference mode it uses the
/// running statistics.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Parameter,
    beta: Parameter,
    // `RwLock`, not `RefCell`: modules are shared across the `qn-parallel`
    // pool during sharded inference, which only ever reads these.
    running_mean: RwLock<Tensor>,
    running_var: RwLock<Tensor>,
    momentum: f32,
    eps: f32,
    channels: usize,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels
    /// (γ = 1, β = 0, running mean = 0, running var = 1).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Parameter::named("bn.gamma", Tensor::ones(&[channels])),
            beta: Parameter::named("bn.beta", Tensor::zeros(&[channels])),
            running_mean: RwLock::new(Tensor::zeros(&[channels])),
            running_var: RwLock::new(Tensor::ones(&[channels])),
            momentum: 0.1,
            eps: 1e-5,
            channels,
        }
    }

    /// Snapshot of the running mean.
    ///
    /// # Panics
    ///
    /// Panics if the running-stats lock is poisoned (a training thread
    /// panicked mid-update) — the statistics would be unreliable, so this
    /// is unrecoverable by design.
    pub fn running_mean(&self) -> Tensor {
        self.running_mean
            .read()
            .expect("running stats lock poisoned")
            .clone()
    }

    /// Snapshot of the running variance.
    ///
    /// # Panics
    ///
    /// Panics if the running-stats lock is poisoned (see
    /// [`BatchNorm2d::running_mean`]).
    pub fn running_var(&self) -> Tensor {
        self.running_var
            .read()
            .expect("running stats lock poisoned")
            .clone()
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// A deep copy of this layer with the current γ/β and running
    /// statistics — the batch-norm contribution to [`Module::quantized`]
    /// trees, which must not alias the original's training state.
    ///
    /// # Panics
    ///
    /// Panics if the running-stats lock is poisoned (see
    /// [`BatchNorm2d::running_mean`]).
    pub fn snapshot(&self) -> BatchNorm2d {
        BatchNorm2d {
            gamma: Parameter::named("bn.gamma", self.gamma.value()),
            beta: Parameter::named("bn.beta", self.beta.value()),
            running_mean: RwLock::new(self.running_mean()),
            running_var: RwLock::new(self.running_var()),
            momentum: self.momentum,
            eps: self.eps,
            channels: self.channels,
        }
    }

    /// Forward pass with an optionally fused tail: batch norm, then an
    /// optional residual add, then an optional ReLU — the `conv → bn
    /// (→ add → relu)` shape of every ResNet block.
    ///
    /// In **training** mode this decomposes into the ordinary primitives
    /// (`forward`, `add`, `relu`) so the tape records every stage and the
    /// running statistics update. In **inference** mode the whole tail runs
    /// as one [`Exec::elemwise_chain`] — on the eager path a single pass
    /// over the activation instead of three — with bitwise-identical
    /// values (each element sees the same scalar expressions in the same
    /// order).
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as [`Module::forward`] /
    /// [`Exec::add`], and if the running-stats lock is poisoned (see
    /// [`BatchNorm2d::running_mean`]).
    pub fn forward_fused(
        &self,
        g: &mut dyn Exec,
        x: Var,
        relu: bool,
        residual: Option<Var>,
    ) -> Var {
        if g.is_training() {
            let mut v = self.forward(g, x);
            if let Some(r) = residual {
                v = g.add(v, r);
            }
            if relu {
                v = g.relu(v);
            }
            return v;
        }
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        let rm = self
            .running_mean
            .read()
            .expect("running stats lock poisoned");
        let rv = self
            .running_var
            .read()
            .expect("running stats lock poisoned");
        let mut stages = [ChainStage::Relu; 3];
        let mut n = 0usize;
        stages[n] = ChainStage::NormChannel {
            gamma,
            beta,
            mean: &rm,
            var: &rv,
            eps: self.eps,
        };
        n += 1;
        if let Some(r) = residual {
            stages[n] = ChainStage::AddResidual(r);
            n += 1;
        }
        if relu {
            stages[n] = ChainStage::Relu;
            n += 1;
        }
        g.elemwise_chain(x, &stages[..n])
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        // read-guard the running stats for the duration of the op instead
        // of cloning snapshots: two fewer allocations per call, and the
        // guards drop before the training path takes the write locks below
        let (y, stats) = {
            let rm = self
                .running_mean
                .read()
                .expect("running stats lock poisoned");
            let rv = self
                .running_var
                .read()
                .expect("running stats lock poisoned");
            g.batch_norm2d(x, gamma, beta, &rm, &rv, self.eps)
        };
        if let Some((mean, var)) = stats {
            // Fold each batch statistic into the *current* running value
            // under one write-lock acquisition: concurrent training shards
            // (data-parallel gradient accumulation) then each contribute
            // their momentum step in completion order instead of racing a
            // read-modify-write and losing updates.
            let m = self.momentum;
            {
                let mut rm = self
                    .running_mean
                    .write()
                    .expect("running stats lock poisoned");
                // in place: rm·(1−m) + mean·m via decay + axpy — the same
                // per-element expression as the old scale/add chain, minus
                // its three temporaries
                rm.map_inplace(|v| v * (1.0 - m));
                rm.axpy(m, &mean);
            }
            {
                let mut rv = self
                    .running_var
                    .write()
                    .expect("running stats lock poisoned");
                rv.map_inplace(|v| v * (1.0 - m));
                rv.axpy(m, &var);
            }
        }
        y
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("gamma", &self.gamma);
        v.param("beta", &self.beta);
        v.state("running_mean", &self.running_mean);
        v.state("running_var", &self.running_var);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        Costs::passthrough(input)
    }

    // Batch norm stays in f32 inside quantized trees (its per-channel
    // affine is cheap and numerically delicate); quantization just
    // snapshots the statistics.
    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(self.snapshot()))
    }
}

/// Layer normalization over the trailing dimension with learned affine
/// parameters — the Transformer's normalizer.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Parameter,
    beta: Parameter,
    eps: f32,
    width: usize,
}

impl LayerNorm {
    /// Creates a layer norm over a trailing dim of `width`.
    pub fn new(width: usize) -> Self {
        LayerNorm {
            gamma: Parameter::named("ln.gamma", Tensor::ones(&[width])),
            beta: Parameter::named("ln.beta", Tensor::zeros(&[width])),
            eps: 1e-5,
            width,
        }
    }

    /// Normalized width.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Module for LayerNorm {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("gamma", &self.gamma);
        v.param("beta", &self.beta);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        Costs::passthrough(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::Graph;
    use qn_tensor::Rng;

    #[test]
    fn batch_norm_updates_running_stats_in_training() {
        let mut rng = Rng::seed_from(1);
        let bn = BatchNorm2d::new(3);
        let before = bn.running_mean();
        let mut g = Graph::training(0);
        let x = g.leaf(Tensor::randn(&[4, 3, 4, 4], &mut rng).add_scalar(5.0));
        let _ = bn.forward(&mut g, x);
        let after = bn.running_mean();
        assert!(!after.allclose(&before, 1e-6), "running mean must move");
        // moved toward +5 with momentum 0.1
        assert!(after.mean() > 0.3 && after.mean() < 0.7);
    }

    #[test]
    fn batch_norm_inference_leaves_stats() {
        let mut rng = Rng::seed_from(2);
        let bn = BatchNorm2d::new(2);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[2, 2, 3, 3], &mut rng));
        let _ = bn.forward(&mut g, x);
        assert!(bn.running_mean().allclose(&Tensor::zeros(&[2]), 0.0));
        assert!(bn.running_var().allclose(&Tensor::ones(&[2]), 0.0));
    }

    #[test]
    fn layer_norm_module_runs() {
        let mut rng = Rng::seed_from(3);
        let ln = LayerNorm::new(6);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[2, 4, 6], &mut rng).scale(5.0));
        let y = ln.forward(&mut g, x);
        assert_eq!(g.value(y).shape().dims(), &[2, 4, 6]);
        // rows normalized
        let row = g.value(y).slice_axis(0, 0, 1).slice_axis(1, 0, 1);
        assert!(row.mean().abs() < 1e-4);
        assert_eq!(ln.params().len(), 2);
    }
}
