//! Weight initializers.

use qn_tensor::{Rng, Tensor};

/// Kaiming (He) normal initialization: `N(0, sqrt(2 / fan_in))` — the
/// standard choice for ReLU networks, used by every conv/linear layer here.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::from_fn(dims, |_| rng.normal() * std)
}

/// Kaiming uniform initialization: `U(-b, b)` with `b = sqrt(6 / fan_in)`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_uniform(dims: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    Tensor::rand_uniform(dims, -bound, bound, rng)
}

/// Xavier/Glorot uniform initialization over `fan_in + fan_out` — used for
/// attention projections.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    assert!(fan_in + fan_out > 0, "fans must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(dims, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_normal_std_scales_with_fan_in() {
        let mut rng = Rng::seed_from(1);
        let t = kaiming_normal(&[200, 50], 50, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        let expected = 2.0 / 50.0;
        assert!(mean.abs() < 0.01);
        assert!(
            (var - expected).abs() < 0.2 * expected,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn kaiming_uniform_bounded() {
        let mut rng = Rng::seed_from(2);
        let bound = (6.0f32 / 10.0).sqrt();
        let t = kaiming_uniform(&[100], 10, &mut rng);
        assert!(t.max() <= bound && t.min() >= -bound);
    }

    #[test]
    fn xavier_bounded() {
        let mut rng = Rng::seed_from(3);
        let bound = (6.0f32 / 30.0).sqrt();
        let t = xavier_uniform(&[10, 20], 10, 20, &mut rng);
        assert!(t.max() <= bound && t.min() >= -bound);
    }
}
