//! Plain-text model checkpointing.
//!
//! Parameters are serialized in declaration order as a simple line format
//! (`name shape… : values…`), so any module stack can round-trip its weights
//! without a serialization framework. Loading matches strictly by order and
//! shape, which is the right contract for the deterministic builders in this
//! workspace.

use qn_autograd::Parameter;
use qn_tensor::Tensor;
use std::fmt::Write as FmtWrite;
use std::io;
use std::path::Path;

/// Serializes parameters to the checkpoint text format.
pub fn to_string(params: &[Parameter]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "quadranet-checkpoint v1 {}", params.len());
    for p in params {
        let v = p.value();
        let dims: Vec<String> = v.shape().dims().iter().map(|d| d.to_string()).collect();
        let name = if p.name().is_empty() { "_" } else { p.name() };
        let _ = write!(out, "{name} {} :", dims.join(" "));
        for x in v.data() {
            let _ = write!(out, " {x}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes a checkpoint file.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn save(params: &[Parameter], path: &Path) -> io::Result<()> {
    std::fs::write(path, to_string(params))
}

/// Error from [`from_str`]/[`load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadCheckpointError {
    /// Header missing or malformed.
    BadHeader,
    /// Parameter count in the file differs from the model's.
    CountMismatch {
        /// Parameters expected by the model.
        expected: usize,
        /// Parameters found in the file.
        found: usize,
    },
    /// A parameter line failed to parse or its shape/values disagree.
    BadEntry(usize),
    /// A stored shape differs from the model's parameter shape.
    ShapeMismatch(usize),
}

impl std::fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadCheckpointError::BadHeader => write!(f, "missing or malformed checkpoint header"),
            LoadCheckpointError::CountMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint has {found} parameters, model expects {expected}"
                )
            }
            LoadCheckpointError::BadEntry(i) => write!(f, "malformed checkpoint entry {i}"),
            LoadCheckpointError::ShapeMismatch(i) => {
                write!(
                    f,
                    "checkpoint entry {i} has a different shape than the model"
                )
            }
        }
    }
}

impl std::error::Error for LoadCheckpointError {}

/// Restores parameter values from checkpoint text (order- and
/// shape-matched).
///
/// # Errors
///
/// Returns [`LoadCheckpointError`] on any format, count or shape mismatch.
pub fn from_str(text: &str, params: &[Parameter]) -> Result<(), LoadCheckpointError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(LoadCheckpointError::BadHeader)?;
    let mut hp = header.split_whitespace();
    if hp.next() != Some("quadranet-checkpoint") || hp.next() != Some("v1") {
        return Err(LoadCheckpointError::BadHeader);
    }
    let count: usize = hp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or(LoadCheckpointError::BadHeader)?;
    if count != params.len() {
        return Err(LoadCheckpointError::CountMismatch {
            expected: params.len(),
            found: count,
        });
    }
    for (i, (line, p)) in lines.zip(params.iter()).enumerate() {
        let (head, values) = line
            .split_once(" :")
            .ok_or(LoadCheckpointError::BadEntry(i))?;
        let mut parts = head.split_whitespace();
        let _name = parts.next().ok_or(LoadCheckpointError::BadEntry(i))?;
        let dims: Vec<usize> = parts
            .map(|d| d.parse().map_err(|_| LoadCheckpointError::BadEntry(i)))
            .collect::<Result<_, _>>()?;
        if dims != p.value().shape().dims() {
            return Err(LoadCheckpointError::ShapeMismatch(i));
        }
        let data: Vec<f32> = values
            .split_whitespace()
            .map(|v| v.parse().map_err(|_| LoadCheckpointError::BadEntry(i)))
            .collect::<Result<_, _>>()?;
        let t = Tensor::from_vec(data, &dims).map_err(|_| LoadCheckpointError::BadEntry(i))?;
        p.set_value(t);
    }
    Ok(())
}

/// Loads a checkpoint file into the given parameters.
///
/// # Errors
///
/// Returns I/O errors from reading, or format errors wrapped as
/// `io::ErrorKind::InvalidData`.
pub fn load(path: &Path, params: &[Parameter]) -> io::Result<()> {
    let text = std::fs::read_to_string(path)?;
    from_str(&text, params).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_tensor::Rng;

    fn params(seed: u64) -> Vec<Parameter> {
        let mut rng = Rng::seed_from(seed);
        vec![
            Parameter::named("a", Tensor::randn(&[2, 3], &mut rng)),
            Parameter::named("b", Tensor::randn(&[4], &mut rng)),
        ]
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = params(1);
        let text = to_string(&src);
        let dst = params(2);
        assert!(!dst[0].value().allclose(&src[0].value(), 1e-6));
        from_str(&text, &dst).expect("load");
        assert!(dst[0].value().allclose(&src[0].value(), 1e-6));
        assert!(dst[1].value().allclose(&src[1].value(), 1e-6));
    }

    #[test]
    fn count_mismatch_rejected() {
        let src = params(1);
        let text = to_string(&src);
        let dst = vec![params(2).remove(0)];
        assert!(matches!(
            from_str(&text, &dst),
            Err(LoadCheckpointError::CountMismatch {
                expected: 1,
                found: 2
            })
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let src = params(1);
        let text = to_string(&src);
        let dst = vec![
            Parameter::named("a", Tensor::zeros(&[3, 2])), // transposed shape
            Parameter::named("b", Tensor::zeros(&[4])),
        ];
        assert!(matches!(
            from_str(&text, &dst),
            Err(LoadCheckpointError::ShapeMismatch(0))
        ));
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(
            from_str("garbage", &params(1)),
            Err(LoadCheckpointError::BadHeader)
        );
    }

    #[test]
    fn file_roundtrip() {
        let src = params(3);
        let path = std::env::temp_dir().join("qn_ckpt_test.txt");
        save(&src, &path).expect("save");
        let dst = params(4);
        load(&path, &dst).expect("load");
        assert!(dst[0].value().allclose(&src[0].value(), 1e-6));
        let _ = std::fs::remove_file(&path);
    }
}
