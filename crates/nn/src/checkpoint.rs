//! Versioned binary checkpoints for module parameter trees.
//!
//! Serialization is driven by [`ParamVisitor`]: every parameter (and every
//! piece of non-trainable state such as batch-norm running statistics) is
//! stored under its **stable dotted path** — the scopes pushed by
//! [`Module::visit_params`] joined with `.`, e.g.
//! `block0.conv1.weight`. Loading matches strictly by name and shape, in
//! either of two modes:
//!
//! - [`LoadMode::Copy`] materializes every tensor into freshly owned
//!   buffers.
//! - [`LoadMode::Mapped`] borrows each tensor's bytes directly from the
//!   checkpoint mapping (zero parameter-byte copies); a later in-place
//!   mutation of a mapped tensor transparently copies on write.
//!
//! The container format (magic, version, checksum, 64-byte-aligned blobs)
//! lives in [`qn_tensor::checkpoint`]; this module binds it to the module
//! tree. Saves are atomic (write-to-temp, then rename), so an interrupted
//! save never leaves a torn file behind.
//!
//! # Example
//!
//! ```
//! use qn_nn::{checkpoint, Linear, LoadMode, Module};
//! use qn_tensor::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let layer = Linear::new(4, 2, true, &mut rng);
//! let path = std::env::temp_dir().join("qn_nn_doc_ckpt.qnckpt");
//! checkpoint::save_module(&layer, &[("kind", "linear")], &path).unwrap();
//!
//! let mut rng2 = Rng::seed_from(1);
//! let reloaded = Linear::new(4, 2, true, &mut rng2);
//! checkpoint::load_module(&reloaded, &path, LoadMode::Mapped).unwrap();
//! assert!(reloaded.params()[0].value().bit_identical(&layer.params()[0].value()));
//! # let _ = std::fs::remove_file(&path);
//! ```

use crate::{Module, ParamVisitor};
use qn_autograd::Parameter;
use qn_tensor::{Checkpoint, CheckpointWriter, Tensor, TensorError};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::RwLock;

/// How [`load_visited`] materializes tensors out of a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Copy every tensor into freshly owned storage.
    Copy,
    /// Borrow tensor bytes from the checkpoint mapping (zero-copy); writes
    /// to a loaded tensor copy-on-write.
    Mapped,
}

/// Joins visitor scopes into dotted paths.
struct PathStack {
    stack: Vec<String>,
}

impl PathStack {
    fn new() -> Self {
        PathStack { stack: Vec::new() }
    }

    fn join(&self, name: &str) -> String {
        if self.stack.is_empty() {
            name.to_string()
        } else {
            let mut s = self.stack.join(".");
            s.push('.');
            s.push_str(name);
            s
        }
    }
}

/// Collects every visited parameter and state tensor into a
/// [`CheckpointWriter`] under its dotted path (optionally below `prefix`).
struct SaveVisitor<'w> {
    writer: &'w mut CheckpointWriter,
    path: PathStack,
    prefix: String,
}

impl SaveVisitor<'_> {
    fn full(&self, name: &str) -> String {
        let p = self.path.join(name);
        if self.prefix.is_empty() {
            p
        } else {
            format!("{}.{p}", self.prefix)
        }
    }
}

impl ParamVisitor for SaveVisitor<'_> {
    fn enter(&mut self, scope: &str) {
        self.path.stack.push(scope.to_string());
    }

    fn leave(&mut self) {
        self.path.stack.pop();
    }

    fn param(&mut self, name: &str, p: &Parameter) {
        self.writer.add(self.full(name), p.value());
    }

    fn state(&mut self, name: &str, t: &RwLock<Tensor>) {
        let snapshot = t.read().expect("state lock poisoned").clone();
        self.writer.add(self.full(name), snapshot);
    }
}

/// Applies checkpoint tensors to visited parameters/state by dotted path.
struct LoadVisitor<'c> {
    ckpt: &'c Checkpoint,
    mode: LoadMode,
    prefix: String,
    path: PathStack,
    consumed: BTreeSet<String>,
    error: Option<TensorError>,
}

impl LoadVisitor<'_> {
    fn full(&self, name: &str) -> String {
        let p = self.path.join(name);
        if self.prefix.is_empty() {
            p
        } else {
            format!("{}.{p}", self.prefix)
        }
    }

    fn fetch(&mut self, full: &str) -> Option<Tensor> {
        if self.error.is_some() {
            return None;
        }
        if !self.consumed.insert(full.to_string()) {
            self.error = Some(TensorError::InvalidCheckpoint {
                offset: 0,
                detail: format!("tensor \"{full}\" visited twice by the module tree"),
            });
            return None;
        }
        if self.ckpt.entry(full).is_none() {
            self.error = Some(TensorError::InvalidCheckpoint {
                offset: 0,
                detail: format!("checkpoint is missing tensor \"{full}\""),
            });
            return None;
        }
        let loaded = match self.mode {
            LoadMode::Copy => self.ckpt.tensor(full),
            LoadMode::Mapped => self.ckpt.tensor_mapped(full),
        };
        match loaded {
            Ok(t) => Some(t),
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

impl ParamVisitor for LoadVisitor<'_> {
    fn enter(&mut self, scope: &str) {
        self.path.stack.push(scope.to_string());
    }

    fn leave(&mut self) {
        self.path.stack.pop();
    }

    fn param(&mut self, name: &str, p: &Parameter) {
        let full = self.full(name);
        if let Some(t) = self.fetch(&full) {
            if let Err(e) = p.try_set_value(t) {
                self.error = Some(TensorError::InvalidCheckpoint {
                    offset: 0,
                    detail: format!("tensor \"{full}\": {e}"),
                });
            }
        }
    }

    fn state(&mut self, name: &str, slot: &RwLock<Tensor>) {
        let full = self.full(name);
        if let Some(t) = self.fetch(&full) {
            let mut guard = slot.write().expect("state lock poisoned");
            if guard.shape() != t.shape() {
                self.error = Some(TensorError::InvalidCheckpoint {
                    offset: 0,
                    detail: format!(
                        "tensor \"{full}\": state shape {:?} does not match checkpoint {:?}",
                        guard.shape().dims(),
                        t.shape().dims()
                    ),
                });
                return;
            }
            *guard = t;
        }
    }
}

/// Appends every tensor reachable from `visit` to `writer`, each under
/// `prefix.<dotted path>` (or the bare dotted path when `prefix` is empty).
///
/// Use this to combine several trees — model parameters plus optimizer
/// state, say — into one checkpoint before sealing it.
pub fn append_visited(
    writer: &mut CheckpointWriter,
    prefix: &str,
    visit: impl FnOnce(&mut dyn ParamVisitor),
) {
    let mut v = SaveVisitor {
        writer,
        path: PathStack::new(),
        prefix: prefix.to_string(),
    };
    visit(&mut v);
}

/// Saves every tensor reachable from `visit` to a checkpoint file at
/// `path`, with the given metadata key/value pairs.
///
/// The write is atomic: bytes go to a `.tmp` sibling which is renamed over
/// `path` only once fully written and checksummed.
///
/// # Errors
///
/// Returns [`TensorError::InvalidCheckpoint`] if two visited tensors share
/// a dotted path or the file cannot be written.
pub fn save_visited(
    visit: impl FnOnce(&mut dyn ParamVisitor),
    meta: &[(&str, &str)],
    path: &Path,
) -> Result<(), TensorError> {
    let mut writer = CheckpointWriter::new();
    for (k, v) in meta {
        writer.add_meta(*k, *v);
    }
    append_visited(&mut writer, "", visit);
    writer.write_to(path)
}

/// Restores every tensor reachable from `visit` out of an already-open
/// checkpoint, matching by dotted path under `prefix`.
///
/// Unlike [`load_visited`], leftover checkpoint entries are **not** an
/// error here — the checkpoint may hold other trees (optimizer state,
/// another model) beside the one being restored.
///
/// # Errors
///
/// Returns [`TensorError::InvalidCheckpoint`] when a visited tensor is
/// missing from the checkpoint, named twice by the tree, or stored with a
/// different shape.
pub fn apply_checkpoint(
    ckpt: &Checkpoint,
    prefix: &str,
    mode: LoadMode,
    visit: impl FnOnce(&mut dyn ParamVisitor),
) -> Result<(), TensorError> {
    let mut v = LoadVisitor {
        ckpt,
        mode,
        prefix: prefix.to_string(),
        path: PathStack::new(),
        consumed: BTreeSet::new(),
        error: None,
    };
    visit(&mut v);
    match v.error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Loads a checkpoint file and restores every tensor reachable from
/// `visit`, matching strictly by dotted path.
///
/// Strict means bijective: a tensor missing from the checkpoint, a
/// checkpoint entry not visited by the tree, a duplicate path, or a shape
/// mismatch all fail the load (and the parameters already written before
/// the failure keep their new values — reload or rebuild on error).
///
/// # Errors
///
/// Returns [`TensorError::InvalidCheckpoint`] /
/// [`TensorError::VersionMismatch`] for an unreadable or mismatched file.
pub fn load_visited(
    visit: impl FnOnce(&mut dyn ParamVisitor),
    path: &Path,
    mode: LoadMode,
) -> Result<(), TensorError> {
    let ckpt = Checkpoint::open(path)?;
    load_from(&ckpt, visit, mode)
}

/// [`load_visited`] against an already-open [`Checkpoint`].
///
/// # Errors
///
/// Same contract as [`load_visited`].
pub fn load_from(
    ckpt: &Checkpoint,
    visit: impl FnOnce(&mut dyn ParamVisitor),
    mode: LoadMode,
) -> Result<(), TensorError> {
    let mut v = LoadVisitor {
        ckpt,
        mode,
        prefix: String::new(),
        path: PathStack::new(),
        consumed: BTreeSet::new(),
        error: None,
    };
    visit(&mut v);
    if let Some(e) = v.error {
        return Err(e);
    }
    for entry in ckpt.entries() {
        if !v.consumed.contains(&entry.name) {
            return Err(TensorError::InvalidCheckpoint {
                offset: 0,
                detail: format!(
                    "checkpoint tensor \"{}\" has no destination in the module tree",
                    entry.name
                ),
            });
        }
    }
    Ok(())
}

/// Saves a [`Module`]'s full parameter tree (including non-trainable state
/// such as batch-norm running statistics) to `path`.
///
/// # Errors
///
/// Same contract as [`save_visited`].
pub fn save_module(
    module: &dyn Module,
    meta: &[(&str, &str)],
    path: &Path,
) -> Result<(), TensorError> {
    save_visited(|v| module.visit_params(v), meta, path)
}

/// Restores a [`Module`]'s full parameter tree from a checkpoint file.
///
/// # Errors
///
/// Same contract as [`load_visited`].
pub fn load_module(module: &dyn Module, path: &Path, mode: LoadMode) -> Result<(), TensorError> {
    load_visited(|v| module.visit_params(v), path, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchNorm2d, Linear, Sequential};
    use qn_tensor::{Rng, Tensor};

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    fn stack(seed: u64) -> Sequential {
        let mut rng = Rng::seed_from(seed);
        Sequential::new(vec![
            Box::new(Linear::new(4, 8, true, &mut rng)),
            Box::new(Linear::new(8, 2, false, &mut rng)),
        ])
    }

    #[test]
    fn module_roundtrip_both_modes() {
        let src = stack(1);
        let path = temp("qn_nn_ckpt_roundtrip.qnckpt");
        save_module(&src, &[("arch", "mlp")], &path).expect("save");
        for mode in [LoadMode::Copy, LoadMode::Mapped] {
            let dst = stack(2);
            assert!(!dst.params()[0]
                .value()
                .bit_identical(&src.params()[0].value()));
            load_module(&dst, &path, mode).expect("load");
            for (a, b) in src.params().iter().zip(dst.params()) {
                assert!(a.value().bit_identical(&b.value()), "{mode:?}");
            }
            if mode == LoadMode::Mapped {
                assert!(dst.params()[0].value().is_mapped());
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batchnorm_state_roundtrips() {
        struct SetStats;
        impl ParamVisitor for SetStats {
            fn param(&mut self, _name: &str, _p: &Parameter) {}
            fn state(&mut self, name: &str, slot: &RwLock<Tensor>) {
                let fill = if name == "running_mean" { 0.25 } else { 4.0 };
                let mut guard = slot.write().unwrap();
                let dims = guard.shape().dims().to_vec();
                *guard = Tensor::full(&dims, fill);
            }
        }
        let src = BatchNorm2d::new(3);
        src.visit_params(&mut SetStats);
        let path = temp("qn_nn_ckpt_bn.qnckpt");
        save_module(&src, &[], &path).expect("save");
        let dst = BatchNorm2d::new(3);
        load_module(&dst, &path, LoadMode::Copy).expect("load");
        assert!(dst.running_mean().allclose(&Tensor::full(&[3], 0.25), 0.0));
        assert!(dst.running_var().allclose(&Tensor::full(&[3], 4.0), 0.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_tensor_is_an_error() {
        let small = stack(1);
        let path = temp("qn_nn_ckpt_missing.qnckpt");
        save_module(&small, &[], &path).expect("save");
        let mut rng = Rng::seed_from(3);
        let bigger = Sequential::new(vec![
            Box::new(Linear::new(4, 8, true, &mut rng)),
            Box::new(Linear::new(8, 2, false, &mut rng)),
            Box::new(Linear::new(2, 2, false, &mut rng)),
        ]);
        let err = load_module(&bigger, &path, LoadMode::Copy).unwrap_err();
        assert!(
            matches!(err, TensorError::InvalidCheckpoint { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("missing tensor"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn leftover_tensor_is_an_error() {
        let big = stack(1);
        let path = temp("qn_nn_ckpt_leftover.qnckpt");
        save_module(&big, &[], &path).expect("save");
        let mut rng = Rng::seed_from(3);
        let smaller = Sequential::new(vec![Box::new(Linear::new(4, 8, true, &mut rng)) as _]);
        let err = load_module(&smaller, &path, LoadMode::Copy).unwrap_err();
        assert!(err.to_string().contains("no destination"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let src = stack(1);
        let path = temp("qn_nn_ckpt_shape.qnckpt");
        save_module(&src, &[], &path).expect("save");
        let mut rng = Rng::seed_from(3);
        let transposed = Sequential::new(vec![
            Box::new(Linear::new(8, 4, true, &mut rng)),
            Box::new(Linear::new(4, 2, false, &mut rng)),
        ]);
        let err = load_module(&transposed, &path, LoadMode::Copy).unwrap_err();
        assert!(
            matches!(err, TensorError::InvalidCheckpoint { .. }),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prefixed_trees_coexist_in_one_file() {
        let model = stack(1);
        let extra = stack(5);
        let path = temp("qn_nn_ckpt_prefix.qnckpt");
        let mut w = CheckpointWriter::new();
        append_visited(&mut w, "model", |v| model.visit_params(v));
        append_visited(&mut w, "shadow", |v| extra.visit_params(v));
        w.write_to(&path).expect("save");

        let ckpt = Checkpoint::open(&path).expect("open");
        let dst = stack(2);
        apply_checkpoint(&ckpt, "model", LoadMode::Mapped, |v| dst.visit_params(v)).expect("apply");
        for (a, b) in model.params().iter().zip(dst.params()) {
            assert!(a.value().bit_identical(&b.value()));
        }
        let _ = std::fs::remove_file(&path);
    }
}
