//! # qn-nn
//!
//! Neural-network building blocks on top of [`qn_autograd`]: layers, weight
//! initialization, optimizers and learning-rate schedules.
//!
//! The central abstraction is the [`Module`] trait: a layer that can run a
//! forward pass in any [`Exec`](qn_autograd::Exec) execution context —
//! taped on a [`Graph`](qn_autograd::Graph) for training, or tape-free on
//! an [`EagerExec`](qn_autograd::EagerExec) for inference — expose its
//! [`Parameter`](qn_autograd::Parameter)s, and report its cost
//! ([`Costs`]: multiply–accumulate operations and output shape) for the
//! paper's parameter/FLOP accounting.
//!
//! Optimizers support **parameter groups with independent learning rates**,
//! which the paper relies on: the quadratic eigenvalue parameters `Λᵏ` are
//! trained with a much smaller learning rate (1e-4 … 1e-6) than the rest of
//! the network.
//!
//! # Example
//!
//! ```
//! use qn_autograd::Graph;
//! use qn_nn::{Linear, Module, Sgd, SgdConfig};
//! use qn_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! let layer = Linear::new(4, 2, true, &mut rng);
//! let mut opt = Sgd::new(SgdConfig { lr: 0.1, ..SgdConfig::default() });
//! opt.add_group(layer.params(), None, None);
//!
//! let mut g = Graph::training(0);
//! let x = g.leaf(Tensor::randn(&[8, 4], &mut rng));
//! let y = layer.forward(&mut g, x);
//! let loss = g.softmax_cross_entropy(y, &[0, 1, 0, 1, 0, 1, 0, 1], 0.0);
//! g.backward(loss);
//! opt.step(1.0);
//! opt.zero_grad();
//! ```

pub mod checkpoint;
mod embedding;
mod init;
mod layers;
mod module;
mod norm;
mod optim;
pub mod quant;
mod schedule;

pub use checkpoint::{load_module, save_module, LoadMode};
pub use embedding::Embedding;
pub use init::{kaiming_normal, kaiming_uniform, xavier_uniform};
pub use layers::{
    AvgPool2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu, Sequential, Tanh,
};
pub use module::{visit_scoped, Costs, Module, ParamVisitor};
pub use norm::{BatchNorm2d, LayerNorm};
pub use optim::{clip_grad_norm, Adam, AdamConfig, Sgd, SgdConfig};
pub use quant::{
    calibrate, quantize_acts, quantize_calibrated, quantize_module, read_qtensor, write_qtensor,
    QuantizedConv2d, QuantizedLinear, ACT_STATS_NAME,
};
pub use schedule::{NoamSchedule, StepDecay};
