//! Standard layers: linear, convolution, activations, pooling, dropout and
//! sequential composition.

use crate::{kaiming_normal, Costs, Module, ParamVisitor};
use qn_autograd::{Exec, Parameter, Var};
use qn_tensor::{Conv2dSpec, PoolSpec, Rng, Tensor};

/// Fully-connected layer `y = xWᵀ + b` with weight stored `[out, in]`.
///
/// # Example
///
/// ```
/// use qn_nn::{Linear, Module};
/// use qn_tensor::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let l = Linear::new(8, 4, true, &mut rng);
/// assert_eq!(l.param_count(), 8 * 4 + 4);
/// ```
#[derive(Debug)]
pub struct Linear {
    weight: Parameter,
    bias: Option<Parameter>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a layer with Kaiming-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut Rng) -> Self {
        let weight = Parameter::named(
            "linear.weight",
            kaiming_normal(&[out_features, in_features], in_features, rng),
        );
        let bias = bias.then(|| Parameter::named("linear.bias", Tensor::zeros(&[out_features])));
        Linear {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Builds a layer from an explicit `[out, in]` weight and optional
    /// `[out]` bias.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not 2-D or the bias length mismatches.
    pub fn from_parts(weight: Tensor, bias: Option<Tensor>) -> Self {
        let (out_features, in_features) = weight.dims2();
        if let Some(b) = &bias {
            assert_eq!(b.numel(), out_features, "bias length must be [out]");
        }
        Linear {
            weight: Parameter::named("linear.weight", weight),
            bias: bias.map(|b| Parameter::named("linear.bias", b)),
            in_features,
            out_features,
        }
    }

    /// The weight parameter (shape `[out, in]`).
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// A copy of the bias vector, if the layer has one.
    pub fn bias_value(&self) -> Option<Tensor> {
        self.bias.as_ref().map(|b| b.value())
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Module for Linear {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        // accept [B, in] or [B, T, in]: flatten leading dims. Dims are
        // copied to a stack array so the hot serving path allocates nothing.
        let mut dims = [0usize; 8];
        let nd = {
            let d = g.value(x).shape().dims();
            assert!(!d.is_empty(), "Linear expects an input of rank >= 1");
            assert!(d.len() <= dims.len(), "Linear supports rank <= 8");
            dims[..d.len()].copy_from_slice(d);
            d.len()
        };
        let lead: usize = dims[..nd - 1].iter().product();
        assert_eq!(
            dims[nd - 1],
            self.in_features,
            "Linear expected trailing dim {}, got {:?}",
            self.in_features,
            &dims[..nd]
        );
        let flat = g.reshape(x, &[lead, self.in_features]);
        let w = g.param(&self.weight);
        let mut y = g.matmul_transb(flat, w);
        if let Some(b) = &self.bias {
            let bv = g.param(b);
            y = g.add_bcast(y, bv);
        }
        dims[nd - 1] = self.out_features;
        g.reshape(y, &dims[..nd])
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("weight", &self.weight);
        if let Some(b) = &self.bias {
            v.param("bias", b);
        }
    }

    fn costs(&self, input: &[usize]) -> Costs {
        let lead: usize = input[..input.len() - 1].iter().product();
        let mut output = input.to_vec();
        *output.last_mut().expect("non-empty") = self.out_features;
        Costs {
            macs: (lead * self.in_features * self.out_features) as u64,
            output,
        }
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(self.to_quantized()))
    }
}

/// 2-D convolution layer over `[B, C, H, W]`.
#[derive(Debug)]
pub struct Conv2d {
    weight: Parameter,
    bias: Option<Parameter>,
    in_channels: usize,
    out_channels: usize,
    spec: Conv2dSpec,
}

impl Conv2d {
    /// Creates a conv layer with Kaiming-normal filters.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        spec: Conv2dSpec,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = spec.patch_len(in_channels);
        let weight = Parameter::named(
            "conv.weight",
            kaiming_normal(
                &[out_channels, in_channels, spec.kernel, spec.kernel],
                fan_in,
                rng,
            ),
        );
        let bias = bias.then(|| Parameter::named("conv.bias", Tensor::zeros(&[out_channels])));
        Conv2d {
            weight,
            bias,
            in_channels,
            out_channels,
            spec,
        }
    }

    /// The filter parameter (`[OC, C, K, K]`).
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// A copy of the bias vector, if the layer has one.
    pub fn bias_value(&self) -> Option<Tensor> {
        self.bias.as_ref().map(|b| b.value())
    }

    /// Convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Module for Conv2d {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let w = g.param(&self.weight);
        let mut y = g.conv2d(x, w, self.spec);
        if let Some(b) = &self.bias {
            let bv = g.param(b);
            y = g.add_channel(y, bv);
        }
        y
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("weight", &self.weight);
        if let Some(b) = &self.bias {
            v.param("bias", b);
        }
    }

    fn costs(&self, input: &[usize]) -> Costs {
        assert_eq!(input.len(), 4, "Conv2d expects a 4-D input shape");
        let (b, c, h, w) = (input[0], input[1], input[2], input[3]);
        assert_eq!(c, self.in_channels, "Conv2d channel mismatch");
        let (oh, ow) = self.spec.output_hw(h, w);
        let patch = self.spec.patch_len(c) as u64;
        Costs {
            macs: (b * oh * ow) as u64 * patch * self.out_channels as u64,
            output: vec![b, self.out_channels, oh, ow],
        }
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        let bias = self.bias_value();
        Some(Box::new(crate::quant::QuantizedConv2d::new(
            &self.weight.value(),
            bias.as_ref(),
            self.spec,
        )))
    }
}

/// ReLU activation as a module.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Module for Relu {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        g.relu(x)
    }

    fn visit_params(&self, _v: &mut dyn ParamVisitor) {}

    fn costs(&self, input: &[usize]) -> Costs {
        Costs::passthrough(input)
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(*self))
    }
}

/// Tanh activation as a module.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tanh;

impl Module for Tanh {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        g.tanh(x)
    }

    fn visit_params(&self, _v: &mut dyn ParamVisitor) {}

    fn costs(&self, input: &[usize]) -> Costs {
        Costs::passthrough(input)
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(*self))
    }
}

/// Max pooling module.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    spec: PoolSpec,
}

impl MaxPool2d {
    /// Creates a square max pool.
    pub fn new(window: usize, stride: usize) -> Self {
        MaxPool2d {
            spec: PoolSpec::new(window, stride),
        }
    }
}

impl Module for MaxPool2d {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        g.max_pool2d(x, self.spec)
    }

    fn visit_params(&self, _v: &mut dyn ParamVisitor) {}

    fn costs(&self, input: &[usize]) -> Costs {
        let (oh, ow) = self.spec.output_hw(input[2], input[3]);
        Costs {
            macs: 0,
            output: vec![input[0], input[1], oh, ow],
        }
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(*self))
    }
}

/// Average pooling module.
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2d {
    spec: PoolSpec,
}

impl AvgPool2d {
    /// Creates a square average pool.
    pub fn new(window: usize, stride: usize) -> Self {
        AvgPool2d {
            spec: PoolSpec::new(window, stride),
        }
    }
}

impl Module for AvgPool2d {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        g.avg_pool2d(x, self.spec)
    }

    fn visit_params(&self, _v: &mut dyn ParamVisitor) {}

    fn costs(&self, input: &[usize]) -> Costs {
        let (oh, ow) = self.spec.output_hw(input[2], input[3]);
        Costs {
            macs: 0,
            output: vec![input[0], input[1], oh, ow],
        }
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(*self))
    }
}

/// Global average pooling `[B, C, H, W] -> [B, C]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool;

impl Module for GlobalAvgPool {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        g.global_avg_pool(x)
    }

    fn visit_params(&self, _v: &mut dyn ParamVisitor) {}

    fn costs(&self, input: &[usize]) -> Costs {
        Costs {
            macs: 0,
            output: vec![input[0], input[1]],
        }
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(*self))
    }
}

/// Flattens all trailing dims: `[B, …] -> [B, prod(…)]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten;

impl Module for Flatten {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let dims = g.value(x).shape().dims().to_vec();
        let b = dims[0];
        let rest: usize = dims[1..].iter().product();
        g.reshape(x, &[b, rest])
    }

    fn visit_params(&self, _v: &mut dyn ParamVisitor) {}

    fn costs(&self, input: &[usize]) -> Costs {
        Costs {
            macs: 0,
            output: vec![input[0], input[1..].iter().product()],
        }
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(*self))
    }
}

/// Dropout module (inverted scaling; identity in inference mode).
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout { p }
    }
}

impl Module for Dropout {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        g.dropout(x, self.p)
    }

    fn visit_params(&self, _v: &mut dyn ParamVisitor) {}

    fn costs(&self, input: &[usize]) -> Costs {
        Costs::passthrough(input)
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(*self))
    }
}

/// Ordered stack of modules applied left to right.
///
/// # Example
///
/// ```
/// use qn_nn::{Flatten, Linear, Module, Relu, Sequential};
/// use qn_tensor::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let net = Sequential::new(vec![
///     Box::new(Linear::new(4, 8, true, &mut rng)),
///     Box::new(Relu),
///     Box::new(Linear::new(8, 2, true, &mut rng)),
/// ]);
/// assert_eq!(net.costs(&[1, 4]).output, vec![1, 2]);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Builds a stack from boxed modules.
    pub fn new(layers: Vec<Box<dyn Module>>) -> Self {
        Sequential { layers }
    }

    /// Appends a module.
    pub fn push(&mut self, m: Box<dyn Module>) {
        self.layers.push(m);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if there are no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The contained layers.
    pub fn layers(&self) -> &[Box<dyn Module>] {
        &self.layers
    }
}

impl Module for Sequential {
    fn forward(&self, g: &mut dyn Exec, x: Var) -> Var {
        let mut v = x;
        for layer in &self.layers {
            v = layer.forward(g, v);
        }
        v
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        for (i, layer) in self.layers.iter().enumerate() {
            v.enter(&i.to_string());
            layer.visit_params(v);
            v.leave();
        }
    }

    fn costs(&self, input: &[usize]) -> Costs {
        let mut macs = 0u64;
        let mut shape = input.to_vec();
        for layer in &self.layers {
            let c = layer.costs(&shape);
            macs += c.macs;
            shape = c.output;
        }
        Costs {
            macs,
            output: shape,
        }
    }

    fn weight_dtype(&self) -> &'static str {
        if self.layers.iter().any(|l| l.weight_dtype() == "int8") {
            "int8"
        } else {
            "f32"
        }
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        let layers = self
            .layers
            .iter()
            .map(|l| l.quantized())
            .collect::<Option<Vec<_>>>()?;
        Some(Box::new(Sequential::new(layers)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::{gradcheck, Graph};

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = Rng::seed_from(1);
        let l = Linear::new(3, 5, true, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[2, 3], &mut rng));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).shape().dims(), &[2, 5]);
        assert_eq!(l.param_count(), 20);
    }

    #[test]
    fn linear_handles_3d_input() {
        let mut rng = Rng::seed_from(2);
        let l = Linear::new(4, 6, true, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[2, 3, 4], &mut rng));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).shape().dims(), &[2, 3, 6]);
    }

    #[test]
    fn linear_matches_manual_matmul() {
        let mut rng = Rng::seed_from(3);
        let l = Linear::new(3, 2, false, &mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let manual = x.matmul_transb(&l.weight().value());
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let y = l.forward(&mut g, xv);
        assert!(g.value(y).allclose(&manual, 1e-5));
    }

    #[test]
    fn linear_gradcheck_through_input() {
        let mut rng = Rng::seed_from(4);
        let l = Linear::new(3, 2, true, &mut rng);
        let x = Tensor::randn(&[2, 3], &mut rng);
        assert!(gradcheck(
            move |g, v| {
                let y = l.forward(g, v);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn conv_forward_and_costs() {
        let mut rng = Rng::seed_from(5);
        let conv = Conv2d::new(3, 8, Conv2dSpec::new(3, 1, 1), false, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[2, 3, 6, 6], &mut rng));
        let y = conv.forward(&mut g, x);
        assert_eq!(g.value(y).shape().dims(), &[2, 8, 6, 6]);
        let c = conv.costs(&[2, 3, 6, 6]);
        assert_eq!(c.output, vec![2, 8, 6, 6]);
        assert_eq!(c.macs, 2 * 6 * 6 * 27 * 8);
        assert_eq!(conv.param_count(), 8 * 3 * 9);
    }

    #[test]
    fn sequential_stacks_and_counts() {
        let mut rng = Rng::seed_from(6);
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 4, Conv2dSpec::new(3, 1, 1), false, &mut rng)),
            Box::new(Relu),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Flatten),
            Box::new(Linear::new(4 * 4 * 4, 10, true, &mut rng)),
        ]);
        let c = net.costs(&[1, 1, 8, 8]);
        assert_eq!(c.output, vec![1, 10]);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[1, 1, 8, 8], &mut rng));
        let y = net.forward(&mut g, x);
        assert_eq!(g.value(y).shape().dims(), &[1, 10]);
        assert_eq!(net.params().len(), 3); // conv.w, linear.w, linear.b
    }

    #[test]
    fn pooling_modules_shapes() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[1, 2, 8, 8]));
        let y = MaxPool2d::new(2, 2).forward(&mut g, x);
        assert_eq!(g.value(y).shape().dims(), &[1, 2, 4, 4]);
        let z = AvgPool2d::new(2, 2).forward(&mut g, y);
        assert_eq!(g.value(z).shape().dims(), &[1, 2, 2, 2]);
        let w = GlobalAvgPool.forward(&mut g, z);
        assert_eq!(g.value(w).shape().dims(), &[1, 2]);
    }

    #[test]
    fn dropout_module_identity_in_eval() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[2, 2]));
        let y = Dropout::new(0.5).forward(&mut g, x);
        assert!(g.value(y).allclose(&Tensor::ones(&[2, 2]), 0.0));
    }
}
