//! Inference-only int8 layers: the runtime half of the quantized tier.
//!
//! [`QuantizedLinear`] and [`QuantizedConv2d`] are the int8 twins that
//! [`Module::quantized`] produces for `Linear` and `Conv2d`. Weights are
//! snapshotted into per-output-channel symmetric int8
//! ([`qn_tensor::QTensor`]); activations are quantized per **row** on the
//! fly and the product runs through [`qn_tensor::gemm_i8`], whose integer
//! accumulation is bit-identical at every SIMD dispatch level and thread
//! count.
//!
//! # Activation scales: dynamic vs. frozen
//!
//! Every quantized layer carries a 2-element `act_stats` state tensor
//! `[observed_absmax, frozen_scale]`:
//!
//! - **Dynamic** (`frozen_scale == 0`, the initial state): each forward
//!   pass quantizes every activation row with that row's own absmax —
//!   always well-scaled, at the cost of one extra pass over the input.
//!   While dynamic, the layer also folds the batch absmax into
//!   `observed_absmax`, so ordinary forwards double as calibration.
//! - **Frozen** (`frozen_scale > 0`, after [`calibrate`]): all rows share
//!   the calibrated scale and values beyond the observed range saturate at
//!   ±127. This is the deployment configuration — it removes the data
//!   dependence, so a served model's arithmetic depends only on its
//!   checkpoint, not on traffic history.
//!
//! `act_stats` is reported through [`ParamVisitor::state`], so it rides
//! along in checkpoints like batch-norm running statistics.
//!
//! # No gradients
//!
//! Quantized forwards read the input value, compute in int8 off-tape, and
//! re-enter the graph as a **leaf**: gradients do not flow through a
//! quantized layer. These modules are for inference; keep the f32 original
//! for training.

use crate::layers::Linear;
use crate::module::{Costs, Module, ParamVisitor};
use qn_autograd::{EagerExec, Exec, Var};
use qn_tensor::{
    gemm_i8, Checkpoint, CheckpointWriter, Conv2dSpec, MatMut, MatRefI8, QTensor, Tensor,
    TensorError, GEMM_I8_MAX_K,
};
use std::sync::RwLock;

/// Local name every quantized layer reports its activation statistics
/// under (a 2-element tensor `[observed_absmax, frozen_scale]`).
pub const ACT_STATS_NAME: &str = "act_stats";

/// Fresh activation statistics: nothing observed, dynamic scaling.
fn new_act_stats() -> RwLock<Tensor> {
    RwLock::new(Tensor::zeros(&[2]))
}

/// Quantizes a `[rows, cols]` activation block against `stats`.
///
/// With a frozen scale, every row uses it (out-of-range values saturate).
/// Otherwise each row is quantized with its own absmax and the batch
/// absmax is folded into `stats[0]` — see the module docs. Returns the
/// int8 codes and the per-row scales ([`gemm_i8`]'s `sa` operand); a
/// zero (or non-finite-free all-zero) row gets scale `0.0` and all-zero
/// codes, which [`gemm_i8`] turns into exact zero outputs.
///
/// # Panics
///
/// Panics if `x.len() != rows * cols` or the stats lock is poisoned.
pub fn quantize_acts(
    stats: &RwLock<Tensor>,
    x: &[f32],
    rows: usize,
    cols: usize,
) -> (Vec<i8>, Vec<f32>) {
    let mut codes = Vec::new();
    let mut scales = Vec::new();
    quantize_acts_into(stats, x, rows, cols, &mut codes, &mut scales);
    (codes, scales)
}

/// [`quantize_acts`] writing into caller-provided buffers (cleared and
/// resized) — the allocation-free form the inference hot path uses with
/// per-thread scratch.
fn quantize_acts_into(
    stats: &RwLock<Tensor>,
    x: &[f32],
    rows: usize,
    cols: usize,
    codes: &mut Vec<i8>,
    scales: &mut Vec<f32>,
) {
    assert_eq!(x.len(), rows * cols, "quantize_acts: length mismatch");
    let frozen = stats.read().expect("act_stats lock poisoned").data()[1];
    codes.resize(rows * cols, 0);
    scales.resize(rows, 0.0);
    if frozen > 0.0 {
        // all rows share the calibrated scale, so the whole block goes
        // through one SIMD quantization pass — no per-row bookkeeping
        scales.fill(frozen);
        qn_simd::quantize_to_i8(codes, x, 1.0 / frozen);
    } else {
        let mut batch_absmax = 0.0f32;
        for (r, s) in scales.iter_mut().enumerate() {
            let row = &x[r * cols..(r + 1) * cols];
            let dst = &mut codes[r * cols..(r + 1) * cols];
            let mut absmax = 0.0f32;
            for &v in row {
                let a = v.abs();
                if a > absmax {
                    absmax = a;
                }
            }
            if absmax > 0.0 && absmax.is_finite() {
                *s = absmax / 127.0;
                qn_simd::quantize_to_i8(dst, row, 127.0 / absmax);
            } else {
                // reused scratch may hold stale codes; this row must be
                // exactly zero
                *s = 0.0;
                dst.fill(0);
            }
            if absmax > batch_absmax {
                batch_absmax = absmax;
            }
        }
        if batch_absmax > 0.0 && batch_absmax.is_finite() {
            let mut g = stats.write().expect("act_stats lock poisoned");
            if batch_absmax > g.data()[0] {
                g.data_mut()[0] = batch_absmax;
            }
        }
    }
}

/// The shared int8 matmul engine behind [`QuantizedLinear`] and
/// [`QuantizedConv2d`]: quantized `[out, in]` weights, optional f32 bias,
/// and the layer's activation statistics.
struct Int8Core {
    /// Per-output-channel int8 weights, `[out, in]` row-major.
    weight: QTensor,
    /// Optional f32 bias, `[out]`.
    bias: Option<Tensor>,
    act_stats: RwLock<Tensor>,
}

impl Int8Core {
    fn new(weight: QTensor, bias: Option<Tensor>) -> Int8Core {
        if let Some(b) = &bias {
            assert_eq!(
                b.numel(),
                weight.rows(),
                "bias length must match output channels"
            );
        }
        assert!(
            weight.cols() <= GEMM_I8_MAX_K,
            "reduction dim {} exceeds GEMM_I8_MAX_K",
            weight.cols()
        );
        Int8Core {
            weight,
            bias,
            act_stats: new_act_stats(),
        }
    }

    /// `[rows, in] × [in, out] + bias`, all in int8 with an f32 epilogue.
    fn apply(&self, x: &[f32], rows: usize) -> Vec<f32> {
        let (k, out) = (self.weight.cols(), self.weight.rows());
        // activation codes die as soon as the GEMM consumes them, so each
        // thread reuses one scratch pair across layers and forwards
        // instead of reallocating per call
        thread_local! {
            static ACT_SCRATCH: std::cell::RefCell<(Vec<i8>, Vec<f32>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        ACT_SCRATCH.with(|scratch| {
            let (codes, sa) = &mut *scratch.borrow_mut();
            quantize_acts_into(&self.act_stats, x, rows, k, codes, sa);
            let mut y = vec![0.0f32; rows * out];
            gemm_i8(
                MatMut::new(&mut y, rows, out),
                MatRefI8::new(codes, rows, k),
                // `[out, in]` row-major transposed is `[in, out]` with unit
                // row stride, so gemm_i8 reads weight rows as contiguous
                // columns — no packing copy.
                self.weight.mat().transpose(),
                sa,
                self.weight.scales(),
            );
            if let Some(b) = &self.bias {
                let bd = b.data();
                for row in y.chunks_exact_mut(out) {
                    for (o, &bv) in row.iter_mut().zip(bd) {
                        *o += bv;
                    }
                }
            }
            y
        })
    }

    fn clone_core(&self) -> Int8Core {
        Int8Core {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            act_stats: RwLock::new(
                self.act_stats
                    .read()
                    .expect("act_stats lock poisoned")
                    .clone(),
            ),
        }
    }
}

/// Int8 twin of [`Linear`]: per-output-channel int8 weights, per-row
/// dynamic (or calibrated static) activation quantization, f32 bias.
///
/// Produced by [`Module::quantized`] on `Linear`; constructible directly
/// from any `[out, in]` weight via [`QuantizedLinear::new`].
pub struct QuantizedLinear {
    core: Int8Core,
    in_features: usize,
    out_features: usize,
}

impl QuantizedLinear {
    /// Quantizes `weight` (`[out, in]`) per output channel; `bias` is kept
    /// in f32.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not 2-D, contains non-finite values, has more
    /// than [`GEMM_I8_MAX_K`] input features, or `bias` length mismatches.
    pub fn new(weight: &Tensor, bias: Option<&Tensor>) -> QuantizedLinear {
        let (out_features, in_features) = weight.dims2();
        QuantizedLinear {
            core: Int8Core::new(QTensor::quantize(weight), bias.cloned()),
            in_features,
            out_features,
        }
    }

    /// The quantized weight matrix.
    pub fn weight(&self) -> &QTensor {
        &self.core.weight
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The frozen activation scale, or `0.0` while still dynamic.
    pub fn frozen_scale(&self) -> f32 {
        self.core
            .act_stats
            .read()
            .expect("act_stats lock poisoned")
            .data()[1]
    }
}

impl Module for QuantizedLinear {
    fn forward(&self, cx: &mut dyn Exec, x: Var) -> Var {
        let dims = cx.value(x).shape().dims().to_vec();
        let nd = dims.len();
        assert!(
            nd >= 1 && dims[nd - 1] == self.in_features,
            "QuantizedLinear: input trailing dim {:?} != {}",
            dims,
            self.in_features
        );
        let lead: usize = dims[..nd - 1].iter().product();
        let mut out_dims = dims;
        out_dims[nd - 1] = self.out_features;
        let y = {
            let xt = cx.value(x);
            let data = self.core.apply(xt.data(), lead);
            Tensor::from_vec(data, &out_dims).expect("quantized output shape is consistent")
        };
        cx.leaf(y)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.state(ACT_STATS_NAME, &self.core.act_stats);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        let nd = input.len();
        assert!(nd >= 1 && input[nd - 1] == self.in_features);
        let lead: usize = input[..nd - 1].iter().product();
        let mut output = input.to_vec();
        output[nd - 1] = self.out_features;
        Costs {
            macs: (lead * self.in_features * self.out_features) as u64,
            output,
        }
    }

    fn weight_dtype(&self) -> &'static str {
        "int8"
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(QuantizedLinear {
            core: self.core.clone_core(),
            in_features: self.in_features,
            out_features: self.out_features,
        }))
    }
}

/// Int8 twin of `Conv2d`: the im2col patch product runs through
/// [`gemm_i8`] against `[out_channels, in_channels·k²]` int8 weights.
pub struct QuantizedConv2d {
    core: Int8Core,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl QuantizedConv2d {
    /// Quantizes a `[oc, c, k, k]` convolution weight per output channel.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not 4-D with square kernels matching `spec`,
    /// contains non-finite values, or `bias` length mismatches.
    pub fn new(weight: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> QuantizedConv2d {
        let (oc, c, kh, kw) = weight.dims4();
        assert_eq!(kh, kw, "QuantizedConv2d: kernels must be square");
        assert_eq!(
            kh, spec.kernel,
            "QuantizedConv2d: weight/spec kernel mismatch"
        );
        let patch = c * kh * kw;
        let q = QTensor::quantize_rows(weight.data(), oc, patch);
        QuantizedConv2d {
            core: Int8Core::new(q, bias.cloned()),
            spec,
            in_channels: c,
            out_channels: oc,
        }
    }

    /// The quantized `[oc, c·k²]` patch-weight matrix.
    pub fn weight(&self) -> &QTensor {
        &self.core.weight
    }

    /// Spatial geometry of the convolution.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Module for QuantizedConv2d {
    fn forward(&self, cx: &mut dyn Exec, x: Var) -> Var {
        let (b, c, h, w) = cx.value(x).dims4();
        assert_eq!(
            c, self.in_channels,
            "QuantizedConv2d: input has {c} channels, layer expects {}",
            self.in_channels
        );
        let (oh, ow) = self.spec.output_hw(h, w);
        let patches = cx.im2col(x, self.spec);
        let y = {
            let p = cx.value(patches);
            let (rows, _) = p.dims2();
            let data = self.core.apply(p.data(), rows);
            Tensor::from_vec(data, &[rows, self.out_channels])
                .expect("quantized conv output shape is consistent")
        };
        let yv = cx.leaf(y);
        cx.rows_to_nchw(yv, b, oh, ow, self.out_channels)
    }

    fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.state(ACT_STATS_NAME, &self.core.act_stats);
    }

    fn costs(&self, input: &[usize]) -> Costs {
        assert_eq!(input.len(), 4, "QuantizedConv2d costs expects NCHW");
        let (b, _, h, w) = (input[0], input[1], input[2], input[3]);
        let (oh, ow) = self.spec.output_hw(h, w);
        let patch = self.in_channels * self.spec.kernel * self.spec.kernel;
        Costs {
            macs: (b * oh * ow * patch * self.out_channels) as u64,
            output: vec![b, self.out_channels, oh, ow],
        }
    }

    fn weight_dtype(&self) -> &'static str {
        "int8"
    }

    fn quantized(&self) -> Option<Box<dyn Module>> {
        Some(Box::new(QuantizedConv2d {
            core: self.core.clone_core(),
            spec: self.spec,
            in_channels: self.in_channels,
            out_channels: self.out_channels,
        }))
    }
}

impl Linear {
    /// Builds the int8 twin [`QuantizedLinear`] from this layer's current
    /// weights (used by its [`Module::quantized`] implementation).
    pub fn to_quantized(&self) -> QuantizedLinear {
        let w = self.weight().value();
        let b = self.bias_value();
        QuantizedLinear::new(&w, b.as_ref())
    }
}

/// Snapshots `m` into its inference-only int8 twin, if every layer in the
/// tree supports quantization — the public entry point of the quantized
/// tier. Equivalent to `m.quantized()`; see [`Module::quantized`].
pub fn quantize_module(m: &dyn Module) -> Option<Box<dyn Module>> {
    m.quantized()
}

/// Quantizes `m` and immediately calibrates the twin's activation scales
/// on `batches` (see [`calibrate`]). Returns `None` when the tree has a
/// layer with no quantized form.
pub fn quantize_calibrated(
    m: &dyn Module,
    batches: impl IntoIterator<Item = Tensor>,
) -> Option<Box<dyn Module>> {
    let q = m.quantized()?;
    calibrate(q.as_ref(), batches);
    Some(q)
}

/// Calibrates a quantized module: resets every layer's activation
/// statistics, runs `batches` through it in eager (inference) mode to
/// observe activation ranges, then freezes each layer's activation scale
/// at `observed_absmax / 127`. Returns the number of batches consumed.
///
/// With zero batches this still resets and "freezes" to the dynamic state
/// (scale 0), so calling it twice is safe.
pub fn calibrate(m: &dyn Module, batches: impl IntoIterator<Item = Tensor>) -> usize {
    for_each_act_stats(m, &mut |s| {
        let mut g = s.write().expect("act_stats lock poisoned");
        g.data_mut()[0] = 0.0;
        g.data_mut()[1] = 0.0;
    });
    let mut n = 0usize;
    for b in batches {
        let mut ex = EagerExec::new();
        let x = ex.leaf(b);
        let _ = m.forward(&mut ex, x);
        n += 1;
    }
    for_each_act_stats(m, &mut |s| {
        let mut g = s.write().expect("act_stats lock poisoned");
        let observed = g.data()[0];
        g.data_mut()[1] = if observed > 0.0 {
            observed / 127.0
        } else {
            0.0
        };
    });
    n
}

/// Invokes `f` on every `act_stats` state tensor in `m`'s tree.
fn for_each_act_stats(m: &dyn Module, f: &mut dyn FnMut(&RwLock<Tensor>)) {
    struct V<'a> {
        f: &'a mut dyn FnMut(&RwLock<Tensor>),
    }
    impl ParamVisitor for V<'_> {
        fn param(&mut self, _name: &str, _p: &qn_autograd::Parameter) {}
        fn state(&mut self, name: &str, t: &RwLock<Tensor>) {
            if name == ACT_STATS_NAME {
                (self.f)(t);
            }
        }
    }
    m.visit_params(&mut V { f });
}

/// Writes a [`QTensor`] into a checkpoint as the int8 `"{name}.codes"`
/// blob plus an f32 `"{name}.scales"` sibling — the persistence pairing
/// [`read_qtensor`] reverses.
pub fn write_qtensor(w: &mut CheckpointWriter, name: &str, q: &QTensor) {
    w.add_i8(
        format!("{name}.codes"),
        q.data().to_vec(),
        &[q.rows(), q.cols()],
    );
    let scales =
        Tensor::from_vec(q.scales().to_vec(), &[q.rows()]).expect("scales length equals row count");
    w.add(format!("{name}.scales"), scales);
}

/// Reads a [`QTensor`] written by [`write_qtensor`] back out of a
/// checkpoint.
///
/// # Errors
///
/// Returns [`TensorError`] if either entry is missing, has the wrong
/// dtype, or the codes/scales shapes disagree.
pub fn read_qtensor(ck: &Checkpoint, name: &str) -> Result<QTensor, TensorError> {
    let codes_name = format!("{name}.codes");
    let codes = ck.i8_slice(&codes_name)?;
    let entry = ck
        .entry(&codes_name)
        .expect("i8_slice succeeded, so the entry exists");
    let dims = entry.shape.clone();
    if dims.len() != 2 {
        return Err(TensorError::InvalidCheckpoint {
            offset: 0,
            detail: format!("{codes_name}: expected 2-D codes, got {dims:?}"),
        });
    }
    let scales = ck.tensor(&format!("{name}.scales"))?;
    QTensor::from_parts(codes.to_vec(), scales.data().to_vec(), dims[0], dims[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Sequential;
    use qn_tensor::Rng;

    fn randn(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        Tensor::randn(dims, &mut rng)
    }

    #[test]
    fn quantized_linear_tracks_f32_closely() {
        let w = randn(&[8, 16], 1);
        let b = randn(&[8], 2);
        let lin = Linear::from_parts(w.clone(), Some(b.clone()));
        let q = lin.to_quantized();
        let x = randn(&[4, 16], 3);

        let mut ex = EagerExec::new();
        let xv = ex.leaf(x.clone());
        let yf = lin.forward(&mut ex, xv);
        let yf = ex.value(yf).clone();

        let mut ex = EagerExec::new();
        let xv = ex.leaf(x);
        let yq = q.forward(&mut ex, xv);
        let yq = ex.value(yq).clone();

        assert_eq!(yf.shape().dims(), yq.shape().dims());
        let mut worst = 0.0f32;
        for (a, b) in yf.data().iter().zip(yq.data()) {
            worst = worst.max((a - b).abs());
        }
        // 8-bit weights and activations over k=16: comfortably sub-0.1
        // for unit-scale Gaussian data.
        assert!(worst < 0.1, "int8 drift too large: {worst}");
    }

    #[test]
    fn quantized_linear_flattens_leading_dims() {
        let lin = Linear::from_parts(randn(&[5, 6], 7), None);
        let q = lin.to_quantized();
        let x = randn(&[2, 3, 6], 8);
        let mut ex = EagerExec::new();
        let xv = ex.leaf(x);
        let y = q.forward(&mut ex, xv);
        assert_eq!(ex.value(y).shape().dims(), &[2, 3, 5]);
    }

    #[test]
    fn calibration_freezes_and_saturates() {
        let lin = Linear::from_parts(randn(&[4, 8], 11), None);
        let q = lin.to_quantized();
        assert_eq!(q.frozen_scale(), 0.0);
        let n = calibrate(&q, (0..3).map(|s| randn(&[2, 8], 20 + s)));
        assert_eq!(n, 3);
        assert!(q.frozen_scale() > 0.0, "calibration must freeze a scale");

        // A frozen layer quantizes every row with the same scale: feeding
        // an input far beyond the calibrated range must saturate, not
        // rescale.
        let big = Tensor::from_vec(vec![1e6; 8], &[1, 8]).unwrap();
        let (codes, scales) = quantize_acts(&q.core.act_stats, big.data(), 1, 8);
        assert!(codes.iter().all(|&c| c == 127 || c == -127));
        assert!((scales[0] - q.frozen_scale()).abs() < 1e-12);
    }

    #[test]
    fn dynamic_forward_observes_ranges() {
        let q = QuantizedLinear::new(&randn(&[3, 4], 31), None);
        let x = Tensor::from_vec(vec![0.5, -2.0, 1.0, 0.0], &[1, 4]).unwrap();
        let mut ex = EagerExec::new();
        let xv = ex.leaf(x);
        let _ = q.forward(&mut ex, xv);
        let g = q.core.act_stats.read().unwrap();
        assert_eq!(g.data()[0], 2.0, "observed absmax must track the batch");
        assert_eq!(g.data()[1], 0.0, "still dynamic until calibrated");
    }

    #[test]
    fn quantized_conv_matches_f32_within_tolerance() {
        use crate::layers::Conv2d;
        let mut rng = Rng::seed_from(5);
        let conv = Conv2d::new(3, 8, Conv2dSpec::new(3, 1, 1), true, &mut rng);
        let q = conv.quantized().expect("conv quantizes");
        let x = randn(&[2, 3, 6, 6], 6);

        let mut ex = EagerExec::new();
        let xv = ex.leaf(x.clone());
        let yf = conv.forward(&mut ex, xv);
        let yf = ex.value(yf).clone();

        let mut ex = EagerExec::new();
        let xv = ex.leaf(x);
        let yq = q.forward(&mut ex, xv);
        let yq = ex.value(yq).clone();

        assert_eq!(yf.shape().dims(), yq.shape().dims());
        assert_eq!(q.weight_dtype(), "int8");
        let mut worst = 0.0f32;
        for (a, b) in yf.data().iter().zip(yq.data()) {
            worst = worst.max((a - b).abs());
        }
        assert!(worst < 0.2, "int8 conv drift too large: {worst}");
    }

    #[test]
    fn sequential_quantizes_end_to_end_or_not_at_all() {
        use crate::layers::Relu;
        let seq = Sequential::new(vec![
            Box::new(Linear::from_parts(randn(&[8, 4], 41), None)),
            Box::new(Relu),
            Box::new(Linear::from_parts(randn(&[2, 8], 42), None)),
        ]);
        let q = seq.quantized().expect("all layers quantize");
        assert_eq!(q.weight_dtype(), "int8");
        let x = randn(&[3, 4], 43);
        let mut ex = EagerExec::new();
        let xv = ex.leaf(x);
        let y = q.forward(&mut ex, xv);
        assert_eq!(ex.value(y).shape().dims(), &[3, 2]);

        struct NoQuant;
        impl Module for NoQuant {
            fn forward(&self, _cx: &mut dyn Exec, x: Var) -> Var {
                x
            }
            fn visit_params(&self, _v: &mut dyn ParamVisitor) {}
            fn costs(&self, input: &[usize]) -> Costs {
                Costs::passthrough(input)
            }
        }
        let seq = Sequential::new(vec![Box::new(NoQuant) as Box<dyn Module>]);
        assert!(seq.quantized().is_none(), "one holdout blocks the tree");
    }

    #[test]
    fn qtensor_checkpoint_roundtrip() {
        let w = randn(&[6, 10], 51);
        let q = QTensor::quantize(&w);
        let mut wtr = CheckpointWriter::new();
        write_qtensor(&mut wtr, "layer.weight", &q);
        let bytes = wtr.to_bytes().unwrap();
        let ck = Checkpoint::from_mmap(qn_tensor::Mmap::from_bytes(bytes).into()).unwrap();
        let back = read_qtensor(&ck, "layer.weight").unwrap();
        assert_eq!(back.data(), q.data());
        assert_eq!(back.scales(), q.scales());
        assert!(read_qtensor(&ck, "missing").is_err());
    }
}
