use qn_autograd::{Exec, Parameter, Var};
use qn_tensor::Tensor;
use std::sync::RwLock;

/// Cost report for one layer on a given input shape: multiply–accumulate
/// count and the produced output shape.
///
/// Used by the experiment harnesses to regenerate the paper's parameter and
/// FLOP axes (Figs. 4–5, Tables I–II) without running a forward pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Costs {
    /// Number of multiply–accumulate operations for one forward pass.
    pub macs: u64,
    /// Shape of the layer output for the given input shape.
    pub output: Vec<usize>,
}

impl Costs {
    /// A zero-cost, shape-preserving report (activations, reshapes, …).
    pub fn passthrough(input: &[usize]) -> Self {
        Costs {
            macs: 0,
            output: input.to_vec(),
        }
    }
}

/// Walks a module's parameter tree, giving every parameter a stable dotted
/// path (`block2.conv1.weight`) — the naming scheme the checkpoint format
/// persists.
///
/// [`Module::visit_params`] drives the walk: containers call
/// [`ParamVisitor::enter`]/[`ParamVisitor::leave`] around each child scope
/// and leaves report their parameters with short local names; the visitor
/// joins the scope stack with dots. Non-trainable buffers that still belong
/// in a checkpoint (batch-norm running statistics) are reported through
/// [`ParamVisitor::state`].
///
/// Paths are a **persistence contract**: they must stay stable across
/// refactors or old checkpoints stop loading. They are independent of
/// [`Parameter::name`], which remains the (unscoped) diagnostic label.
pub trait ParamVisitor {
    /// Pushes a scope (layer index, block name, …) onto the path stack.
    fn enter(&mut self, scope: &str) {
        let _ = scope;
    }

    /// Pops the innermost scope.
    fn leave(&mut self) {}

    /// Reports one trainable parameter under its local `name`.
    fn param(&mut self, name: &str, p: &Parameter);

    /// Reports one non-trainable state tensor (e.g. `running_mean`) under
    /// its local `name`. Default: ignored, so gradient-only walkers don't
    /// see buffers.
    fn state(&mut self, name: &str, t: &RwLock<Tensor>) {
        let _ = (name, t);
    }
}

/// Runs `f` inside a named visitor scope — the one-liner containers use to
/// prefix a child's parameters.
pub fn visit_scoped(v: &mut dyn ParamVisitor, scope: &str, f: impl FnOnce(&mut dyn ParamVisitor)) {
    v.enter(scope);
    f(v);
    v.leave();
}

/// A neural-network layer: forward pass, parameters and cost accounting.
///
/// Implementations are object-safe so models can hold heterogeneous
/// `Box<dyn Module>` stacks built from pluggable neuron kinds.
///
/// `Send + Sync` is a supertrait: a model is shared by reference across the
/// `qn-parallel` worker pool (sharded `InferenceSession::predict_batch`,
/// data-parallel gradient accumulation), so layers must keep their interior
/// state thread-safe — [`Parameter`] is `Arc<RwLock<…>>` and `BatchNorm2d`
/// guards its running statistics with an `RwLock`.
///
/// The forward pass is written once against the [`Exec`] execution context
/// and therefore runs in **both** modes: on a
/// [`Graph`](qn_autograd::Graph) it records the differentiation tape
/// (training), and on an [`EagerExec`](qn_autograd::EagerExec) it evaluates
/// tape-free (inference) — same arithmetic, no autograd bookkeeping.
pub trait Module: Send + Sync {
    /// Runs the layer in the given execution context, returning the output
    /// node. Pass a `&mut Graph` to record the tape, or a `&mut EagerExec`
    /// for the allocation-light inference path.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x` violates the layer's input contract
    /// (wrong rank, trailing width or channel count) — forward is a hot
    /// path and shape errors here are programmer errors. Serving code that
    /// receives shapes from untrusted requests should validate first, e.g.
    /// via `InferenceSession::try_predict` in `qn-models`, which returns a
    /// `TensorError` instead.
    fn forward(&self, cx: &mut dyn Exec, x: Var) -> Var;

    /// Walks this module's parameter tree in a **stable order with stable
    /// names** (see [`ParamVisitor`]). Implementations visit parameters in
    /// the same order [`Module::params`] historically returned them.
    fn visit_params(&self, v: &mut dyn ParamVisitor);

    /// The trainable parameters (cloned handles that alias layer storage),
    /// in visit order. Provided: collects from [`Module::visit_params`].
    fn params(&self) -> Vec<Parameter> {
        struct Collect(Vec<Parameter>);
        impl ParamVisitor for Collect {
            fn param(&mut self, _name: &str, p: &Parameter) {
                self.0.push(p.clone());
            }
        }
        let mut c = Collect(Vec::new());
        self.visit_params(&mut c);
        c.0
    }

    /// MAC count and output shape for the given input shape.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `input` has the wrong rank for the
    /// layer.
    fn costs(&self, input: &[usize]) -> Costs;

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// The storage dtype of this module's weights: `"f32"` for ordinary
    /// layers, `"int8"` for quantized ones. Containers report `"int8"`
    /// when any weight-bearing child does (a quantized model is quantized
    /// end-to-end, so mixed trees only arise transiently).
    fn weight_dtype(&self) -> &'static str {
        "f32"
    }

    /// An **inference-only** int8 twin of this module, or `None` when the
    /// layer kind has no quantized form. Weight-bearing layers return a
    /// sibling holding per-output-channel symmetric int8 weights
    /// ([`qn_tensor::QTensor`]); stateless layers return a copy of
    /// themselves; containers return `Some` only when every child does.
    ///
    /// The twin shares no storage with `self` — quantization snapshots
    /// the weights — and its forward pass does not record gradients
    /// (quantized outputs enter the tape as leaves).
    fn quantized(&self) -> Option<Box<dyn Module>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_keeps_shape() {
        let c = Costs::passthrough(&[2, 3]);
        assert_eq!(c.macs, 0);
        assert_eq!(c.output, vec![2, 3]);
    }
}
