//! Optimizers with parameter groups and gradient clipping.
//!
//! Update loops are profile-aware: under [`KernelProfile::Fast`] they run
//! the vectorized `qn_simd::{sgd_update, adam_update}` kernels, under
//! `Exact` the seed scalar loops. The vector kernels are element-local
//! with no FMA (and correctly-rounded div/sqrt), so both paths produce
//! bit-identical parameters — the split exists to honor the documented
//! "Exact never enters vector f32 code" contract, not because results
//! differ.

use qn_autograd::Parameter;
use qn_simd::KernelProfile;
use qn_tensor::{Checkpoint, CheckpointWriter, Tensor, TensorError};

/// Restores one optimizer state tensor from `ckpt`, shape-checked against
/// the live buffer it replaces.
fn load_state_tensor(ckpt: &Checkpoint, name: &str, into: &mut Tensor) -> Result<(), TensorError> {
    let t = ckpt.tensor(name)?;
    if t.shape() != into.shape() {
        return Err(TensorError::InvalidCheckpoint {
            offset: 0,
            detail: format!(
                "optimizer state \"{name}\": checkpoint shape {:?} does not match live shape {:?}",
                t.shape().dims(),
                into.shape().dims()
            ),
        });
    }
    *into = t;
    Ok(())
}

/// Configuration for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Base learning rate (used by groups without an override).
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay (0 disables).
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }
}

struct Group {
    params: Vec<Parameter>,
    lr_override: Option<f32>,
    weight_decay_override: Option<f32>,
    velocity: Vec<Tensor>,
}

/// Stochastic gradient descent with momentum, weight decay and parameter
/// groups.
///
/// Groups may override the learning rate — the paper trains the quadratic
/// eigenvalues `Λᵏ` at 1e-4…1e-6 while the rest of the network uses 0.1.
/// [`Sgd::step`] takes a schedule factor that scales every group's rate,
/// so step-decay applies uniformly.
///
/// # Example
///
/// ```
/// use qn_autograd::Parameter;
/// use qn_nn::{Sgd, SgdConfig};
/// use qn_tensor::Tensor;
///
/// let p = Parameter::new(Tensor::ones(&[2]));
/// p.accumulate_grad(&Tensor::ones(&[2]));
/// let mut opt = Sgd::new(SgdConfig { lr: 0.5, momentum: 0.0, weight_decay: 0.0 });
/// opt.add_group(vec![p.clone()], None, None);
/// opt.step(1.0);
/// assert_eq!(p.value().data(), &[0.5, 0.5]);
/// ```
pub struct Sgd {
    config: SgdConfig,
    groups: Vec<Group>,
}

impl Sgd {
    /// Creates an optimizer with no parameter groups.
    pub fn new(config: SgdConfig) -> Self {
        Sgd {
            config,
            groups: Vec::new(),
        }
    }

    /// Adds a parameter group with optional learning-rate and weight-decay
    /// overrides.
    pub fn add_group(
        &mut self,
        params: Vec<Parameter>,
        lr_override: Option<f32>,
        weight_decay_override: Option<f32>,
    ) {
        let velocity = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().dims()))
            .collect();
        self.groups.push(Group {
            params,
            lr_override,
            weight_decay_override,
            velocity,
        });
    }

    /// Applies one update. `schedule` scales every group's learning rate
    /// (pass the current decay factor, 1.0 for none).
    pub fn step(&mut self, schedule: f32) {
        let fast = KernelProfile::active() == KernelProfile::Fast;
        for group in &mut self.groups {
            let lr = group.lr_override.unwrap_or(self.config.lr) * schedule;
            let wd = group
                .weight_decay_override
                .unwrap_or(self.config.weight_decay);
            let momentum = self.config.momentum;
            for (p, vel) in group.params.iter().zip(group.velocity.iter_mut()) {
                p.update(|value, grad| {
                    if fast {
                        qn_simd::sgd_update(
                            value.data_mut(),
                            vel.data_mut(),
                            grad.data(),
                            lr,
                            momentum,
                            wd,
                        );
                        return;
                    }
                    for i in 0..value.numel() {
                        let g = grad.data()[i] + wd * value.data()[i];
                        let v = momentum * vel.data()[i] + g;
                        vel.data_mut()[i] = v;
                        value.data_mut()[i] -= lr * v;
                    }
                });
            }
        }
    }

    /// Zeroes every parameter's gradient accumulator.
    pub fn zero_grad(&self) {
        for group in &self.groups {
            for p in &group.params {
                p.zero_grad();
            }
        }
    }

    /// All parameters across groups (clone handles).
    pub fn params(&self) -> Vec<Parameter> {
        self.groups
            .iter()
            .flat_map(|g| g.params.iter().cloned())
            .collect()
    }

    /// Appends the momentum buffers to `writer` as
    /// `{prefix}.g{group}.v{index}`, so optimizer state rides in the same
    /// checkpoint as the model it trains.
    pub fn save_state(&self, writer: &mut CheckpointWriter, prefix: &str) {
        for (gi, group) in self.groups.iter().enumerate() {
            for (pi, vel) in group.velocity.iter().enumerate() {
                writer.add(format!("{prefix}.g{gi}.v{pi}"), vel.clone());
            }
        }
    }

    /// Restores momentum buffers written by [`Sgd::save_state`]. Groups must
    /// have been re-added in the same order and with the same shapes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] when a buffer is missing
    /// or stored with a different shape.
    pub fn load_state(&mut self, ckpt: &Checkpoint, prefix: &str) -> Result<(), TensorError> {
        for (gi, group) in self.groups.iter_mut().enumerate() {
            for (pi, vel) in group.velocity.iter_mut().enumerate() {
                load_state_tensor(ckpt, &format!("{prefix}.g{gi}.v{pi}"), vel)?;
            }
        }
        Ok(())
    }
}

/// Configuration for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Base learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.98,
            eps: 1e-9,
        }
    }
}

struct AdamGroup {
    params: Vec<Parameter>,
    lr_override: Option<f32>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

/// Adam optimizer (β₂ = 0.98, ε = 1e-9 defaults per "Attention Is All You
/// Need") with parameter groups for the quadratic `Λᵏ` learning rate.
pub struct Adam {
    config: AdamConfig,
    groups: Vec<AdamGroup>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer with no parameter groups.
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            groups: Vec::new(),
            t: 0,
        }
    }

    /// Adds a parameter group with an optional learning-rate override.
    pub fn add_group(&mut self, params: Vec<Parameter>, lr_override: Option<f32>) {
        let m = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().dims()))
            .collect();
        let v = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().dims()))
            .collect();
        self.groups.push(AdamGroup {
            params,
            lr_override,
            m,
            v,
        });
    }

    /// Applies one update; `schedule` scales every group's rate (e.g. a Noam
    /// warmup factor).
    pub fn step(&mut self, schedule: f32) {
        self.t += 1;
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let eps = self.config.eps;
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        let fast = KernelProfile::active() == KernelProfile::Fast;
        for group in &mut self.groups {
            let lr = group.lr_override.unwrap_or(self.config.lr) * schedule;
            for ((p, m), v) in group
                .params
                .iter()
                .zip(group.m.iter_mut())
                .zip(group.v.iter_mut())
            {
                p.update(|value, grad| {
                    if fast {
                        qn_simd::adam_update(
                            value.data_mut(),
                            m.data_mut(),
                            v.data_mut(),
                            grad.data(),
                            lr,
                            b1,
                            b2,
                            eps,
                            bias1,
                            bias2,
                        );
                        return;
                    }
                    for i in 0..value.numel() {
                        let g = grad.data()[i];
                        let mi = b1 * m.data()[i] + (1.0 - b1) * g;
                        let vi = b2 * v.data()[i] + (1.0 - b2) * g * g;
                        m.data_mut()[i] = mi;
                        v.data_mut()[i] = vi;
                        let mhat = mi / bias1;
                        let vhat = vi / bias2;
                        value.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
                    }
                });
            }
        }
    }

    /// Zeroes every parameter's gradient accumulator.
    pub fn zero_grad(&self) {
        for group in &self.groups {
            for p in &group.params {
                p.zero_grad();
            }
        }
    }

    /// Step counter `t` (drives bias correction); 0 before the first step.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Appends moment buffers to `writer` as `{prefix}.g{group}.m{index}` /
    /// `{prefix}.g{group}.v{index}`. The step counter is **not** a tensor —
    /// persist [`Adam::steps`] in checkpoint metadata and restore it with
    /// [`Adam::set_steps`].
    pub fn save_state(&self, writer: &mut CheckpointWriter, prefix: &str) {
        for (gi, group) in self.groups.iter().enumerate() {
            for (pi, m) in group.m.iter().enumerate() {
                writer.add(format!("{prefix}.g{gi}.m{pi}"), m.clone());
            }
            for (pi, v) in group.v.iter().enumerate() {
                writer.add(format!("{prefix}.g{gi}.v{pi}"), v.clone());
            }
        }
    }

    /// Restores moment buffers written by [`Adam::save_state`]. Groups must
    /// have been re-added in the same order and with the same shapes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] when a buffer is missing
    /// or stored with a different shape.
    pub fn load_state(&mut self, ckpt: &Checkpoint, prefix: &str) -> Result<(), TensorError> {
        for (gi, group) in self.groups.iter_mut().enumerate() {
            for (pi, m) in group.m.iter_mut().enumerate() {
                load_state_tensor(ckpt, &format!("{prefix}.g{gi}.m{pi}"), m)?;
            }
            for (pi, v) in group.v.iter_mut().enumerate() {
                load_state_tensor(ckpt, &format!("{prefix}.g{gi}.v{pi}"), v)?;
            }
        }
        Ok(())
    }

    /// Overwrites the step counter (checkpoint resume).
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }
}

/// Clips the global L2 norm of all gradients to `max_norm`, returning the
/// pre-clip norm.
pub fn clip_grad_norm(params: &[Parameter], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        let g = p.grad();
        total += g.dot(&g);
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            let scaled = p.grad().scale(scale);
            p.zero_grad();
            p.accumulate_grad(&scaled);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_param(x0: f32) -> Parameter {
        Parameter::new(Tensor::from_vec(vec![x0], &[1]).unwrap())
    }

    /// Minimizes f(x) = x² with the given closure producing one step.
    fn run_opt(mut step: impl FnMut(&Parameter), p: &Parameter, iters: usize) -> f32 {
        for _ in 0..iters {
            p.zero_grad();
            let x = p.value().data()[0];
            p.accumulate_grad(&Tensor::from_vec(vec![2.0 * x], &[1]).unwrap());
            step(p);
        }
        p.value().data()[0]
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let p = quad_param(5.0);
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        opt.add_group(vec![p.clone()], None, None);
        let x = run_opt(|_| opt.step(1.0), &p, 50);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let p1 = quad_param(5.0);
        let mut plain = Sgd::new(SgdConfig {
            lr: 0.02,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        plain.add_group(vec![p1.clone()], None, None);
        let x_plain = run_opt(|_| plain.step(1.0), &p1, 20);

        let p2 = quad_param(5.0);
        let mut mom = Sgd::new(SgdConfig {
            lr: 0.02,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        mom.add_group(vec![p2.clone()], None, None);
        let x_mom = run_opt(|_| mom.step(1.0), &p2, 20);
        assert!(x_mom.abs() < x_plain.abs(), "{x_mom} vs {x_plain}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let p = quad_param(1.0);
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        });
        opt.add_group(vec![p.clone()], None, None);
        // zero gradient: only decay acts
        opt.step(1.0);
        let x = p.value().data()[0];
        assert!((x - (1.0 - 0.1 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn group_lr_override_is_respected() {
        let fast = quad_param(1.0);
        let slow = quad_param(1.0);
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        opt.add_group(vec![fast.clone()], None, None);
        opt.add_group(vec![slow.clone()], Some(1e-4), None);
        fast.accumulate_grad(&Tensor::ones(&[1]));
        slow.accumulate_grad(&Tensor::ones(&[1]));
        opt.step(1.0);
        assert!((fast.value().data()[0] - 0.9).abs() < 1e-6);
        assert!((slow.value().data()[0] - (1.0 - 1e-4)).abs() < 1e-6);
    }

    #[test]
    fn schedule_factor_scales_all_groups() {
        let p = quad_param(1.0);
        let mut opt = Sgd::new(SgdConfig {
            lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        opt.add_group(vec![p.clone()], None, None);
        p.accumulate_grad(&Tensor::ones(&[1]));
        opt.step(0.1);
        assert!((p.value().data()[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let p = quad_param(5.0);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.3,
            ..AdamConfig::default()
        });
        opt.add_group(vec![p.clone()], None);
        let x = run_opt(|_| opt.step(1.0), &p, 100);
        assert!(x.abs() < 0.1, "x = {x}");
    }

    #[test]
    fn clip_grad_norm_caps_large_gradients() {
        let p = Parameter::new(Tensor::zeros(&[4]));
        p.accumulate_grad(&Tensor::full(&[4], 10.0)); // norm 20
        let before = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((before - 20.0).abs() < 1e-4);
        let after = p.grad().frob_norm();
        assert!((after - 1.0).abs() < 1e-4);
    }

    /// One f(x) = x² gradient step for resume tests.
    fn quad_step(p: &Parameter) {
        p.zero_grad();
        let x = p.value().data()[0];
        p.accumulate_grad(&Tensor::from_vec(vec![2.0 * x], &[1]).unwrap());
    }

    #[test]
    fn sgd_state_roundtrip_resumes_bitwise() {
        let p = quad_param(5.0);
        let mut opt = Sgd::new(SgdConfig::default());
        opt.add_group(vec![p.clone()], None, None);
        for _ in 0..3 {
            quad_step(&p);
            opt.step(1.0);
        }
        let mut w = CheckpointWriter::new();
        w.add("param", p.value());
        opt.save_state(&mut w, "opt");
        let ckpt = Checkpoint::from_bytes(w.to_bytes().unwrap()).unwrap();

        let q = Parameter::new(ckpt.tensor("param").unwrap());
        let mut opt2 = Sgd::new(SgdConfig::default());
        opt2.add_group(vec![q.clone()], None, None);
        opt2.load_state(&ckpt, "opt").unwrap();

        for _ in 0..2 {
            quad_step(&p);
            opt.step(1.0);
            quad_step(&q);
            opt2.step(1.0);
        }
        assert!(p.value().bit_identical(&q.value()));
    }

    #[test]
    fn adam_state_roundtrip_resumes_bitwise() {
        let p = quad_param(5.0);
        let mut opt = Adam::new(AdamConfig::default());
        opt.add_group(vec![p.clone()], None);
        for _ in 0..3 {
            quad_step(&p);
            opt.step(1.0);
        }
        let mut w = CheckpointWriter::new();
        w.add("param", p.value());
        opt.save_state(&mut w, "opt");
        let steps = opt.steps();
        let ckpt = Checkpoint::from_bytes(w.to_bytes().unwrap()).unwrap();

        let q = Parameter::new(ckpt.tensor("param").unwrap());
        let mut opt2 = Adam::new(AdamConfig::default());
        opt2.add_group(vec![q.clone()], None);
        opt2.load_state(&ckpt, "opt").unwrap();
        opt2.set_steps(steps);

        for _ in 0..2 {
            quad_step(&p);
            opt.step(1.0);
            quad_step(&q);
            opt2.step(1.0);
        }
        assert!(p.value().bit_identical(&q.value()));
    }

    #[test]
    fn missing_optimizer_state_is_an_error() {
        let p = quad_param(1.0);
        let mut opt = Sgd::new(SgdConfig::default());
        opt.add_group(vec![p], None, None);
        let w = CheckpointWriter::new(); // no state saved
        let ckpt = Checkpoint::from_bytes(w.to_bytes().unwrap()).unwrap();
        assert!(matches!(
            opt.load_state(&ckpt, "opt"),
            Err(TensorError::InvalidCheckpoint { .. })
        ));
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let p = Parameter::new(Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::full(&[2], 0.1));
        clip_grad_norm(std::slice::from_ref(&p), 5.0);
        assert!(p.grad().allclose(&Tensor::full(&[2], 0.1), 1e-6));
    }
}
