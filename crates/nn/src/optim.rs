//! Optimizers with parameter groups and gradient clipping.

use qn_autograd::Parameter;
use qn_tensor::Tensor;

/// Configuration for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Base learning rate (used by groups without an override).
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay (0 disables).
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }
}

struct Group {
    params: Vec<Parameter>,
    lr_override: Option<f32>,
    weight_decay_override: Option<f32>,
    velocity: Vec<Tensor>,
}

/// Stochastic gradient descent with momentum, weight decay and parameter
/// groups.
///
/// Groups may override the learning rate — the paper trains the quadratic
/// eigenvalues `Λᵏ` at 1e-4…1e-6 while the rest of the network uses 0.1.
/// [`Sgd::step`] takes a schedule factor that scales every group's rate,
/// so step-decay applies uniformly.
///
/// # Example
///
/// ```
/// use qn_autograd::Parameter;
/// use qn_nn::{Sgd, SgdConfig};
/// use qn_tensor::Tensor;
///
/// let p = Parameter::new(Tensor::ones(&[2]));
/// p.accumulate_grad(&Tensor::ones(&[2]));
/// let mut opt = Sgd::new(SgdConfig { lr: 0.5, momentum: 0.0, weight_decay: 0.0 });
/// opt.add_group(vec![p.clone()], None, None);
/// opt.step(1.0);
/// assert_eq!(p.value().data(), &[0.5, 0.5]);
/// ```
pub struct Sgd {
    config: SgdConfig,
    groups: Vec<Group>,
}

impl Sgd {
    /// Creates an optimizer with no parameter groups.
    pub fn new(config: SgdConfig) -> Self {
        Sgd {
            config,
            groups: Vec::new(),
        }
    }

    /// Adds a parameter group with optional learning-rate and weight-decay
    /// overrides.
    pub fn add_group(
        &mut self,
        params: Vec<Parameter>,
        lr_override: Option<f32>,
        weight_decay_override: Option<f32>,
    ) {
        let velocity = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().dims()))
            .collect();
        self.groups.push(Group {
            params,
            lr_override,
            weight_decay_override,
            velocity,
        });
    }

    /// Applies one update. `schedule` scales every group's learning rate
    /// (pass the current decay factor, 1.0 for none).
    pub fn step(&mut self, schedule: f32) {
        for group in &mut self.groups {
            let lr = group.lr_override.unwrap_or(self.config.lr) * schedule;
            let wd = group
                .weight_decay_override
                .unwrap_or(self.config.weight_decay);
            let momentum = self.config.momentum;
            for (p, vel) in group.params.iter().zip(group.velocity.iter_mut()) {
                p.update(|value, grad| {
                    for i in 0..value.numel() {
                        let g = grad.data()[i] + wd * value.data()[i];
                        let v = momentum * vel.data()[i] + g;
                        vel.data_mut()[i] = v;
                        value.data_mut()[i] -= lr * v;
                    }
                });
            }
        }
    }

    /// Zeroes every parameter's gradient accumulator.
    pub fn zero_grad(&self) {
        for group in &self.groups {
            for p in &group.params {
                p.zero_grad();
            }
        }
    }

    /// All parameters across groups (clone handles).
    pub fn params(&self) -> Vec<Parameter> {
        self.groups
            .iter()
            .flat_map(|g| g.params.iter().cloned())
            .collect()
    }
}

/// Configuration for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Base learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.98,
            eps: 1e-9,
        }
    }
}

struct AdamGroup {
    params: Vec<Parameter>,
    lr_override: Option<f32>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

/// Adam optimizer (β₂ = 0.98, ε = 1e-9 defaults per "Attention Is All You
/// Need") with parameter groups for the quadratic `Λᵏ` learning rate.
pub struct Adam {
    config: AdamConfig,
    groups: Vec<AdamGroup>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer with no parameter groups.
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            groups: Vec::new(),
            t: 0,
        }
    }

    /// Adds a parameter group with an optional learning-rate override.
    pub fn add_group(&mut self, params: Vec<Parameter>, lr_override: Option<f32>) {
        let m = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().dims()))
            .collect();
        let v = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().dims()))
            .collect();
        self.groups.push(AdamGroup {
            params,
            lr_override,
            m,
            v,
        });
    }

    /// Applies one update; `schedule` scales every group's rate (e.g. a Noam
    /// warmup factor).
    pub fn step(&mut self, schedule: f32) {
        self.t += 1;
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let eps = self.config.eps;
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        for group in &mut self.groups {
            let lr = group.lr_override.unwrap_or(self.config.lr) * schedule;
            for ((p, m), v) in group
                .params
                .iter()
                .zip(group.m.iter_mut())
                .zip(group.v.iter_mut())
            {
                p.update(|value, grad| {
                    for i in 0..value.numel() {
                        let g = grad.data()[i];
                        let mi = b1 * m.data()[i] + (1.0 - b1) * g;
                        let vi = b2 * v.data()[i] + (1.0 - b2) * g * g;
                        m.data_mut()[i] = mi;
                        v.data_mut()[i] = vi;
                        let mhat = mi / bias1;
                        let vhat = vi / bias2;
                        value.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
                    }
                });
            }
        }
    }

    /// Zeroes every parameter's gradient accumulator.
    pub fn zero_grad(&self) {
        for group in &self.groups {
            for p in &group.params {
                p.zero_grad();
            }
        }
    }
}

/// Clips the global L2 norm of all gradients to `max_norm`, returning the
/// pre-clip norm.
pub fn clip_grad_norm(params: &[Parameter], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        let g = p.grad();
        total += g.dot(&g);
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            let scaled = p.grad().scale(scale);
            p.zero_grad();
            p.accumulate_grad(&scaled);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_param(x0: f32) -> Parameter {
        Parameter::new(Tensor::from_vec(vec![x0], &[1]).unwrap())
    }

    /// Minimizes f(x) = x² with the given closure producing one step.
    fn run_opt(mut step: impl FnMut(&Parameter), p: &Parameter, iters: usize) -> f32 {
        for _ in 0..iters {
            p.zero_grad();
            let x = p.value().data()[0];
            p.accumulate_grad(&Tensor::from_vec(vec![2.0 * x], &[1]).unwrap());
            step(p);
        }
        p.value().data()[0]
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let p = quad_param(5.0);
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        opt.add_group(vec![p.clone()], None, None);
        let x = run_opt(|_| opt.step(1.0), &p, 50);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let p1 = quad_param(5.0);
        let mut plain = Sgd::new(SgdConfig {
            lr: 0.02,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        plain.add_group(vec![p1.clone()], None, None);
        let x_plain = run_opt(|_| plain.step(1.0), &p1, 20);

        let p2 = quad_param(5.0);
        let mut mom = Sgd::new(SgdConfig {
            lr: 0.02,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        mom.add_group(vec![p2.clone()], None, None);
        let x_mom = run_opt(|_| mom.step(1.0), &p2, 20);
        assert!(x_mom.abs() < x_plain.abs(), "{x_mom} vs {x_plain}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let p = quad_param(1.0);
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        });
        opt.add_group(vec![p.clone()], None, None);
        // zero gradient: only decay acts
        opt.step(1.0);
        let x = p.value().data()[0];
        assert!((x - (1.0 - 0.1 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn group_lr_override_is_respected() {
        let fast = quad_param(1.0);
        let slow = quad_param(1.0);
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        opt.add_group(vec![fast.clone()], None, None);
        opt.add_group(vec![slow.clone()], Some(1e-4), None);
        fast.accumulate_grad(&Tensor::ones(&[1]));
        slow.accumulate_grad(&Tensor::ones(&[1]));
        opt.step(1.0);
        assert!((fast.value().data()[0] - 0.9).abs() < 1e-6);
        assert!((slow.value().data()[0] - (1.0 - 1e-4)).abs() < 1e-6);
    }

    #[test]
    fn schedule_factor_scales_all_groups() {
        let p = quad_param(1.0);
        let mut opt = Sgd::new(SgdConfig {
            lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        opt.add_group(vec![p.clone()], None, None);
        p.accumulate_grad(&Tensor::ones(&[1]));
        opt.step(0.1);
        assert!((p.value().data()[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let p = quad_param(5.0);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.3,
            ..AdamConfig::default()
        });
        opt.add_group(vec![p.clone()], None);
        let x = run_opt(|_| opt.step(1.0), &p, 100);
        assert!(x.abs() < 0.1, "x = {x}");
    }

    #[test]
    fn clip_grad_norm_caps_large_gradients() {
        let p = Parameter::new(Tensor::zeros(&[4]));
        p.accumulate_grad(&Tensor::full(&[4], 10.0)); // norm 20
        let before = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((before - 20.0).abs() < 1e-4);
        let after = p.grad().frob_norm();
        assert!((after - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let p = Parameter::new(Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::full(&[2], 0.1));
        clip_grad_norm(std::slice::from_ref(&p), 5.0);
        assert!(p.grad().allclose(&Tensor::full(&[2], 0.1), 1e-6));
    }
}
