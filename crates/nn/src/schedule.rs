//! Learning-rate schedules.

/// Step decay: multiplies the base rate by `gamma` at each milestone epoch —
/// the CIFAR ResNet schedule of the paper (decay 0.1 at epochs 90 and 135).
///
/// # Example
///
/// ```
/// use qn_nn::StepDecay;
///
/// let sched = StepDecay::new(vec![90, 135], 0.1);
/// assert_eq!(sched.factor(0), 1.0);
/// assert_eq!(sched.factor(90), 0.1);
/// assert!((sched.factor(135) - 0.01).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StepDecay {
    milestones: Vec<usize>,
    gamma: f32,
}

impl StepDecay {
    /// Creates a schedule decaying by `gamma` at each epoch in `milestones`.
    pub fn new(milestones: Vec<usize>, gamma: f32) -> Self {
        StepDecay { milestones, gamma }
    }

    /// Decay factor at `epoch` (multiply the base learning rate by this).
    pub fn factor(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.gamma.powi(passed as i32)
    }
}

/// The "Noam" warmup schedule of *Attention Is All You Need*:
/// `d_model^-0.5 · min(step^-0.5, step · warmup^-1.5)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoamSchedule {
    d_model: usize,
    warmup: usize,
}

impl NoamSchedule {
    /// Creates a schedule for the given model width and warmup steps.
    ///
    /// # Panics
    ///
    /// Panics if `d_model == 0` or `warmup == 0`.
    pub fn new(d_model: usize, warmup: usize) -> Self {
        assert!(
            d_model > 0 && warmup > 0,
            "d_model and warmup must be positive"
        );
        NoamSchedule { d_model, warmup }
    }

    /// Learning rate at 1-based `step`.
    pub fn lr(&self, step: usize) -> f32 {
        let step = step.max(1) as f32;
        let w = self.warmup as f32;
        (self.d_model as f32).powf(-0.5) * step.powf(-0.5).min(step * w.powf(-1.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_decay_applies_milestones() {
        let s = StepDecay::new(vec![10, 20], 0.5);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(19), 0.5);
        assert_eq!(s.factor(20), 0.25);
        assert_eq!(s.factor(100), 0.25);
    }

    #[test]
    fn noam_warms_up_then_decays() {
        let s = NoamSchedule::new(64, 100);
        assert!(s.lr(1) < s.lr(50));
        assert!(s.lr(50) < s.lr(100));
        assert!(s.lr(100) > s.lr(400));
        // peak at warmup boundary
        let peak = s.lr(100);
        for step in [1usize, 10, 1000, 4000] {
            assert!(s.lr(step) <= peak + 1e-9);
        }
    }
}
