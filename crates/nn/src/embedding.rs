//! Token embedding.

use crate::ParamVisitor;
use qn_autograd::{Exec, Parameter, Var};
use qn_tensor::{Rng, Tensor};

/// Token-embedding table `[vocab, dim]` with scaled-normal initialization.
///
/// Not a [`Module`](crate::Module): lookup takes token ids, not a tape node.
///
/// # Example
///
/// ```
/// use qn_autograd::Graph;
/// use qn_nn::Embedding;
/// use qn_tensor::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let emb = Embedding::new(100, 16, &mut rng);
/// let mut g = Graph::new();
/// let v = emb.forward(&mut g, &[3, 14, 15]);
/// assert_eq!(g.value(v).shape().dims(), &[3, 16]);
/// ```
#[derive(Debug)]
pub struct Embedding {
    weight: Parameter,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates a table of `vocab × dim` embeddings, `N(0, 1/sqrt(dim))`.
    pub fn new(vocab: usize, dim: usize, rng: &mut Rng) -> Self {
        let std = 1.0 / (dim as f32).sqrt();
        let weight = Parameter::named(
            "embedding.weight",
            Tensor::from_fn(&[vocab, dim], |_| rng.normal() * std),
        );
        Embedding { weight, vocab, dim }
    }

    /// Looks up `ids`, returning a `[ids.len(), dim]` node.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn forward(&self, g: &mut dyn Exec, ids: &[usize]) -> Var {
        let w = g.param(&self.weight);
        g.embedding(w, ids)
    }

    /// The table parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.vocab * self.dim
    }

    /// Reports the table as `weight` — the same visitor walk
    /// [`Module::visit_params`](crate::Module::visit_params) uses, provided
    /// inherently because `Embedding` is not a `Module`.
    pub fn visit_params(&self, v: &mut dyn ParamVisitor) {
        v.param("weight", &self.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_autograd::Graph;

    #[test]
    fn lookup_shape_and_grad() {
        let mut rng = Rng::seed_from(1);
        let emb = Embedding::new(10, 4, &mut rng);
        let mut g = Graph::new();
        let v = emb.forward(&mut g, &[1, 1, 7]);
        assert_eq!(g.value(v).shape().dims(), &[3, 4]);
        let s = g.sum_all(v);
        g.backward(s);
        let grad = emb.weight().grad();
        // row 1 used twice
        let row1: f32 = grad.data()[4..8].iter().sum();
        assert!((row1 - 8.0).abs() < 1e-5);
        assert_eq!(emb.param_count(), 40);
    }
}
