//! Tape vs tape-free equivalence properties for every layer kind in qn-nn.
//!
//! The dual-mode [`Module`] contract: running a layer's forward pass on the
//! autograd tape ([`Graph`]) and on the eager arena ([`EagerExec`]) must
//! produce identical outputs (within 1e-6) for any valid input shape.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use qn_autograd::{EagerExec, Exec, Graph};
use qn_nn::{
    AvgPool2d, BatchNorm2d, Conv2d, Dropout, Embedding, Flatten, GlobalAvgPool, LayerNorm, Linear,
    MaxPool2d, Module, Relu, Sequential, Tanh,
};
use qn_tensor::{Conv2dSpec, Rng, Tensor};

/// Runs `layer` on both execution contexts and asserts equal outputs.
fn assert_equivalent(layer: &dyn Module, x: &Tensor) -> Result<(), TestCaseError> {
    let mut g = Graph::new();
    let xv = g.leaf(x.clone());
    let tv = layer.forward(&mut g, xv);
    let taped = g.value(tv);

    let mut e = EagerExec::new();
    let xe = e.leaf(x.clone());
    let ev = layer.forward(&mut e, xe);
    let eager = e.value(ev);

    prop_assert_eq!(taped.shape().dims(), eager.shape().dims());
    prop_assert!(
        taped.allclose(eager, 1e-6),
        "tape and eager outputs diverge beyond 1e-6"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Linear over 2-D and 3-D inputs, with and without bias.
    #[test]
    fn linear_matches(
        n in 1usize..10, m in 1usize..10, batch in 1usize..5,
        t in 1usize..4, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let layer = Linear::new(n, m, seed % 2 == 0, &mut rng);
        assert_equivalent(&layer, &Tensor::randn(&[batch, n], &mut rng))?;
        assert_equivalent(&layer, &Tensor::randn(&[batch, t, n], &mut rng))?;
    }

    /// Conv2d across kernel geometries (the eager path uses a fused kernel).
    #[test]
    fn conv2d_matches(
        c in 1usize..4, oc in 1usize..5, stride in 1usize..3,
        pad in 0usize..2, res in 5usize..9, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let spec = Conv2dSpec::new(3, stride, pad);
        let layer = Conv2d::new(c, oc, spec, seed % 2 == 0, &mut rng);
        assert_equivalent(&layer, &Tensor::randn(&[2, c, res, res], &mut rng))?;
    }

    /// Activations and shape layers.
    #[test]
    fn activations_and_shapes_match(
        c in 1usize..4, res in 4usize..9, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(&[2, c, res, res], &mut rng);
        assert_equivalent(&Relu, &x)?;
        assert_equivalent(&Tanh, &x)?;
        assert_equivalent(&Flatten, &x)?;
        assert_equivalent(&Dropout::new(0.4), &x)?; // identity in inference
    }

    /// Pooling layers across window geometries.
    #[test]
    fn pooling_matches(
        c in 1usize..4, res in 4usize..9, window in 2usize..4, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(&[2, c, res, res], &mut rng);
        assert_equivalent(&MaxPool2d::new(window, window), &x)?;
        assert_equivalent(&AvgPool2d::new(window, 1), &x)?;
        assert_equivalent(&GlobalAvgPool, &x)?;
    }

    /// Normalization layers (inference mode: batch norm on running stats).
    #[test]
    fn norms_match(c in 1usize..5, res in 3usize..7, d in 2usize..9, seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let bn = BatchNorm2d::new(c);
        // give the running stats a non-trivial value first
        let mut warm = Graph::training(seed);
        let wx = warm.leaf(Tensor::randn(&[2, c, res, res], &mut rng).add_scalar(1.0));
        let _ = bn.forward(&mut warm, wx);
        assert_equivalent(&bn, &Tensor::randn(&[2, c, res, res], &mut rng))?;
        let ln = LayerNorm::new(d);
        assert_equivalent(&ln, &Tensor::randn(&[3, d], &mut rng).scale(4.0))?;
    }

    /// A full Sequential stack, mixing every structural layer kind.
    #[test]
    fn sequential_stack_matches(seed in 0u64..1000, width in 2usize..6) {
        let mut rng = Rng::seed_from(seed);
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(1, width, Conv2dSpec::new(3, 1, 1), true, &mut rng)),
            Box::new(Relu),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Flatten),
            Box::new(Linear::new(width * 4 * 4, 10, true, &mut rng)),
            Box::new(Tanh),
        ]);
        assert_equivalent(&net, &Tensor::randn(&[2, 1, 8, 8], &mut rng))?;
    }

    /// Embedding lookup (not a Module: id-indexed forward).
    #[test]
    fn embedding_matches(
        vocab in 2usize..20, dim in 1usize..8, len in 1usize..6, seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let emb = Embedding::new(vocab, dim, &mut rng);
        let ids: Vec<usize> = (0..len).map(|i| (seed as usize + i) % vocab).collect();
        let mut g = Graph::new();
        let tv = emb.forward(&mut g, &ids);
        let mut e = EagerExec::new();
        let ev = emb.forward(&mut e, &ids);
        prop_assert!(g.value(tv).allclose(e.value(ev), 1e-6));
    }
}
