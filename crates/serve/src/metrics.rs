//! Serving metrics: lock-free counters + the `/metrics` JSON snapshot.
//!
//! Everything on the request path records through atomics (the latency
//! percentiles via [`LatencyHistogram`], counters via `AtomicU64`), so
//! metrics never serialize the hot path. The `/metrics` endpoint snapshots
//! the counters, asks the `ModelRegistry` for per-slot info (lock released
//! before the parameter walks — see the registry's concurrency contract)
//! and sums the batch workers' `BufferPool` stats.

use crate::histogram::LatencyHistogram;
use qn_tensor::PoolStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Connection- and request-level counters, server-wide.
#[derive(Default)]
pub struct ServerMetrics {
    /// Accepted connections, total.
    pub connections_opened: AtomicU64,
    /// Connections currently being served.
    pub connections_active: AtomicUsize,
    /// Connections shed with 503 because the connection cap was reached.
    pub connections_shed: AtomicU64,
    /// Requests fully parsed, total.
    pub requests_total: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (including 429 sheds).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (including 503 sheds).
    pub responses_5xx: AtomicU64,
    /// Admissions rejected with 429 (queue full).
    pub rejected_429: AtomicU64,
    /// Requests shed with 503 (shutdown or connection cap).
    pub rejected_503: AtomicU64,
    /// Malformed requests answered with 4xx by the parser.
    pub parse_errors: AtomicU64,
}

impl ServerMetrics {
    /// Bumps the right status-class counter for a response about to be
    /// written.
    pub fn count_response(&self, status: u16) {
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-route (per model slot) serving metrics.
pub struct RouteMetrics {
    /// Service latency (admission → response fulfilled), nanoseconds.
    pub latency: LatencyHistogram,
    /// `batch_sizes[b]` = number of flushed batches that held `b` samples.
    pub batch_sizes: Vec<AtomicU64>,
    /// Flushes fired by the size trigger.
    pub flush_size: AtomicU64,
    /// Flushes fired by the deadline trigger.
    pub flush_deadline: AtomicU64,
    /// Samples admitted into the queue.
    pub admitted: AtomicU64,
    /// Samples served successfully.
    pub served: AtomicU64,
    /// Samples that failed after admission (model retired, inference
    /// error, worker panic).
    pub failed: AtomicU64,
    /// High-water mark of the queue depth.
    pub depth_hwm: AtomicUsize,
}

impl RouteMetrics {
    /// Creates zeroed metrics for a route flushing at most `max_batch`.
    pub fn new(max_batch: usize) -> Self {
        RouteMetrics {
            latency: LatencyHistogram::new(),
            batch_sizes: (0..=max_batch).map(|_| AtomicU64::new(0)).collect(),
            flush_size: AtomicU64::new(0),
            flush_deadline: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            depth_hwm: AtomicUsize::new(0),
        }
    }

    /// Records one flushed batch.
    pub fn record_batch(&self, size: usize, by_size_trigger: bool) {
        if let Some(b) = self.batch_sizes.get(size) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        if by_size_trigger {
            &self.flush_size
        } else {
            &self.flush_deadline
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the depth high-water mark to at least `depth`.
    pub fn observe_depth(&self, depth: usize) {
        self.depth_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// The non-zero entries of the batch-size distribution as
    /// `(size, count)` pairs.
    pub fn batch_size_dist(&self) -> Vec<(usize, u64)> {
        self.batch_sizes
            .iter()
            .enumerate()
            .filter_map(|(size, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((size, n))
            })
            .collect()
    }
}

/// Renders a `PoolStats` as a JSON object.
pub fn pool_stats_json(s: &PoolStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"returns\":{},\"discarded\":{},\
         \"buffers_held\":{},\"bytes_held\":{}}}",
        s.hits, s.misses, s.returns, s.discarded, s.buffers_held, s.bytes_held
    )
}

/// Renders a latency histogram snapshot as a JSON object of percentiles
/// (nanoseconds).
pub fn latency_json(h: &crate::histogram::HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean_ns\":{:.0},\"p50_ns\":{},\"p90_ns\":{},\
         \"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
        h.count,
        h.mean(),
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(0.999),
        h.max()
    )
}

/// Renders a sparse batch-size distribution as a JSON object
/// (`{"4": 12, "32": 7}`).
pub fn batch_dist_json(dist: &[(usize, u64)]) -> String {
    let entries: Vec<String> = dist
        .iter()
        .map(|(size, count)| format!("\"{size}\":{count}"))
        .collect();
    format!("{{{}}}", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_classes_route_to_the_right_counter() {
        let m = ServerMetrics::default();
        m.count_response(200);
        m.count_response(204);
        m.count_response(404);
        m.count_response(429);
        m.count_response(500);
        m.count_response(503);
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_5xx.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn batch_distribution_is_sparse_and_capped() {
        let m = RouteMetrics::new(8);
        m.record_batch(1, false);
        m.record_batch(8, true);
        m.record_batch(8, true);
        m.record_batch(100, true); // over max_batch: counted in triggers only
        assert_eq!(m.batch_size_dist(), vec![(1, 1), (8, 2)]);
        assert_eq!(m.flush_size.load(Ordering::Relaxed), 3);
        assert_eq!(m.flush_deadline.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn depth_hwm_is_monotone() {
        let m = RouteMetrics::new(4);
        m.observe_depth(3);
        m.observe_depth(1);
        assert_eq!(m.depth_hwm.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn json_renderers_emit_valid_shapes() {
        let h = LatencyHistogram::new();
        h.record(1000);
        let j = latency_json(&h.snapshot());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"p99_ns\""));
        let d = batch_dist_json(&[(2, 5), (4, 1)]);
        assert_eq!(d, "{\"2\":5,\"4\":1}");
        assert_eq!(batch_dist_json(&[]), "{}");
    }
}
