//! `qn-serve`: a `std`-only HTTP/1.1 serving front-end for QuadraNet
//! models, with **dynamic batching** and **bounded-queue backpressure**.
//!
//! The paper's efficiency story (quadratic neurons matching larger
//! conventional networks at a fraction of the FLOPs and parameters) pays
//! off at inference time, and inference in production arrives as many
//! concurrent single-sample requests. This crate turns those into the
//! batched workloads the rest of the stack is optimised for:
//!
//! - [`http`] — a minimal, defensive HTTP/1.1 parser and writer (no
//!   tokio, no hyper; plain blocking sockets with read timeouts);
//! - [`queue`] — the dynamic-batching admission queue: bounded FIFO,
//!   size-or-deadline flush, non-blocking admission mapped to `429`/`503`
//!   + `Retry-After` when the server is saturated;
//! - [`server`] — accept loop, per-connection handler threads, per-route
//!   batch workers holding long-lived `InferenceSession`s (arena + buffer
//!   pool reuse from the zero-alloc steady state), registry-backed model
//!   hot-swap via `POST /admin/models/{name}/load`;
//! - [`histogram`] + [`metrics`] — lock-free latency percentiles,
//!   batch-size distribution, queue depth, and `BufferPool` stats behind
//!   `GET /metrics`.
//!
//! Batching is **transparent**: per-sample outputs are bit-identical to a
//! sequential `predict` no matter which batch a sample rode in or how many
//! worker threads are live (see the determinism notes in [`queue`]).
//!
//! ```no_run
//! use qn_serve::{BatchConfig, ServeConfig, ServerBuilder};
//! use std::sync::Arc;
//!
//! let mut rng = qn_tensor::Rng::seed_from(0);
//! let model: Arc<dyn qn_nn::Module + Send + Sync> =
//!     Arc::new(qn_nn::Linear::new(4, 2, true, &mut rng));
//! let server = ServerBuilder::new(ServeConfig::default())
//!     .route("tiny", &[4], model, BatchConfig::default())
//!     .start()
//!     .expect("bind");
//! println!("serving on http://{}", server.addr());
//! # server.shutdown();
//! ```
//!
//! The companion binary `qn-serve-bench` load-tests a server over loopback
//! at stepped offered rates and writes `BENCH_serving.json`.
//!
//! # Panics
//!
//! The crate's request path is panic-free by construction: untrusted input
//! flows through fallible parsing ([`http`] returns [`HttpError`]), fallible
//! admission ([`queue::BatchQueue::try_admit`] returns [`AdmitError`]), and
//! the validating `try_predict_batch` inference entry point — and a model
//! panic inside a batch worker is caught, fails only that batch with a
//! `500`, and rebuilds the worker's session. The `expect` calls that remain
//! fall into exactly two classes, both programming errors rather than
//! runtime conditions: **poisoned internal locks** (another thread panicked
//! while holding serve state, so continuing would serve from a torn
//! structure) and **spawn/join failures** at server startup/shutdown. Every
//! such site carries a named `expect` message so a crash identifies the
//! broken invariant.

pub mod histogram;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;

pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use http::{HttpError, Limits, Request, Response};
pub use queue::{AdmitError, BatchConfig, BatchError, BatchQueue, ResponseSlot};
pub use server::{ModelFactory, ServeConfig, Server, ServerBuilder};
