//! The serving front-end: TCP accept loop, connection handlers, batch
//! workers, routing, admin hot-swap, and `/metrics`.
//!
//! ## Architecture
//!
//! ```text
//!  accept loop ──► connection handler threads (1/conn, capped)
//!                        │  parse HTTP, decode sample
//!                        ▼
//!                  BatchQueue (bounded)  ◄── 429/503 shed at admission
//!                        │  size-or-deadline flush
//!                        ▼
//!                  batch workers (per route) ── InferenceSession
//!                        │                        └─ predict_batch shards
//!                        ▼                           across qn-parallel
//!                  ResponseSlot → handler writes the HTTP response
//! ```
//!
//! Each route's batch workers own long-lived [`InferenceSession`]s (arena
//! and buffer pool reused across batches — the PR 5 zero-alloc steady
//! state) and poll their slot's registry generation between batches, so an
//! admin checkpoint load + publish goes live without pausing serving.
//!
//! ## Routes
//!
//! | method | path | purpose |
//! |---|---|---|
//! | `POST` | `/v1/models/{name}/predict` | run one sample (binary f32 LE or text floats) |
//! | `GET`  | `/v1/models` | registry snapshot (name, generation, params) |
//! | `GET`  | `/metrics` | latency percentiles, queue depth, batch sizes, pool stats |
//! | `GET`  | `/healthz` | liveness + active SIMD level and kernel profile |
//! | `POST` | `/admin/models/{name}/load` | body = checkpoint path; mmap-load + hot-swap |

use crate::http::{HttpConn, Limits, Request, Response};
use crate::metrics::{batch_dist_json, latency_json, pool_stats_json, RouteMetrics, ServerMetrics};
use crate::queue::{AdmitError, BatchConfig, BatchError, BatchQueue};
use qn_models::{InferenceSession, ModelRegistry, Precision, MAX_BATCH};
use qn_nn::{checkpoint, LoadMode, Module};
use qn_tensor::{BufferPool, PoolStats, Tensor};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Builds a fresh model skeleton for a route — what the admin load route
/// pours a checkpoint into before publishing it over the running slot.
pub type ModelFactory = Box<dyn Fn() -> Arc<dyn Module> + Send + Sync>;

/// Server-wide knobs. `Default` is sized for loopback serving and tests.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (see [`Server::addr`]).
    pub addr: String,
    /// Concurrent connection cap; beyond it new connections are answered
    /// `503` and closed immediately.
    pub max_connections: usize,
    /// HTTP parser caps.
    pub limits: Limits,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// How long a handler waits for its batch result before answering
    /// `504` (a worker wedged on a huge batch should not pin connections
    /// forever).
    pub request_timeout: Duration,
    /// Value of the `Retry-After` header on 429/503 sheds, seconds.
    pub retry_after_secs: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
        }
    }
}

/// Granularity at which blocked socket reads re-check the shutdown flag
/// and idle deadline.
const READ_POLL: Duration = Duration::from_millis(50);

struct Route {
    name: String,
    sample_shape: Vec<usize>,
    sample_elems: usize,
    batch: BatchConfig,
    queue: BatchQueue,
    metrics: RouteMetrics,
    factory: Option<ModelFactory>,
    /// Requested numeric tier. `Int8` makes each batch worker serve the
    /// model's quantized twin (rebuilt on every hot-swap); when the model
    /// has no quantized form the worker falls back to f32 and
    /// `weight_dtype` in `/metrics` shows what is actually serving.
    precision: Precision,
    /// Weight dtype of the sessions the workers actually built (set on
    /// every session rebuild; `/metrics` reports it next to `precision`).
    served_dtype: Mutex<&'static str>,
    /// Worker `w`'s current session pool (replaced on hot-swap rebuild);
    /// `/metrics` sums their stats.
    pools: Mutex<Vec<Option<Arc<BufferPool>>>>,
}

impl Route {
    fn summed_pool_stats(&self) -> PoolStats {
        let pools = self.pools.lock().expect("route pools poisoned");
        let mut sum = PoolStats {
            hits: 0,
            misses: 0,
            returns: 0,
            discarded: 0,
            buffers_held: 0,
            bytes_held: 0,
        };
        for pool in pools.iter().flatten() {
            let s = pool.stats();
            sum.hits += s.hits;
            sum.misses += s.misses;
            sum.returns += s.returns;
            sum.discarded += s.discarded;
            sum.buffers_held += s.buffers_held;
            sum.bytes_held += s.bytes_held;
        }
        sum
    }
}

struct Shared {
    config: ServeConfig,
    registry: Arc<ModelRegistry>,
    routes: HashMap<String, Arc<Route>>,
    metrics: ServerMetrics,
    running: AtomicBool,
}

/// A pending route registration: name, per-sample shape, batch config,
/// optional checkpoint-load skeleton factory, and serving precision.
type RouteSpec = (
    String,
    Vec<usize>,
    BatchConfig,
    Option<ModelFactory>,
    Precision,
);

/// Builder for a [`Server`]: registry + routes, then [`ServerBuilder::start`].
pub struct ServerBuilder {
    config: ServeConfig,
    registry: Arc<ModelRegistry>,
    routes: Vec<RouteSpec>,
}

impl ServerBuilder {
    /// A builder with a fresh, empty [`ModelRegistry`].
    pub fn new(config: ServeConfig) -> Self {
        ServerBuilder {
            config,
            registry: Arc::new(ModelRegistry::new()),
            routes: Vec::new(),
        }
    }

    /// Uses an existing registry (models already published elsewhere).
    pub fn with_registry(mut self, registry: Arc<ModelRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Adds a route serving `model` under `name` for samples of
    /// `sample_shape` (no batch dimension). Publishes the model into the
    /// registry immediately.
    pub fn route(
        self,
        name: &str,
        sample_shape: &[usize],
        model: Arc<dyn Module>,
        batch: BatchConfig,
    ) -> Self {
        self.registry.publish(name, model);
        self.route_spec(name, sample_shape, batch, None, Precision::F32)
    }

    /// Like [`ServerBuilder::route`], but the batch workers serve the
    /// model's **int8 quantized twin** (see `Module::quantized` in
    /// `qn-nn`): each worker snapshots the published f32 weights into
    /// per-channel int8 at session build time and re-quantizes on every
    /// hot-swap. If the model has no quantized form the workers fall back
    /// to f32 — `/metrics` reports the served `weight_dtype` either way.
    pub fn route_quantized(
        self,
        name: &str,
        sample_shape: &[usize],
        model: Arc<dyn Module>,
        batch: BatchConfig,
    ) -> Self {
        self.registry.publish(name, model);
        self.route_spec(name, sample_shape, batch, None, Precision::Int8)
    }

    /// Like [`ServerBuilder::route`], additionally installing a skeleton
    /// `factory` so `POST /admin/models/{name}/load` can pour a checkpoint
    /// into a fresh skeleton and hot-swap it in.
    pub fn route_with_factory(
        self,
        name: &str,
        sample_shape: &[usize],
        model: Arc<dyn Module>,
        batch: BatchConfig,
        factory: ModelFactory,
    ) -> Self {
        self.registry.publish(name, model);
        self.route_spec(name, sample_shape, batch, Some(factory), Precision::F32)
    }

    /// Adds a route without publishing (the registry must already hold —
    /// or later gain — a model under `name`; requests meanwhile answer
    /// 503).
    pub fn route_spec(
        mut self,
        name: &str,
        sample_shape: &[usize],
        batch: BatchConfig,
        factory: Option<ModelFactory>,
        precision: Precision,
    ) -> Self {
        self.routes.push((
            name.to_string(),
            sample_shape.to_vec(),
            batch,
            factory,
            precision,
        ));
        self
    }

    /// Binds, spawns the batch workers and the accept loop, and returns
    /// the running server.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for a malformed route (empty name, `/` in the name,
    /// zero-sized sample shape, zero workers) and any bind error.
    pub fn start(self) -> io::Result<Server> {
        let mut routes = HashMap::new();
        let mut workers: Vec<(Arc<Route>, usize)> = Vec::new();
        for (name, sample_shape, mut batch, factory, precision) in self.routes {
            if name.is_empty() || name.contains('/') {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("invalid route name {name:?}"),
                ));
            }
            let sample_elems: usize = sample_shape.iter().product();
            if sample_shape.is_empty() || sample_elems == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("route {name:?} has an empty sample shape"),
                ));
            }
            if batch.workers == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("route {name:?} needs at least one worker"),
                ));
            }
            // the admission-path guard: a flush can never exceed what the
            // validating predict path accepts
            batch.max_batch = batch.max_batch.clamp(1, MAX_BATCH);
            let worker_count = batch.workers;
            let route = Arc::new(Route {
                name: name.clone(),
                sample_elems,
                sample_shape,
                queue: BatchQueue::new(&batch),
                metrics: RouteMetrics::new(batch.max_batch),
                batch,
                factory,
                precision,
                served_dtype: Mutex::new(precision.as_str()),
                pools: Mutex::new(vec![None; worker_count]),
            });
            for w in 0..worker_count {
                workers.push((Arc::clone(&route), w));
            }
            if routes.insert(name.clone(), route).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate route {name:?}"),
                ));
            }
        }

        let listener = TcpListener::bind(&self.config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config: self.config,
            registry: self.registry,
            routes,
            metrics: ServerMetrics::default(),
            running: AtomicBool::new(true),
        });

        let worker_handles: Vec<JoinHandle<()>> = workers
            .into_iter()
            .map(|(route, w)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qn-serve-{}-{w}", route.name))
                    .spawn(move || batch_worker(&shared, &route, w))
                    .expect("spawn batch worker")
            })
            .collect();

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("qn-serve-accept".to_string())
                .spawn(move || accept_loop(&shared, listener, &conns))
                .expect("spawn accept loop")
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers: worker_handles,
            conns,
        })
    }
}

/// A running serving front-end. Dropping (or calling
/// [`Server::shutdown`]) stops accepting, sheds queued work with 503,
/// and joins every thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry backing the routes — publish to it directly to
    /// hot-swap models from the owning process.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// The `/metrics` payload, for in-process consumers.
    pub fn metrics_json(&self) -> String {
        metrics_json(&self.shared)
    }

    /// A route's flushed-batch-size distribution as `(size, count)` pairs
    /// (the load generator reports this next to the latency percentiles).
    pub fn route_batch_dist(&self, name: &str) -> Option<Vec<(usize, u64)>> {
        self.shared
            .routes
            .get(name)
            .map(|r| r.metrics.batch_size_dist())
    }

    /// Graceful shutdown: stop admissions (queued samples answer 503),
    /// join workers, unblock the accept loop, join connection handlers.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if !self.shared.running.swap(false, Ordering::SeqCst) {
            return;
        }
        for route in self.shared.routes.values() {
            route.queue.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // unblock the blocking accept with a dummy connection
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut conns = self.conns.lock().expect("conn list poisoned");
            conns.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: TcpListener,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if !shared.running.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared
            .metrics
            .connections_opened
            .fetch_add(1, Ordering::Relaxed);
        let active = shared.metrics.connections_active.load(Ordering::SeqCst);
        if active >= shared.config.max_connections {
            shared
                .metrics
                .connections_shed
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.rejected_503.fetch_add(1, Ordering::Relaxed);
            shared.metrics.count_response(503);
            let resp = Response::error(503, "connection limit reached")
                .with_header("Retry-After", shared.config.retry_after_secs.to_string());
            let _ = resp.write_to(&mut stream, false);
            continue;
        }
        shared
            .metrics
            .connections_active
            .fetch_add(1, Ordering::SeqCst);
        let handler = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name("qn-serve-conn".to_string())
                .spawn(move || {
                    handle_connection(&shared, stream);
                    shared
                        .metrics
                        .connections_active
                        .fetch_sub(1, Ordering::SeqCst);
                })
        };
        let mut guard = conns.lock().expect("conn list poisoned");
        if let Ok(h) = handler {
            guard.push(h);
        } else {
            shared
                .metrics
                .connections_active
                .fetch_sub(1, Ordering::SeqCst);
        }
        // reap finished handlers so the list doesn't grow unboundedly
        let mut i = 0;
        while i < guard.len() {
            if guard[i].is_finished() {
                let h = guard.swap_remove(i);
                let _ = h.join();
            } else {
                i += 1;
            }
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut conn = HttpConn::new(stream);
    loop {
        let idle_deadline = Instant::now() + shared.config.idle_timeout;
        let result = conn.read_request(&shared.config.limits, || {
            shared.running.load(Ordering::SeqCst) && Instant::now() < idle_deadline
        });
        match result {
            Ok(None) => break, // peer closed cleanly
            Ok(Some(req)) => {
                shared
                    .metrics
                    .requests_total
                    .fetch_add(1, Ordering::Relaxed);
                let keep = req.keep_alive && shared.running.load(Ordering::SeqCst);
                let resp = dispatch(shared, &req);
                shared.metrics.count_response(resp.status);
                if resp.write_to(conn.stream(), keep).is_err() || !keep {
                    break;
                }
            }
            Err(e) => {
                if let Some((status, msg)) = e.status() {
                    shared.metrics.parse_errors.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.count_response(status);
                    let _ = Response::error(status, msg).write_to(conn.stream(), false);
                }
                break;
            }
        }
    }
}

fn dispatch(shared: &Arc<Shared>, req: &Request) -> Response {
    let method = req.method.as_str();
    let path = req.path.as_str();
    match (method, path) {
        // Liveness plus the resolved kernel dispatch state, so an operator
        // can confirm what `QN_SIMD` / `QN_KERNEL_PROFILE` actually took
        // effect on this host (unrecognized values fall back silently).
        ("GET", "/healthz") => Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"simd\":\"{}\",\"kernel_profile\":\"{}\"}}\n",
                qn_simd::SimdLevel::active().name(),
                qn_simd::KernelProfile::active().name(),
            ),
        ),
        ("GET", "/metrics") => Response::json(200, metrics_json(shared)).chunked(),
        ("GET", "/v1/models") => Response::json(200, models_json(shared)),
        _ => {
            if let Some(rest) = path.strip_prefix("/v1/models/") {
                if let Some((name, "predict")) = rest.split_once('/') {
                    return if method == "POST" {
                        predict(shared, name, req)
                    } else {
                        Response::error(405, "predict requires POST")
                    };
                }
            }
            if let Some(rest) = path.strip_prefix("/admin/models/") {
                if let Some((name, "load")) = rest.split_once('/') {
                    return if method == "POST" {
                        admin_load(shared, name, req)
                    } else {
                        Response::error(405, "load requires POST")
                    };
                }
            }
            Response::error(404, "no such route")
        }
    }
}

/// Decodes a request body into sample values: raw little-endian `f32` for
/// `application/octet-stream`, otherwise ASCII floats split on
/// whitespace/commas. `None` = malformed.
fn decode_sample(req: &Request, expect_elems: usize) -> Result<Vec<f32>, &'static str> {
    let binary = req
        .header("content-type")
        .map(|v| v.starts_with("application/octet-stream"))
        .unwrap_or(false);
    if binary {
        if req.body.len() != expect_elems * 4 {
            return Err("body length must be 4 * sample element count");
        }
        Ok(req
            .body
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    } else {
        let text = std::str::from_utf8(&req.body).map_err(|_| "body is not valid UTF-8")?;
        let mut vals = Vec::with_capacity(expect_elems);
        for tok in text.split(|c: char| c.is_whitespace() || c == ',') {
            if tok.is_empty() {
                continue;
            }
            vals.push(tok.parse::<f32>().map_err(|_| "unparseable float")?);
            if vals.len() > expect_elems {
                return Err("too many values for the sample shape");
            }
        }
        if vals.len() != expect_elems {
            return Err("wrong value count for the sample shape");
        }
        Ok(vals)
    }
}

/// Encodes an output tensor in the caller's format.
fn encode_output(req: &Request, y: &Tensor) -> Response {
    let binary = req
        .header("accept")
        .or_else(|| req.header("content-type"))
        .map(|v| v.starts_with("application/octet-stream"))
        .unwrap_or(false);
    if binary {
        let mut bytes = Vec::with_capacity(y.numel() * 4);
        for v in y.data() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        Response::octet(200, bytes)
    } else {
        let vals: Vec<String> = y.data().iter().map(|v| format!("{v}")).collect();
        Response::text(200, format!("{}\n", vals.join(",")))
    }
}

fn predict(shared: &Arc<Shared>, name: &str, req: &Request) -> Response {
    let Some(route) = shared.routes.get(name) else {
        return Response::error(404, "unknown model");
    };
    let values = match decode_sample(req, route.sample_elems) {
        Ok(v) => v,
        Err(msg) => return Response::error(400, msg),
    };
    let sample = match Tensor::from_vec(values, &route.sample_shape) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "sample does not fit the route shape"),
    };
    let slot = match route.queue.try_admit(sample) {
        Ok(slot) => slot,
        Err(AdmitError::Full) => {
            shared.metrics.rejected_429.fetch_add(1, Ordering::Relaxed);
            return Response::error(429, "admission queue is full")
                .with_header("Retry-After", shared.config.retry_after_secs.to_string());
        }
        Err(AdmitError::Closed) => {
            shared.metrics.rejected_503.fetch_add(1, Ordering::Relaxed);
            return Response::error(503, "server is shutting down")
                .with_header("Retry-After", shared.config.retry_after_secs.to_string());
        }
    };
    route.metrics.admitted.fetch_add(1, Ordering::Relaxed);
    route.metrics.observe_depth(route.queue.depth());
    match slot.wait(shared.config.request_timeout) {
        None => Response::error(504, "batch worker did not answer in time"),
        Some(Ok(y)) => encode_output(req, &y),
        Some(Err(BatchError::ModelUnavailable)) => Response::error(503, "model was retired"),
        Some(Err(BatchError::ShuttingDown)) => Response::error(503, "server is shutting down")
            .with_header("Retry-After", shared.config.retry_after_secs.to_string()),
        Some(Err(BatchError::Inference(msg))) => Response::error(500, &msg),
    }
}

fn admin_load(shared: &Arc<Shared>, name: &str, req: &Request) -> Response {
    let Some(route) = shared.routes.get(name) else {
        return Response::error(404, "unknown model");
    };
    let Some(factory) = route.factory.as_ref() else {
        return Response::error(409, "route has no model factory; publish via the registry");
    };
    let path = match std::str::from_utf8(&req.body) {
        Ok(s) if !s.trim().is_empty() => s.trim().to_string(),
        _ => return Response::error(400, "body must be a checkpoint path"),
    };
    let model = factory();
    if let Err(e) = checkpoint::load_module(&*model, Path::new(&path), LoadMode::Mapped) {
        return Response::error(400, &format!("checkpoint load failed: {e}"));
    }
    let generation = shared.registry.publish(&route.name, model);
    Response::json(
        200,
        format!(
            "{{\"model\":\"{}\",\"generation\":{generation}}}",
            route.name
        ),
    )
}

fn models_json(shared: &Arc<Shared>) -> String {
    let entries: Vec<String> = shared
        .registry
        .snapshot()
        .into_iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"generation\":{},\"params\":{},\"param_elems\":{},\
                 \"mapped_params\":{},\"live_handles\":{},\"weight_dtype\":\"{}\",\
                 \"routed\":{}}}",
                s.name,
                s.generation,
                s.params,
                s.param_elems,
                s.mapped_params,
                s.live_handles,
                s.weight_dtype,
                shared.routes.contains_key(&s.name),
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

fn metrics_json(shared: &Arc<Shared>) -> String {
    let m = &shared.metrics;
    let server = format!(
        "{{\"connections_opened\":{},\"connections_active\":{},\"connections_shed\":{},\
         \"requests_total\":{},\"responses_2xx\":{},\"responses_4xx\":{},\
         \"responses_5xx\":{},\"rejected_429\":{},\"rejected_503\":{},\"parse_errors\":{}}}",
        m.connections_opened.load(Ordering::Relaxed),
        m.connections_active.load(Ordering::Relaxed),
        m.connections_shed.load(Ordering::Relaxed),
        m.requests_total.load(Ordering::Relaxed),
        m.responses_2xx.load(Ordering::Relaxed),
        m.responses_4xx.load(Ordering::Relaxed),
        m.responses_5xx.load(Ordering::Relaxed),
        m.rejected_429.load(Ordering::Relaxed),
        m.rejected_503.load(Ordering::Relaxed),
        m.parse_errors.load(Ordering::Relaxed),
    );
    let mut names: Vec<&String> = shared.routes.keys().collect();
    names.sort();
    let routes: Vec<String> = names
        .into_iter()
        .map(|name| {
            let r = &shared.routes[name];
            let rm = &r.metrics;
            let model = shared
                .registry
                .info(name)
                .map(|i| {
                    format!(
                        "{{\"generation\":{},\"params\":{},\"param_elems\":{},\
                         \"mapped_params\":{},\"live_handles\":{}}}",
                        i.generation, i.params, i.param_elems, i.mapped_params, i.live_handles
                    )
                })
                .unwrap_or_else(|| "null".to_string());
            format!(
                "\"{name}\":{{\"queue\":{{\"depth\":{},\"capacity\":{},\"depth_hwm\":{}}},\
                 \"batch\":{{\"max_batch\":{},\"max_delay_us\":{},\"flush_size\":{},\
                 \"flush_deadline\":{},\"size_dist\":{}}},\
                 \"latency\":{},\"admitted\":{},\"served\":{},\"failed\":{},\
                 \"precision\":\"{}\",\"weight_dtype\":\"{}\",\
                 \"pool\":{},\"model\":{model}}}",
                r.queue.depth(),
                r.queue.capacity(),
                rm.depth_hwm.load(Ordering::Relaxed),
                r.batch.max_batch,
                r.batch.max_delay.as_micros(),
                rm.flush_size.load(Ordering::Relaxed),
                rm.flush_deadline.load(Ordering::Relaxed),
                batch_dist_json(&rm.batch_size_dist()),
                latency_json(&rm.latency.snapshot()),
                rm.admitted.load(Ordering::Relaxed),
                rm.served.load(Ordering::Relaxed),
                rm.failed.load(Ordering::Relaxed),
                r.precision,
                *r.served_dtype.lock().expect("dtype lock poisoned"),
                pool_stats_json(&r.summed_pool_stats()),
            )
        })
        .collect();
    let runtime = format!(
        "{{\"simd\":\"{}\",\"kernel_profile\":\"{}\"}}",
        qn_simd::SimdLevel::active().name(),
        qn_simd::KernelProfile::active().name(),
    );
    format!(
        "{{\"server\":{server},\"runtime\":{runtime},\"routes\":{{{}}}}}\n",
        routes.join(",")
    )
}

/// One batch worker: drains the route's queue batch by batch, keeps a
/// long-lived [`InferenceSession`] (rebuilt only on registry hot-swap or
/// after a panic), and fulfills every admitted slot exactly once.
fn batch_worker(shared: &Arc<Shared>, route: &Arc<Route>, w: usize) {
    let mut generation: u64 = 0;
    let mut session: Option<InferenceSession<'static>> = None;
    while let Some((batch, by_size)) = route.queue.next_batch() {
        if batch.is_empty() {
            continue;
        }
        route.metrics.record_batch(batch.len(), by_size);

        // pick up hot-swapped weights between batches (generation poll —
        // no registry lock held while serving)
        match shared.registry.generation(&route.name) {
            Some(g) => {
                if session.is_none() || g != generation {
                    match shared.registry.get(&route.name) {
                        Some(model) => {
                            // int8 routes snapshot the published weights
                            // into the quantized twin; models without one
                            // fall back to f32 (visible in /metrics)
                            let s = match route.precision {
                                Precision::Int8 => InferenceSession::quantized(model.as_ref())
                                    .unwrap_or_else(|| InferenceSession::owned(model)),
                                Precision::F32 => InferenceSession::owned(model),
                            };
                            *route.served_dtype.lock().expect("dtype lock poisoned") =
                                s.weight_dtype();
                            route.pools.lock().expect("route pools poisoned")[w] =
                                Some(Arc::clone(s.pool()));
                            session = Some(s);
                            generation = g;
                        }
                        None => {
                            fail_batch(route, batch, BatchError::ModelUnavailable);
                            continue;
                        }
                    }
                }
            }
            None => {
                session = None;
                fail_batch(route, batch, BatchError::ModelUnavailable);
                continue;
            }
        }
        let s = session.as_mut().expect("session built above");

        // stack the samples into one pooled [B, sample...] tensor
        let b = batch.len();
        let mut dims = Vec::with_capacity(1 + route.sample_shape.len());
        dims.push(b);
        dims.extend_from_slice(&route.sample_shape);
        let mut input = Tensor::from_pooled_uninit(s.pool(), &dims);
        {
            let data = input.data_mut();
            for (i, p) in batch.iter().enumerate() {
                data[i * route.sample_elems..(i + 1) * route.sample_elems]
                    .copy_from_slice(p.sample.data());
            }
        }

        // a panicking model must not kill the worker: catch, fail the
        // batch, and rebuild the session (its arena may be mid-pass)
        let outcome = catch_unwind(AssertUnwindSafe(|| s.try_predict_batch(&input)));
        match outcome {
            Ok(Ok(y)) => {
                let out_dims = y.shape().dims().to_vec();
                let inner: usize = out_dims[1..].iter().product();
                let data = y.data();
                for (i, p) in batch.iter().enumerate() {
                    let row = data[i * inner..(i + 1) * inner].to_vec();
                    let t = Tensor::from_vec(row, &out_dims[1..])
                        .expect("row length matches output dims");
                    route
                        .metrics
                        .latency
                        .record(p.enqueued.elapsed().as_nanos() as u64);
                    route.metrics.served.fetch_add(1, Ordering::Relaxed);
                    p.slot.fulfill(Ok(t));
                }
                let pool = Arc::clone(s.pool());
                s.recycle(y);
                input.into_pool(&pool);
            }
            Ok(Err(e)) => {
                input.into_pool(s.pool());
                fail_batch(route, batch, BatchError::Inference(e.to_string()));
            }
            Err(_) => {
                // arena state unknown after a panic: drop the session
                session = None;
                fail_batch(
                    route,
                    batch,
                    BatchError::Inference("inference worker panicked".to_string()),
                );
            }
        }
    }
}

fn fail_batch(route: &Route, batch: Vec<crate::queue::Pending>, err: BatchError) {
    route
        .metrics
        .failed
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    for p in batch {
        p.slot.fulfill(Err(err.clone()));
    }
}
