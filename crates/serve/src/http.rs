//! Minimal `std`-only HTTP/1.1: request parsing and response writing.
//!
//! This is not a general web server — it is the smallest correct subset the
//! serving front-end needs, written defensively:
//!
//! - requests: request line + headers + body via `Content-Length` **or**
//!   `Transfer-Encoding: chunked`, with hard caps on header bytes, header
//!   count, body bytes and chunk sizes. **Malformed input must never
//!   panic** — every parse failure is a typed [`HttpError`], and the fuzz
//!   suite in `tests/loopback.rs` feeds the parser garbage to prove it;
//! - responses: fixed `Content-Length` or chunked transfer encoding, with
//!   explicit `Connection: keep-alive`/`close`;
//! - keep-alive: HTTP/1.1 defaults to persistent connections, HTTP/1.0 to
//!   close, both overridable by the `Connection` header.
//!
//! Reads go through [`HttpConn`], which owns the socket plus a carry-over
//! buffer (bytes read past the end of one message start the next one — that
//! is what makes keep-alive and pipelined requests work on plain blocking
//! reads with timeouts).

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard caps the parser enforces before trusting any length field.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Max bytes of request line + headers (431/400 beyond this).
    pub max_head_bytes: usize,
    /// Max body bytes, whether from `Content-Length` or chunked (413).
    pub max_body_bytes: usize,
    /// Max header count.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
            max_headers: 100,
        }
    }
}

/// Why a request could not be read. `status()` maps each case to the HTTP
/// response the connection should send before closing (None: just close).
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request → 400.
    BadRequest(&'static str),
    /// Head or body exceeds the configured caps → 431/413.
    TooLarge(&'static str, u16),
    /// The peer closed mid-request (no response possible).
    Truncated,
    /// Gave up waiting for (more of) a request — idle keep-alive timeout
    /// or server shutdown. No response owed.
    TimedOut,
    /// Transport error.
    Io(io::Error),
}

impl HttpError {
    /// The status code to answer with, if any.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequest(m) => Some((400, m)),
            HttpError::TooLarge(m, code) => Some((*code, m)),
            _ => None,
        }
    }
}

/// One parsed request. Header names are lower-cased at parse time.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (query string split off).
    pub path: String,
    /// Raw query string, without the `?` (empty if none).
    pub query: String,
    /// Lower-cased name → value pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Decoded body (chunked bodies are de-chunked).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after responding.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header (name must be lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A connection: socket + carry-over buffer. The socket should have a short
/// `read_timeout` set; [`HttpConn::read_request`] retries timed-out reads
/// while `keep_waiting` returns `true`, which is how the server loop
/// implements both the idle keep-alive deadline and prompt shutdown.
pub struct HttpConn {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl HttpConn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> Self {
        HttpConn {
            stream,
            pending: Vec::with_capacity(1024),
        }
    }

    /// The underlying stream (for writing responses).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Reads more bytes into `pending`. `Ok(0)` means the peer closed.
    fn fill(&mut self, keep_waiting: &mut dyn FnMut() -> bool) -> Result<usize, HttpError> {
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    self.pending.extend_from_slice(&buf[..n]);
                    return Ok(n);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if keep_waiting() {
                        continue;
                    }
                    return Err(HttpError::TimedOut);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }

    /// Reads and parses one request. `Ok(None)` is a clean close between
    /// requests (keep-alive peer went away). `keep_waiting` is consulted
    /// whenever a socket read times out: return `false` to give up (idle
    /// deadline passed, or the server is shutting down).
    pub fn read_request(
        &mut self,
        limits: &Limits,
        mut keep_waiting: impl FnMut() -> bool,
    ) -> Result<Option<Request>, HttpError> {
        // --- head: read until CRLFCRLF (tolerating bare LFLF) ---
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.pending) {
                break pos;
            }
            if self.pending.len() > limits.max_head_bytes {
                return Err(HttpError::TooLarge("request head too large", 431));
            }
            if self.fill(&mut keep_waiting)? == 0 {
                if self.pending.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Truncated);
            }
        };
        if head_end.0 > limits.max_head_bytes {
            return Err(HttpError::TooLarge("request head too large", 431));
        }
        let head: Vec<u8> = self.pending.drain(..head_end.0 + head_end.1).collect();
        let head_str = std::str::from_utf8(&head[..head_end.0])
            .map_err(|_| HttpError::BadRequest("head is not valid UTF-8"))?;

        let mut lines = head_str
            .split('\n')
            .map(|l| l.strip_suffix('\r').unwrap_or(l));
        let request_line = lines.next().ok_or(HttpError::BadRequest("empty head"))?;
        let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
        let method = parts
            .next()
            .ok_or(HttpError::BadRequest("missing method"))?;
        let target = parts
            .next()
            .ok_or(HttpError::BadRequest("missing request target"))?;
        let version = parts
            .next()
            .ok_or(HttpError::BadRequest("missing HTTP version"))?;
        if parts.next().is_some() {
            return Err(HttpError::BadRequest("malformed request line"));
        }
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            _ => return Err(HttpError::BadRequest("unsupported HTTP version")),
        };
        if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(HttpError::BadRequest("malformed method"));
        }

        let mut headers: Vec<(String, String)> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue; // the blank terminator line
            }
            if headers.len() >= limits.max_headers {
                return Err(HttpError::TooLarge("too many headers", 431));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(HttpError::BadRequest("malformed header line"))?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::BadRequest("malformed header name"));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        let find = |n: &str| {
            headers
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| v.as_str())
        };

        // --- body ---
        let chunked = find("transfer-encoding")
            .map(|v| v.eq_ignore_ascii_case("chunked"))
            .unwrap_or(false);
        let body = if chunked {
            self.read_chunked_body(limits, &mut keep_waiting)?
        } else if let Some(cl) = find("content-length") {
            let len: usize = cl
                .trim()
                .parse()
                .map_err(|_| HttpError::BadRequest("unparseable content-length"))?;
            if len > limits.max_body_bytes {
                return Err(HttpError::TooLarge("body too large", 413));
            }
            while self.pending.len() < len {
                if self.fill(&mut keep_waiting)? == 0 {
                    return Err(HttpError::Truncated);
                }
            }
            self.pending.drain(..len).collect()
        } else {
            Vec::new()
        };

        let keep_alive = match find("connection").map(|v| v.to_ascii_lowercase()) {
            Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
            Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
            _ => http11,
        };

        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };

        Ok(Some(Request {
            method: method.to_string(),
            path,
            query,
            headers,
            body,
            keep_alive,
        }))
    }

    /// De-chunks a `Transfer-Encoding: chunked` body. Trailers are read and
    /// discarded.
    fn read_chunked_body(
        &mut self,
        limits: &Limits,
        keep_waiting: &mut dyn FnMut() -> bool,
    ) -> Result<Vec<u8>, HttpError> {
        let mut body = Vec::new();
        loop {
            // chunk-size line
            let line = self.read_line(limits, keep_waiting)?;
            let size_str = line.split(';').next().unwrap_or("").trim();
            if size_str.is_empty() || size_str.len() > 8 {
                return Err(HttpError::BadRequest("malformed chunk size"));
            }
            let size = usize::from_str_radix(size_str, 16)
                .map_err(|_| HttpError::BadRequest("malformed chunk size"))?;
            if body.len().saturating_add(size) > limits.max_body_bytes {
                return Err(HttpError::TooLarge("chunked body too large", 413));
            }
            if size == 0 {
                // trailers until blank line
                loop {
                    let t = self.read_line(limits, keep_waiting)?;
                    if t.is_empty() {
                        return Ok(body);
                    }
                }
            }
            while self.pending.len() < size + 2 {
                if self.fill(keep_waiting)? == 0 {
                    return Err(HttpError::Truncated);
                }
            }
            body.extend(self.pending.drain(..size));
            let crlf: Vec<u8> = self.pending.drain(..2).collect();
            if crlf != b"\r\n" {
                return Err(HttpError::BadRequest("chunk missing CRLF"));
            }
        }
    }

    /// Reads one CRLF-terminated line (returned without the terminator).
    fn read_line(
        &mut self,
        limits: &Limits,
        keep_waiting: &mut dyn FnMut() -> bool,
    ) -> Result<String, HttpError> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..pos + 1).collect();
                line.pop(); // \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map_err(|_| HttpError::BadRequest("line is not valid UTF-8"));
            }
            if self.pending.len() > limits.max_head_bytes {
                return Err(HttpError::TooLarge("line too long", 400));
            }
            if self.fill(keep_waiting)? == 0 {
                return Err(HttpError::Truncated);
            }
        }
    }
}

/// Finds the end of the head: returns `(head_len, terminator_len)` where
/// the head spans `[..head_len]` and the terminator (`\r\n\r\n` or `\n\n`)
/// spans `[head_len..head_len + terminator_len]`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buf.windows(2).position(|w| w == b"\n\n");
    match (crlf, lf) {
        (Some(c), Some(l)) if l + 1 < c => Some((l + 1, 1)),
        (Some(c), _) => Some((c + 2, 2)),
        (None, Some(l)) => Some((l + 1, 1)),
        (None, None) => None,
    }
}

/// An outgoing response. Build with the constructors, add headers, then
/// [`Response::write_to`] — which picks `Content-Length` framing unless
/// chunked was requested.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    extra: Vec<(String, String)>,
    chunked: bool,
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

impl Response {
    /// A binary body (`application/octet-stream`).
    pub fn octet(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type: "application/octet-stream",
            body,
            extra: Vec::new(),
            chunked: false,
        }
    }

    /// A plain-text body.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            extra: Vec::new(),
            chunked: false,
        }
    }

    /// A JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            extra: Vec::new(),
            chunked: false,
        }
    }

    /// A plain-text error body with the reason phrase prefixed.
    pub fn error(status: u16, detail: &str) -> Self {
        Response::text(status, format!("{} {}: {detail}\n", status, reason(status)))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.extra.push((name.to_string(), value.into()));
        self
    }

    /// Switches the response to chunked transfer encoding (the body is
    /// written in chunks; used by `/metrics`, whose payload is generated).
    pub fn chunked(mut self) -> Self {
        self.chunked = true;
        self
    }

    /// Serializes the response. `keep_alive` controls the `Connection`
    /// header — the caller owns the decision (request wish ∧ server state).
    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nServer: qn-serve\r\nContent-Type: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (n, v) in &self.extra {
            head.push_str(n);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        let mut out = Vec::with_capacity(head.len() + self.body.len() + 64);
        if self.chunked {
            head.push_str("Transfer-Encoding: chunked\r\n\r\n");
            out.extend_from_slice(head.as_bytes());
            for chunk in self.body.chunks(8192) {
                out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
                out.extend_from_slice(chunk);
                out.extend_from_slice(b"\r\n");
            }
            out.extend_from_slice(b"0\r\n\r\n");
        } else {
            head.push_str(&format!("Content-Length: {}\r\n\r\n", self.body.len()));
            out.extend_from_slice(head.as_bytes());
            out.extend_from_slice(&self.body);
        }
        stream.write_all(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_head_end_variants() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some((16, 2)));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nrest"), Some((15, 1)));
        assert_eq!(find_head_end(b"partial"), None);
        // a bare-LF terminator before a CRLF one wins
        let mixed = b"a\n\nb\r\n\r\n";
        assert_eq!(find_head_end(mixed), Some((2, 1)));
    }

    #[test]
    fn reason_phrases_cover_served_codes() {
        for code in [200, 400, 404, 405, 409, 413, 429, 431, 500, 503, 504] {
            assert_ne!(reason(code), "Unknown", "{code}");
        }
        assert_eq!(reason(418), "Unknown");
    }
}
