//! `qn-serve-bench`: loopback load generator for the serving front-end.
//!
//! Starts an in-process `qn-serve` server fronting a small
//! quadratic-neuron ResNet, then drives it over real loopback TCP at a
//! ladder of **offered** request rates (open-loop pacing: requests are
//! scheduled by a global clock, so a slow server accumulates queueing
//! delay instead of silently throttling the generator — that is what makes
//! the reported latency honest and exercises the 429 backpressure path at
//! the top of the ladder).
//!
//! Output: `BENCH_serving.json` at the repo root with per-step p50/p90/
//! p99/p999 latency, achieved throughput, shed counts, and the server's
//! flushed-batch-size histogram. `QN_SMOKE=1` shrinks the ladder for CI.

use qn_core::NeuronSpec;
use qn_models::{NeuronPlacement, ResNet, ResNetConfig};
use qn_nn::Module;
use qn_serve::{BatchConfig, LatencyHistogram, ServeConfig, ServerBuilder};
use qn_tensor::Rng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SAMPLE_SHAPE: [usize; 3] = [3, 32, 32];
const ROUTE: &str = "resnet8-eq2";

struct StepResult {
    offered_qps: u64,
    duration: Duration,
    sent: u64,
    ok: u64,
    rejected: u64,
    errors: u64,
    elapsed: Duration,
    latency: qn_serve::HistogramSnapshot,
}

/// Per-client worker: pulls globally-paced tickets, fires requests over a
/// persistent keep-alive connection, records client-side latency.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    addr: SocketAddr,
    body: &[u8],
    ticket: &AtomicU64,
    start: Instant,
    interval: Duration,
    total: u64,
    hist: &LatencyHistogram,
    ok: &AtomicU64,
    rejected: &AtomicU64,
    errors: &AtomicU64,
) {
    let mut stream: Option<TcpStream> = None;
    let head = format!(
        "POST /v1/models/{ROUTE}/predict HTTP/1.1\r\nHost: bench\r\n\
         Content-Type: application/octet-stream\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut request = head.into_bytes();
    request.extend_from_slice(body);
    loop {
        let i = ticket.fetch_add(1, Ordering::Relaxed);
        if i >= total {
            return;
        }
        // open-loop pacing: never send early, send immediately if behind
        let target = start + mul_interval(interval, i);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let t0 = Instant::now();
        let status = request_once(&mut stream, addr, &request);
        match status {
            Some(200) => {
                hist.record(t0.elapsed().as_nanos() as u64);
                ok.fetch_add(1, Ordering::Relaxed);
            }
            Some(429) | Some(503) => {
                rejected.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// `interval * n` without u128 arithmetic (both operands are small: the
/// interval is at most tens of milliseconds, `n` at most a few thousand).
fn mul_interval(interval: Duration, n: u64) -> Duration {
    Duration::from_nanos((interval.as_nanos() as u64).saturating_mul(n))
}

/// Sends one request on the persistent connection (reconnecting on any
/// transport error) and returns the response status. Drains the body per
/// `Content-Length` so the connection is reusable.
fn request_once(stream: &mut Option<TcpStream>, addr: SocketAddr, request: &[u8]) -> Option<u16> {
    for attempt in 0..2 {
        if stream.is_none() {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(Duration::from_secs(60)));
                    *stream = Some(s);
                }
                Err(_) => return None,
            }
        }
        let s = stream.as_mut().expect("connected above");
        if s.write_all(request).is_err() {
            *stream = None;
            if attempt == 0 {
                continue; // stale keep-alive connection: reconnect once
            }
            return None;
        }
        match read_response(s) {
            Some(status) => return Some(status),
            None => {
                *stream = None;
                if attempt == 0 {
                    continue;
                }
                return None;
            }
        }
    }
    None
}

/// Minimal client-side response reader: status line + headers, then drains
/// exactly `Content-Length` body bytes (the server never sends chunked on
/// the predict route).
fn read_response(s: &mut TcpStream) -> Option<u16> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        match s.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let mut have = buf.len() - head_end;
    while have < content_length {
        match s.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => have += n,
        }
    }
    Some(status)
}

fn run_step(
    addr: SocketAddr,
    body: &[u8],
    offered_qps: u64,
    duration: Duration,
    clients: usize,
) -> StepResult {
    let total = (offered_qps as f64 * duration.as_secs_f64()).round() as u64;
    let interval = Duration::from_nanos(1_000_000_000 / offered_qps.max(1));
    let hist = LatencyHistogram::new();
    let ticket = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                client_loop(
                    addr, body, &ticket, start, interval, total, &hist, &ok, &rejected, &errors,
                );
            });
        }
    });
    StepResult {
        offered_qps,
        duration,
        sent: total,
        ok: ok.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: hist.snapshot(),
    }
}

fn step_json(r: &StepResult) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    let achieved = r.ok as f64 / r.elapsed.as_secs_f64().max(1e-9);
    format!(
        "{{\"offered_qps\":{},\"duration_s\":{:.3},\"sent\":{},\"ok\":{},\
         \"rejected\":{},\"errors\":{},\"achieved_qps\":{:.2},\
         \"p50_ms\":{:.4},\"p90_ms\":{:.4},\"p99_ms\":{:.4},\
         \"p999_ms\":{:.4},\"max_ms\":{:.4},\"mean_ms\":{:.4}}}",
        r.offered_qps,
        r.duration.as_secs_f64(),
        r.sent,
        r.ok,
        r.rejected,
        r.errors,
        achieved,
        ms(r.latency.quantile(0.50)),
        ms(r.latency.quantile(0.90)),
        ms(r.latency.quantile(0.99)),
        ms(r.latency.quantile(0.999)),
        ms(r.latency.max()),
        r.latency.mean() / 1e6,
    )
}

fn main() {
    let smoke = std::env::var("QN_SMOKE").is_ok();
    let (steps, step_duration, clients): (&[u64], Duration, usize) = if smoke {
        (&[50, 200], Duration::from_millis(600), 4)
    } else {
        (&[25, 50, 100, 200, 400, 800], Duration::from_secs(4), 8)
    };

    eprintln!("qn-serve-bench: building {ROUTE} and starting the server");
    let model: Arc<dyn Module> = Arc::new(ResNet::cifar(ResNetConfig {
        depth: 8,
        base_width: 4,
        num_classes: 10,
        neuron: NeuronSpec::EfficientQuadratic { rank: 2 },
        placement: NeuronPlacement::All,
        seed: 7,
    }));
    let server = ServerBuilder::new(ServeConfig {
        max_connections: clients + 8,
        ..ServeConfig::default()
    })
    .route(
        ROUTE,
        &SAMPLE_SHAPE,
        model,
        BatchConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 128,
            workers: 1,
        },
    )
    .start()
    .expect("bind loopback server");
    let addr = server.addr();

    // one fixed sample, binary f32 little-endian
    let elems: usize = SAMPLE_SHAPE.iter().product();
    let mut rng = Rng::seed_from(42);
    let mut body = Vec::with_capacity(elems * 4);
    for _ in 0..elems {
        body.extend_from_slice(&rng.uniform(-1.0, 1.0).to_le_bytes());
    }

    // warmup: populate arenas/pools so step 1 doesn't measure cold allocs
    let warm = run_step(addr, &body, 20, Duration::from_millis(300), 2);
    eprintln!("warmup: {} ok / {} sent", warm.ok, warm.sent);

    let mut results = Vec::new();
    for &qps in steps {
        let r = run_step(addr, &body, qps, step_duration, clients);
        eprintln!(
            "offered {:>5} qps: achieved {:>8.1} qps, ok {} rejected {} errors {}, p50 {:.2} ms p99 {:.2} ms",
            qps,
            r.ok as f64 / r.elapsed.as_secs_f64(),
            r.ok,
            r.rejected,
            r.errors,
            r.latency.quantile(0.5) as f64 / 1e6,
            r.latency.quantile(0.99) as f64 / 1e6,
        );
        results.push(r);
    }

    let dist = server.route_batch_dist(ROUTE).unwrap_or_default();
    let dist_json: Vec<String> = dist
        .iter()
        .map(|(size, count)| format!("\"{size}\":{count}"))
        .collect();
    let steps_json: Vec<String> = results.iter().map(step_json).collect();
    let total_errors: u64 = results.iter().map(|r| r.errors).sum();
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"model\": \"{ROUTE}\",\n  \"sample_shape\": [3,32,32],\n  \
         \"smoke\": {smoke},\n  \"clients\": {clients},\n  \"max_batch\": 32,\n  \"max_delay_ms\": 2,\n  \
         \"steps\": [\n    {}\n  ],\n  \"batch_size_dist\": {{{}}},\n  \"server_metrics\": {}\n}}\n",
        steps_json.join(",\n    "),
        dist_json.join(","),
        server.metrics_json().trim_end(),
    );
    server.shutdown();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    eprintln!("wrote {path}");
    assert_eq!(total_errors, 0, "load generator saw transport/5xx errors");
}
