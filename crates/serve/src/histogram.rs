//! A lock-free log-linear latency histogram.
//!
//! Recording is one `fetch_add` on an atomic bucket counter (plus two for
//! the count/sum totals) — no locks, no allocation — so request handlers
//! and batch workers can record on the hot path without contending. Buckets
//! are log-linear in the HdrHistogram style: values below 16 ns get exact
//! buckets, everything above lands in one of 16 linear sub-buckets per
//! power-of-two octave, which bounds the relative quantization error of a
//! reported percentile at 1/16 ≈ 6% — plenty for p50/p99/p999 latency
//! reporting.
//!
//! Reads take a [`HistogramSnapshot`] (a plain copy of the counters) and
//! compute percentiles on that consistent-enough view; a snapshot taken
//! while writers are recording may be mid-update between buckets, which for
//! monotonic counters only ever under-reports the newest events.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave: 4 bits of mantissa.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS; // 16
/// Bucket count: 16 exact low buckets + 16 subs for each octave 4..=63.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Maps a value to its bucket index. Total order preserving across bucket
/// boundaries; exact for `v < 16`.
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (top - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    ((top - SUB_BITS + 1) as usize) * SUBS + sub
}

/// Lowest value mapping to `index` (inverse of [`bucket_index`]).
fn bucket_floor(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let octave = (index / SUBS - 1) as u32 + SUB_BITS;
    let sub = (index % SUBS) as u64;
    (1u64 << octave) | (sub << (octave - SUB_BITS))
}

/// Representative value reported for a bucket: the midpoint of its range,
/// so quantization error is symmetric.
fn bucket_mid(index: usize) -> u64 {
    let lo = bucket_floor(index);
    let hi = if index + 1 < BUCKETS {
        bucket_floor(index + 1)
    } else {
        lo
    };
    lo + (hi - lo) / 2
}

/// Lock-free histogram of `u64` values (the serving stack records
/// **nanoseconds**). See the module docs for the bucket layout.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram (~7.7 KiB of counters).
    pub fn new() -> Self {
        // `[AtomicU64; N]` has no Default for large N; build via Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = v
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vec has BUCKETS elements"));
        LatencyHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free: three relaxed `fetch_add`s.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Copies the counters out for percentile computation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`]'s counters.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (for merging).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Accumulates another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The value at quantile `q` in `[0, 1]` (0.5 = median): the
    /// representative (mid) value of the first bucket whose cumulative
    /// count reaches `ceil(q * count)`. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_mid(i);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// Mean of the recorded values (0 for an empty snapshot).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded bucket's representative value (0 if empty).
    pub fn max(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => bucket_mid(i),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        let mut values: Vec<u64> = (0..30)
            .flat_map(|shift| [0u64, 1, 7].map(|off| (1u64 << shift) + off))
            .collect();
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i >= prev, "index must be monotone in value ({v})");
            prev = i;
            assert!(bucket_floor(i) <= v, "floor({i}) <= {v}");
            if i + 1 < BUCKETS {
                assert!(bucket_floor(i + 1) > v, "next floor > {v}");
            }
        }
        // exact low range
        for v in 0..16u64 {
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
        // extremes don't panic or overflow
        assert!(bucket_index(u64::MAX) < BUCKETS);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = LatencyHistogram::new();
        // 1000 values: 1..=1000 µs in ns
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        // within the 6.25% quantization error
        let rel = |x: u64, want: f64| (x as f64 - want).abs() / want;
        assert!(rel(p50, 500_000.0) < 0.07, "p50 {p50}");
        assert!(rel(p99, 990_000.0) < 0.07, "p99 {p99}");
        assert!(s.quantile(0.0) <= s.quantile(1.0));
        assert!(s.max() >= p99);
        assert!((s.mean() - 500_500_000.0 / 1000.0).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(100);
        b.record(1_000_000);
        let mut m = HistogramSnapshot::empty();
        m.merge(&a.snapshot());
        m.merge(&b.snapshot());
        assert_eq!(m.count, 2);
        assert!(m.quantile(0.01) < m.quantile(0.99));
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        assert_eq!(h.snapshot().count, 4000);
    }
}
