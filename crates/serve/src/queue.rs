//! The dynamic-batching admission queue.
//!
//! Concurrent single-sample requests are admitted into a **bounded** FIFO
//! and coalesced by batch workers into one `predict_batch` call, flushed on
//! whichever fires first:
//!
//! - **size trigger** — the queue holds `max_batch` samples, or
//! - **deadline trigger** — the *oldest* queued sample has waited
//!   `max_delay` (so the worst-case added latency is bounded regardless of
//!   traffic).
//!
//! Admission never blocks: when the queue is at capacity, [`BatchQueue::
//! try_admit`] fails immediately and the HTTP layer converts that into
//! `429 Too Many Requests` + `Retry-After` — bounded queues are the
//! backpressure mechanism, load is shed at the edge instead of growing an
//! unbounded backlog. A closed queue (server shutting down) sheds with
//! `503`.
//!
//! ## Determinism
//!
//! Batch composition depends on arrival timing, but every per-sample
//! output is **bit-identical regardless of which batch the sample rode
//! in**: inference is per-sample independent (batch norm uses running
//! statistics; each GEMM output row accumulates sequentially), so
//! `predict_batch` of any stacking equals per-sample `predict` bit-for-bit
//! at any thread count. `tests/batch_equivalence.rs` proves this through
//! the whole HTTP + queue + worker stack.

use qn_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Knobs of one route's batching queue.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Flush as soon as this many samples are queued. Clamped to
    /// [`qn_models::MAX_BATCH`] at server start (the admission-path guard).
    pub max_batch: usize,
    /// Flush when the oldest queued sample has waited this long.
    pub max_delay: Duration,
    /// Bounded-queue capacity: admissions beyond this are rejected (429).
    pub queue_capacity: usize,
    /// Batch worker threads for this route. Each owns a long-lived
    /// `InferenceSession` (whose `predict_batch` shards across the
    /// `qn-parallel` pool) and polls the registry generation for hot-swaps.
    pub workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 256,
            workers: 1,
        }
    }
}

/// The eventual outcome of an admitted request.
pub type BatchResult = Result<Tensor, BatchError>;

/// Why a batch worker failed a request after admission.
#[derive(Clone, Debug)]
pub enum BatchError {
    /// The route's model disappeared from the registry (retired mid-flight).
    ModelUnavailable,
    /// The server is shutting down; the request was shed.
    ShuttingDown,
    /// Inference itself failed (shape contract violation, worker panic).
    Inference(String),
}

/// One-shot rendezvous between the admitting connection handler and the
/// batch worker that eventually serves the sample.
#[derive(Debug)]
pub struct ResponseSlot {
    cell: Mutex<Option<BatchResult>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            cell: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Worker side: publishes the outcome and wakes the waiter. A second
    /// fulfill is ignored (first outcome wins).
    pub fn fulfill(&self, result: BatchResult) {
        let mut cell = self.cell.lock().expect("slot lock poisoned");
        if cell.is_none() {
            *cell = Some(result);
            self.ready.notify_all();
        }
    }

    /// Connection side: blocks until the outcome lands or `timeout`
    /// passes (`None` = the worker never answered in time).
    pub fn wait(&self, timeout: Duration) -> Option<BatchResult> {
        let deadline = Instant::now() + timeout;
        let mut cell = self.cell.lock().expect("slot lock poisoned");
        loop {
            if let Some(result) = cell.take() {
                return Some(result);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(cell, deadline - now)
                .expect("slot lock poisoned");
            cell = guard;
        }
    }
}

/// One admitted sample waiting to ride a batch.
pub struct Pending {
    /// The sample tensor (per-sample shape, no batch dimension).
    pub sample: Tensor,
    /// Admission timestamp — service latency is measured from here.
    pub enqueued: Instant,
    /// Where the outcome goes.
    pub slot: Arc<ResponseSlot>,
}

struct Inner {
    deque: VecDeque<Pending>,
    open: bool,
}

/// Admission failure modes (mapped to HTTP at the edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// Queue at capacity → shed with 429 + `Retry-After`.
    Full,
    /// Queue closed (shutdown) → shed with 503 + `Retry-After`.
    Closed,
}

/// The bounded admission queue of one route. Shared by the connection
/// handlers (producers) and the route's batch workers (consumers).
pub struct BatchQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    capacity: usize,
    max_batch: usize,
    max_delay: Duration,
}

impl BatchQueue {
    /// Creates an open queue with `cfg`'s capacity and flush triggers.
    pub fn new(cfg: &BatchConfig) -> Self {
        BatchQueue {
            inner: Mutex::new(Inner {
                deque: VecDeque::with_capacity(cfg.queue_capacity.min(4096)),
                open: true,
            }),
            not_empty: Condvar::new(),
            capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            max_delay: cfg.max_delay,
        }
    }

    /// Current depth (pending samples). A gauge for `/metrics`.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").deque.len()
    }

    /// The bounded capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking admission: enqueues the sample and hands back the slot
    /// to wait on, or fails immediately when the queue is full or closed.
    pub fn try_admit(&self, sample: Tensor) -> Result<Arc<ResponseSlot>, AdmitError> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if !inner.open {
            return Err(AdmitError::Closed);
        }
        if inner.deque.len() >= self.capacity {
            return Err(AdmitError::Full);
        }
        let slot = ResponseSlot::new();
        inner.deque.push_back(Pending {
            sample,
            enqueued: Instant::now(),
            slot: Arc::clone(&slot),
        });
        drop(inner);
        self.not_empty.notify_one();
        Ok(slot)
    }

    /// Worker side: blocks until a batch is ready per the size-or-deadline
    /// trigger, then drains up to `max_batch` samples. Returns `None` once
    /// the queue is closed **and** drained — the worker's exit signal.
    ///
    /// Also reports which trigger fired: `true` = size, `false` = deadline
    /// (or close-flush).
    pub fn next_batch(&self) -> Option<(Vec<Pending>, bool)> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        // wait for the first sample
        while inner.deque.is_empty() {
            if !inner.open {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock poisoned");
        }
        // wait for the size trigger until the oldest sample's deadline
        let deadline = inner.deque[0].enqueued + self.max_delay;
        let mut size_triggered = inner.deque.len() >= self.max_batch;
        while !size_triggered && inner.open {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("queue lock poisoned");
            inner = guard;
            size_triggered = inner.deque.len() >= self.max_batch;
        }
        let take = inner.deque.len().min(self.max_batch);
        let batch: Vec<Pending> = inner.deque.drain(..take).collect();
        Some((batch, size_triggered))
    }

    /// Closes the queue: admissions start failing with
    /// [`AdmitError::Closed`], workers drain what is left and exit, and
    /// every sample still pending is shed with
    /// [`BatchError::ShuttingDown`].
    pub fn close(&self) {
        let shed: Vec<Pending> = {
            let mut inner = self.inner.lock().expect("queue lock poisoned");
            inner.open = false;
            inner.deque.drain(..).collect()
        };
        self.not_empty.notify_all();
        for p in shed {
            p.slot.fulfill(Err(BatchError::ShuttingDown));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn sample(v: f32) -> Tensor {
        Tensor::from_vec(vec![v], &[1]).expect("sample")
    }

    #[test]
    fn size_trigger_flushes_full_batch() {
        let queue = BatchQueue::new(&BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_secs(60), // deadline can't fire
            queue_capacity: 16,
            workers: 1,
        });
        for i in 0..4 {
            queue.try_admit(sample(i as f32)).expect("admit");
        }
        let (batch, by_size) = queue.next_batch().expect("open");
        assert_eq!(batch.len(), 4);
        assert!(by_size);
        assert_eq!(queue.depth(), 0);
        // FIFO order
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(p.sample.data()[0], i as f32);
        }
    }

    #[test]
    fn deadline_trigger_flushes_partial_batch() {
        let queue = BatchQueue::new(&BatchConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(5),
            queue_capacity: 16,
            workers: 1,
        });
        queue.try_admit(sample(1.0)).expect("admit");
        let start = Instant::now();
        let (batch, by_size) = queue.next_batch().expect("open");
        assert_eq!(batch.len(), 1);
        assert!(!by_size);
        assert!(
            start.elapsed() >= Duration::from_millis(4),
            "flush must wait out the deadline"
        );
    }

    #[test]
    fn admission_rejects_when_full_then_recovers() {
        let queue = BatchQueue::new(&BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(5), // deadline flush: the drain below must not block
            queue_capacity: 2,
            workers: 1,
        });
        queue.try_admit(sample(1.0)).expect("admit 1");
        queue.try_admit(sample(2.0)).expect("admit 2");
        assert_eq!(queue.try_admit(sample(3.0)).unwrap_err(), AdmitError::Full);
        let _ = queue.next_batch().expect("open");
        queue
            .try_admit(sample(4.0))
            .expect("admits again after drain");
    }

    #[test]
    fn close_sheds_pending_and_stops_workers() {
        let queue = Arc::new(BatchQueue::new(&BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_secs(60),
            queue_capacity: 8,
            workers: 1,
        }));
        let slot = queue.try_admit(sample(1.0)).expect("admit");
        let q = Arc::clone(&queue);
        let worker = thread::spawn(move || {
            // first call drains nothing here: close() already shed the
            // sample, so the worker just observes the closed queue.
            while q.next_batch().is_some() {}
        });
        queue.close();
        let shed = slot.wait(Duration::from_secs(5)).expect("shed promptly");
        assert!(matches!(shed, Err(BatchError::ShuttingDown)));
        assert_eq!(
            queue.try_admit(sample(2.0)).unwrap_err(),
            AdmitError::Closed
        );
        worker.join().expect("worker exits");
    }

    #[test]
    fn slot_wait_times_out_without_fulfill() {
        let queue = BatchQueue::new(&BatchConfig::default());
        let slot = queue.try_admit(sample(1.0)).expect("admit");
        assert!(slot.wait(Duration::from_millis(10)).is_none());
        // late fulfill is still safe (and the first one wins)
        slot.fulfill(Ok(sample(9.0)));
        slot.fulfill(Err(BatchError::ModelUnavailable));
        match slot.wait(Duration::from_millis(10)) {
            Some(Ok(t)) => assert_eq!(t.data()[0], 9.0),
            other => panic!("expected first fulfill to win, got {other:?}"),
        }
    }
}
