//! Loopback integration tests: real TCP round-trips against a running
//! server — keep-alive reuse, every endpoint, malformed-request fuzz (the
//! parser must never panic a worker), backpressure under a full queue, and
//! checkpoint hot-swap through the admin route.

mod common;

use common::*;
use qn_models::InferenceSession;
use qn_serve::BatchConfig;
use qn_tensor::{Rng, Tensor};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn sample(seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from(seed);
    (0..IN_DIM).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

#[test]
fn predict_roundtrips_match_direct_inference_over_keepalive() {
    let model = tiny_model(1);
    let server = start(Arc::clone(&model), BatchConfig::default());
    let addr = server.addr();
    let vals = sample(11);
    let expect = InferenceSession::owned(model)
        .predict(&Tensor::from_vec(vals.clone(), &[IN_DIM]).expect("sample"));

    // three requests over ONE connection: keep-alive must hold
    let mut conn = connect(addr);
    let health = roundtrip(&mut conn, "GET", "/healthz", &[], b"");
    assert_eq!(health.status, 200);
    assert_eq!(health.header("connection"), Some("keep-alive"));
    // the body reports the resolved kernel dispatch state
    let hbody = String::from_utf8_lossy(&health.body).into_owned();
    assert!(hbody.contains("\"status\":\"ok\""), "{hbody}");
    let simd = format!("\"simd\":\"{}\"", qn_simd::SimdLevel::active().name());
    let prof = format!(
        "\"kernel_profile\":\"{}\"",
        qn_simd::KernelProfile::active().name()
    );
    assert!(hbody.contains(&simd), "{hbody}");
    assert!(hbody.contains(&prof), "{hbody}");

    let binary = roundtrip(
        &mut conn,
        "POST",
        "/v1/models/m/predict",
        &[("Content-Type", "application/octet-stream")],
        &to_bytes(&vals),
    );
    assert_eq!(
        binary.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&binary.body)
    );
    let got = from_bytes(&binary.body);
    assert_eq!(got.len(), OUT_DIM);
    for (g, e) in got.iter().zip(expect.data()) {
        assert_eq!(g.to_bits(), e.to_bits(), "binary path must be bit-exact");
    }

    let text_body = vals
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",");
    let text = roundtrip(
        &mut conn,
        "POST",
        "/v1/models/m/predict",
        &[
            ("Content-Type", "text/plain"),
            ("Accept", "application/octet-stream"),
        ],
        text_body.as_bytes(),
    );
    assert_eq!(text.status, 200);
    // text parse of "{v}" display output round-trips f32 exactly
    assert_eq!(from_bytes(&text.body), got);

    server.shutdown();
}

#[test]
fn routing_errors_are_4xx_not_panics() {
    let server = start(tiny_model(2), BatchConfig::default());
    let addr = server.addr();

    assert_eq!(request(addr, "GET", "/nope", &[], b"").status, 404);
    assert_eq!(
        request(
            addr,
            "POST",
            "/v1/models/ghost/predict",
            &[],
            &to_bytes(&sample(1))
        )
        .status,
        404
    );
    assert_eq!(
        request(addr, "GET", "/v1/models/m/predict", &[], b"").status,
        405
    );
    // wrong element count
    let short = request(
        addr,
        "POST",
        "/v1/models/m/predict",
        &[("Content-Type", "application/octet-stream")],
        &to_bytes(&[1.0, 2.0]),
    );
    assert_eq!(short.status, 400);
    // unparseable text
    let garbage = request(
        addr,
        "POST",
        "/v1/models/m/predict",
        &[],
        b"not,numbers,at,all",
    );
    assert_eq!(garbage.status, 400);
    // admin load without a factory on the route
    let admin = request(addr, "POST", "/admin/models/m/load", &[], b"/tmp/x.qnckpt");
    assert_eq!(admin.status, 409);

    // the server still serves after all of the above
    let ok = request(
        addr,
        "POST",
        "/v1/models/m/predict",
        &[("Content-Type", "application/octet-stream")],
        &to_bytes(&sample(2)),
    );
    assert_eq!(ok.status, 200);
    server.shutdown();
}

#[test]
fn malformed_request_fuzz_never_kills_the_server() {
    let server = start(tiny_model(3), BatchConfig::default());
    let addr = server.addr();

    let fixed: &[&[u8]] = &[
        b"",
        b"\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET /healthz\r\n\r\n",
        b"GET /healthz HTTP/2.0\r\n\r\n",
        b"get /healthz HTTP/1.1\r\n\r\n",
        b"GET /healthz HTTP/1.1 extra\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nno-colon-header\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\n: empty-name\r\n\r\n",
        b"POST /v1/models/m/predict HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        b"POST /v1/models/m/predict HTTP/1.1\r\nContent-Length: 99999999999999\r\n\r\n",
        b"POST /v1/models/m/predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
        b"POST /v1/models/m/predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfffffffff\r\n",
        b"POST /v1/models/m/predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nabcdXX",
        b"\xff\xfe\x00\x01 binary trash \x80\x81\r\n\r\n",
    ];
    for (i, case) in fixed.iter().enumerate() {
        let mut s = connect(addr);
        let _ = s.write_all(case);
        // response or clean close are both acceptable; a hang or panic is not
        let resp = read_response(&mut s);
        if let Some(r) = resp {
            assert!(r.status >= 400, "case {i}: got {}", r.status);
        }
    }

    // oversized head (> 16 KiB of headers) must be shed with 431
    let mut big = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        big.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(64)).as_bytes());
    }
    big.extend_from_slice(b"\r\n");
    let mut s = connect(addr);
    let _ = s.write_all(&big);
    if let Some(r) = read_response(&mut s) {
        assert!(r.status == 431 || r.status == 400, "got {}", r.status);
    }

    // deterministic pseudo-random garbage
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..50 {
        let len = (state % 300) as usize + 1;
        let mut case = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            case.push((state >> 32) as u8);
        }
        let mut s = connect(addr);
        let _ = s.write_all(&case);
        let _ = s.write_all(b"\r\n\r\n");
        let _ = read_response(&mut s);
    }

    // after the entire barrage: still healthy, still predicting
    assert_eq!(request(addr, "GET", "/healthz", &[], b"").status, 200);
    let ok = request(
        addr,
        "POST",
        "/v1/models/m/predict",
        &[("Content-Type", "application/octet-stream")],
        &to_bytes(&sample(3)),
    );
    assert_eq!(ok.status, 200);
    server.shutdown();
}

#[test]
fn full_queue_sheds_429_with_retry_after_then_recovers() {
    // tiny queue + long deadline: admitted samples sit in the queue, so a
    // third concurrent request deterministically finds it full
    let server = start(
        tiny_model(4),
        BatchConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(400),
            queue_capacity: 2,
            workers: 1,
        },
    );
    let addr = server.addr();
    let body = to_bytes(&sample(4));

    let waiters: Vec<_> = (0..2)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                request(
                    addr,
                    "POST",
                    "/v1/models/m/predict",
                    &[("Content-Type", "application/octet-stream")],
                    &body,
                )
                .status
            })
        })
        .collect();
    // let both admissions land in the queue (deadline is 400ms away)
    std::thread::sleep(Duration::from_millis(150));

    let shed = request(
        addr,
        "POST",
        "/v1/models/m/predict",
        &[("Content-Type", "application/octet-stream")],
        &body,
    );
    assert_eq!(shed.status, 429, "third request must be shed");
    assert_eq!(shed.header("retry-after"), Some("1"));

    for w in waiters {
        assert_eq!(
            w.join().expect("waiter"),
            200,
            "queued requests still served"
        );
    }
    // queue drained: admissions work again
    let again = request(
        addr,
        "POST",
        "/v1/models/m/predict",
        &[("Content-Type", "application/octet-stream")],
        &body,
    );
    assert_eq!(again.status, 200);

    let metrics = request(addr, "GET", "/metrics", &[], b"");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).expect("metrics is utf-8");
    assert!(text.contains("\"rejected_429\":1"), "{text}");
    server.shutdown();
}

#[test]
fn models_and_metrics_endpoints_expose_registry_and_histograms() {
    let server = start(tiny_model(5), BatchConfig::default());
    let addr = server.addr();
    let ok = request(
        addr,
        "POST",
        "/v1/models/m/predict",
        &[("Content-Type", "application/octet-stream")],
        &to_bytes(&sample(5)),
    );
    assert_eq!(ok.status, 200);

    let models = request(addr, "GET", "/v1/models", &[], b"");
    assert_eq!(models.status, 200);
    let list = String::from_utf8(models.body).expect("utf-8");
    assert!(list.contains("\"name\":\"m\""), "{list}");
    assert!(list.contains("\"generation\":1"), "{list}");
    assert!(list.contains("\"routed\":true"), "{list}");

    let metrics = request(addr, "GET", "/metrics", &[], b"");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).expect("utf-8");
    for key in [
        "\"requests_total\"",
        "\"p99_ns\"",
        "\"size_dist\"",
        "\"depth_hwm\"",
        "\"pool\"",
        "\"hits\"",
        "\"flush_deadline\"",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
    server.shutdown();
}

#[test]
fn admin_load_hot_swaps_checkpoint_without_restart() {
    let dir = std::env::temp_dir().join(format!("qn_serve_admin_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join("swap.qnckpt");

    // serve seed-6 weights; checkpoint holds seed-7 weights
    let replacement = tiny_model(7);
    qn_nn::save_module(replacement.as_ref(), &[("test", "hot-swap")], &ckpt)
        .expect("save checkpoint");

    let server = qn_serve::ServerBuilder::new(qn_serve::ServeConfig::default())
        .route_with_factory(
            "m",
            &[IN_DIM],
            tiny_model(6),
            BatchConfig::default(),
            Box::new(|| tiny_model(0)), // skeleton; weights come from the checkpoint
        )
        .start()
        .expect("bind");
    let addr = server.addr();

    let vals = sample(6);
    let before = request(
        addr,
        "POST",
        "/v1/models/m/predict",
        &[("Content-Type", "application/octet-stream")],
        &to_bytes(&vals),
    );
    assert_eq!(before.status, 200);

    let load = request(
        addr,
        "POST",
        "/admin/models/m/load",
        &[],
        ckpt.to_str().expect("utf-8 path").as_bytes(),
    );
    assert_eq!(
        load.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&load.body)
    );
    let body = String::from_utf8(load.body).expect("utf-8");
    assert!(body.contains("\"generation\":2"), "{body}");

    // a bogus path must fail cleanly and NOT disturb the published model
    let bad = request(
        addr,
        "POST",
        "/admin/models/m/load",
        &[],
        b"/definitely/not/here",
    );
    assert_eq!(bad.status, 400);

    let after = request(
        addr,
        "POST",
        "/v1/models/m/predict",
        &[("Content-Type", "application/octet-stream")],
        &to_bytes(&vals),
    );
    assert_eq!(after.status, 200);
    let expect = InferenceSession::owned(replacement)
        .predict(&Tensor::from_vec(vals, &[IN_DIM]).expect("sample"));
    let got = from_bytes(&after.body);
    for (g, e) in got.iter().zip(expect.data()) {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "swapped weights must serve bit-exactly"
        );
    }
    assert_ne!(from_bytes(&before.body), got, "weights actually changed");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quantized_route_serves_int8_twin_with_bounded_drift() {
    // two routes over the SAME weights: one f32, one int8
    let server = qn_serve::ServerBuilder::new(qn_serve::ServeConfig::default())
        .route("f32", &[IN_DIM], tiny_model(8), BatchConfig::default())
        .route_quantized("int8", &[IN_DIM], tiny_model(8), BatchConfig::default())
        .start()
        .expect("bind");
    let addr = server.addr();

    let vals = sample(8);
    let exact = request(
        addr,
        "POST",
        "/v1/models/f32/predict",
        &[("Content-Type", "application/octet-stream")],
        &to_bytes(&vals),
    );
    assert_eq!(exact.status, 200);
    let quant = request(
        addr,
        "POST",
        "/v1/models/int8/predict",
        &[("Content-Type", "application/octet-stream")],
        &to_bytes(&vals),
    );
    assert_eq!(quant.status, 200);

    let exact = from_bytes(&exact.body);
    let quant = from_bytes(&quant.body);
    assert_eq!(exact.len(), quant.len());
    let drift = exact
        .iter()
        .zip(&quant)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        drift < 0.1,
        "int8 route drift {drift}: {exact:?} vs {quant:?}"
    );
    assert!(
        exact
            .iter()
            .zip(&quant)
            .any(|(a, b)| a.to_bits() != b.to_bits()),
        "int8 route must actually quantize, not serve f32"
    );

    // both surfaces report the served dtype
    let metrics = request(addr, "GET", "/metrics", &[], b"");
    let text = String::from_utf8(metrics.body).expect("utf-8");
    assert!(
        text.contains("\"precision\":\"int8\",\"weight_dtype\":\"int8\""),
        "{text}"
    );
    assert!(
        text.contains("\"precision\":\"f32\",\"weight_dtype\":\"f32\""),
        "{text}"
    );
    let models = request(addr, "GET", "/v1/models", &[], b"");
    let list = String::from_utf8(models.body).expect("utf-8");
    // the registry holds the f32 master for both slots; workers quantize
    assert!(list.contains("\"weight_dtype\":\"f32\""), "{list}");

    server.shutdown();
}

#[test]
fn quantized_route_requantizes_on_hot_swap() {
    let server = qn_serve::ServerBuilder::new(qn_serve::ServeConfig::default())
        .route_quantized("m", &[IN_DIM], tiny_model(9), BatchConfig::default())
        .start()
        .expect("bind");
    let addr = server.addr();
    let vals = sample(9);
    let body = to_bytes(&vals);
    let hdr = [("Content-Type", "application/octet-stream")];

    let before = request(addr, "POST", "/v1/models/m/predict", &hdr, &body);
    assert_eq!(before.status, 200);

    // publish new weights; the worker must rebuild its int8 twin
    server.registry().publish("m", tiny_model(10));
    let after = request(addr, "POST", "/v1/models/m/predict", &hdr, &body);
    assert_eq!(after.status, 200);
    assert_ne!(
        from_bytes(&before.body),
        from_bytes(&after.body),
        "hot-swapped weights must serve"
    );

    // the new session still tracks the new f32 weights closely
    let expect = InferenceSession::owned(tiny_model(10))
        .predict(&Tensor::from_vec(vals, &[IN_DIM]).expect("sample"));
    let got = from_bytes(&after.body);
    let drift = got
        .iter()
        .zip(expect.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(drift < 0.1, "post-swap drift {drift}");

    server.shutdown();
}
