//! Property: responses that rode the dynamic-batching queue are
//! **bit-identical** to sequential `predict` calls, for any concurrent
//! request mix, any batch composition the timing happens to produce, and
//! any worker/thread count (CI runs this suite under both the default
//! `qn-parallel` pool and `QN_NUM_THREADS=1`).

mod common;

use common::*;
use proptest::prelude::*;
use qn_models::InferenceSession;
use qn_serve::BatchConfig;
use qn_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrent requests through HTTP + queue + batch workers == the
    /// same samples through a lone sequential session, bit for bit.
    #[test]
    fn batched_responses_are_bit_identical_to_sequential_predict(
        seed in 0u64..10_000,
        n in 1usize..12,
        workers in 1usize..3,
    ) {
        let model = tiny_model(seed);
        // small flush triggers so real multi-sample batches form
        let server = start(Arc::clone(&model), BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(5),
            queue_capacity: 64,
            workers,
        });
        let addr = server.addr();

        let mut rng = Rng::seed_from(seed ^ 0xBA7C4);
        let samples: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..IN_DIM).map(|_| rng.uniform(-2.0, 2.0)).collect())
            .collect();

        // sequential ground truth, one private session
        let mut session = InferenceSession::owned(Arc::clone(&model));
        let expected: Vec<Vec<u32>> = samples
            .iter()
            .map(|vals| {
                session
                    .predict(&Tensor::from_vec(vals.clone(), &[IN_DIM]).expect("sample"))
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();

        // all samples fired concurrently, one connection each, so the
        // queue coalesces them into whatever batches timing produces
        let got: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = samples
                .iter()
                .map(|vals| {
                    scope.spawn(move || {
                        let resp = request(
                            addr,
                            "POST",
                            "/v1/models/m/predict",
                            &[("Content-Type", "application/octet-stream")],
                            &to_bytes(vals),
                        );
                        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                        from_bytes(&resp.body).iter().map(|v| v.to_bits()).collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).collect()
        });

        server.shutdown();
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            prop_assert_eq!(g, e, "sample {} diverged (seed {}, n {}, workers {})", i, seed, n, workers);
        }
    }
}
