//! Shared helpers for the serve integration tests: a tiny raw-TCP HTTP
//! client (independent of the crate's own parser, so server bugs can't
//! hide behind symmetric client bugs) and model builders.
//!
//! Compiled into each integration-test binary; not every binary uses
//! every helper.
#![allow(dead_code)]

use qn_nn::{Linear, Module, Relu, Sequential};
use qn_serve::{BatchConfig, ServeConfig, Server, ServerBuilder};
use qn_tensor::Rng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

pub const IN_DIM: usize = 4;
pub const OUT_DIM: usize = 3;

/// A tiny MLP for round-trip tests (deterministic in `seed`).
pub fn tiny_model(seed: u64) -> Arc<dyn Module> {
    let mut rng = Rng::seed_from(seed);
    Arc::new(Sequential::new(vec![
        Box::new(Linear::new(IN_DIM, 8, true, &mut rng)),
        Box::new(Relu),
        Box::new(Linear::new(8, OUT_DIM, true, &mut rng)),
    ]))
}

/// Starts a loopback server for `model` under route `m`.
pub fn start(model: Arc<dyn Module>, batch: BatchConfig) -> Server {
    ServerBuilder::new(ServeConfig::default())
        .route("m", &[IN_DIM], model, batch)
        .start()
        .expect("bind loopback server")
}

/// A parsed response from the raw test client.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Opens a connection with a generous read timeout.
pub fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    s.set_nodelay(true).expect("nodelay");
    s
}

/// Sends one request on `stream` and reads the full response
/// (Content-Length or chunked framing).
pub fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> ClientResponse {
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    for (n, v) in headers {
        req.push_str(&format!("{n}: {v}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    let mut bytes = req.into_bytes();
    bytes.extend_from_slice(body);
    stream.write_all(&bytes).expect("write request");
    read_response(stream).expect("read response")
}

/// Convenience: one-shot request on a fresh connection.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> ClientResponse {
    let mut s = connect(addr);
    roundtrip(&mut s, method, path, headers, body)
}

/// Reads one response off the stream. `None` if the server closed before a
/// full head arrived.
pub fn read_response(stream: &mut TcpStream) -> Option<ClientResponse> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let mut headers = Vec::new();
    for line in head.lines().skip(1) {
        if let Some((n, v)) = line.split_once(':') {
            headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let mut rest = buf[head_end..].to_vec();
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        // keep reading until the 0-chunk terminator, then de-chunk
        while !rest.windows(5).any(|w| w == b"0\r\n\r\n") {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return None,
                Ok(n) => rest.extend_from_slice(&chunk[..n]),
            }
        }
        let mut body = Vec::new();
        let mut pos = 0;
        loop {
            let line_end = rest[pos..].windows(2).position(|w| w == b"\r\n")? + pos;
            let size =
                usize::from_str_radix(std::str::from_utf8(&rest[pos..line_end]).ok()?, 16).ok()?;
            if size == 0 {
                break body;
            }
            let start = line_end + 2;
            body.extend_from_slice(&rest[start..start + size]);
            pos = start + size + 2;
        }
    } else {
        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        while rest.len() < len {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return None,
                Ok(n) => rest.extend_from_slice(&chunk[..n]),
            }
        }
        rest.truncate(len);
        rest
    };
    Some(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Little-endian f32 encoding for predict bodies.
pub fn to_bytes(vals: &[f32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Decodes a binary predict response body.
pub fn from_bytes(body: &[u8]) -> Vec<f32> {
    assert_eq!(body.len() % 4, 0, "body is not f32-aligned");
    body.chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}
