//! # qn-linalg
//!
//! Dense symmetric linear algebra for the quadratic-neuron library:
//!
//! - [`symmetrize`] — Lemma 1 of the paper: any quadratic form `xᵀMx` equals
//!   `xᵀM'x` with `M' = (M + Mᵀ)/2` symmetric.
//! - [`eigh`] — cyclic Jacobi eigendecomposition of a real symmetric matrix,
//!   returning eigenpairs sorted by **descending eigenvalue magnitude** (the
//!   order the paper's top-k selection uses).
//! - [`spectral_top_k`] — the Eckart–Young-optimal rank-k approximation
//!   `Mᵏ = QᵏΛᵏ(Qᵏ)ᵀ` of a symmetric matrix.
//! - [`random_orthonormal`] / [`gram_schmidt`] — orthonormal initializers for
//!   the `Qᵏ` factor of the efficient quadratic neuron.
//!
//! Hot-path entry points panic on malformed shapes with documented `# Panics`
//! contracts; the validating [`try_eigh`] / [`try_spectral_top_k`] variants
//! return [`TensorError`] for data-dependent call sites (the workspace's
//! `try_` audit convention). All products route through the shared
//! `qn-tensor` [`gemm`] core.
//!
//! # Example
//!
//! ```
//! use qn_tensor::{Rng, Tensor};
//! use qn_linalg::{eigh, spectral_top_k, symmetrize};
//!
//! # fn main() -> Result<(), qn_tensor::TensorError> {
//! let mut rng = Rng::seed_from(1);
//! let m = Tensor::randn(&[5, 5], &mut rng);
//! let s = symmetrize(&m);
//! let eig = eigh(&s, 200);
//! // QΛQᵀ reconstructs the symmetric matrix
//! let rebuilt = eig.reconstruct();
//! assert!(rebuilt.allclose(&s, 1e-3));
//! // rank-2 truncation is the best rank-2 approximation in Frobenius norm
//! let approx = spectral_top_k(&s, 2);
//! assert_eq!(approx.q.shape().dims(), &[5, 2]);
//! # Ok(())
//! # }
//! ```

mod eig;
mod ortho;

pub use eig::{eigh, try_eigh, Eigh};
pub use ortho::{gram_schmidt, random_orthonormal};

use qn_tensor::{gemm, MatMut, MatRef, Tensor, TensorError};

/// Validates that `m` is 2-D square, returning its size `n` — the shared
/// shape check behind the crate's `try_` entry points, so they all report
/// the same [`TensorError::ShapeMismatch`] for malformed input.
pub(crate) fn require_square(m: &Tensor) -> Result<usize, TensorError> {
    let dims = m.shape().dims();
    if dims.len() != 2 || dims[0] != dims[1] {
        let n = dims.first().copied().unwrap_or(0);
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, n],
            actual: dims.to_vec(),
        });
    }
    Ok(dims[0])
}

/// Lemma 1: replaces `M` by the symmetric matrix `(M + Mᵀ)/2`, which induces
/// the same quadratic form `xᵀMx` for all `x`.
///
/// # Panics
///
/// Panics if `m` is not square.
pub fn symmetrize(m: &Tensor) -> Tensor {
    let (r, c) = m.dims2();
    assert_eq!(r, c, "symmetrize requires a square matrix, got {r}x{c}");
    m.add(&m.transpose2()).scale(0.5)
}

/// Evaluates the quadratic form `xᵀMx` as `xᵀ(Mx)` — the matrix–vector
/// product runs through the shared `qn-tensor` [`gemm`]
/// core, the final contraction is one sequential dot.
///
/// This replaced a hand-rolled loop whose `x[i] == 0.0` skip was **not**
/// finiteness-guarded (the PR 3 bug class): a zero entry of `x` silently
/// swallowed NaN/∞ rows of `M`. Through the core, `0 × NaN = NaN`
/// propagates, and finite results are bit-identical to the unskipped loop.
///
/// # Panics
///
/// Panics if `m` is not 2-D square of size `x.numel()`.
pub fn quadratic_form(x: &Tensor, m: &Tensor) -> f32 {
    let n = x.numel();
    let (r, c) = m.dims2();
    assert_eq!(r, n, "matrix rows {r} != vector length {n}");
    assert_eq!(c, n, "matrix cols {c} != vector length {n}");
    let mut mx = vec![0.0f32; n];
    gemm(
        MatMut::new(&mut mx, n, 1),
        m.mat(),
        MatRef::new(x.data(), n, 1),
    );
    x.data().iter().zip(&mx).map(|(&a, &b)| a * b).sum()
}

/// The rank-k spectral truncation `Mᵏ = QᵏΛᵏ(Qᵏ)ᵀ` of a symmetric matrix,
/// keeping the `k` eigenvalues of largest magnitude (the paper's top-k
/// selection, optimal by Eckart–Young–Mirsky for the Frobenius norm).
#[derive(Debug, Clone)]
pub struct SpectralTopK {
    /// `n × k` matrix of the retained eigenvectors (orthonormal columns).
    pub q: Tensor,
    /// The `k` retained eigenvalues (diagonal of `Λᵏ`).
    pub lambda: Vec<f32>,
}

impl SpectralTopK {
    /// Rebuilds the `n × n` approximation `QᵏΛᵏ(Qᵏ)ᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not 2-D or `lambda` is shorter than `q`'s column
    /// count — both impossible for values produced by [`spectral_top_k`];
    /// the contract only binds hand-constructed instances.
    pub fn reconstruct(&self) -> Tensor {
        let (n, k) = self.q.dims2();
        // scale columns of Q by lambda, then multiply by Qᵀ
        let mut ql = self.q.clone();
        for i in 0..n {
            for j in 0..k {
                let v = ql.get(&[i, j]) * self.lambda[j];
                ql.set(&[i, j], v);
            }
        }
        ql.matmul_transb(&self.q)
    }
}

/// Computes the top-k spectral approximation of a symmetric matrix.
///
/// # Panics
///
/// Panics if `m` is not square or `k` is zero or exceeds `n`.
pub fn spectral_top_k(m: &Tensor, k: usize) -> SpectralTopK {
    let (n, c) = m.dims2();
    assert_eq!(n, c, "spectral_top_k requires a square matrix");
    assert!(k >= 1 && k <= n, "rank k={k} must be in 1..={n}");
    let eig = eigh(m, 200);
    SpectralTopK {
        q: eig.vectors.slice_axis(1, 0, k),
        lambda: eig.values[..k].to_vec(),
    }
}

/// Validating counterpart of [`spectral_top_k`] for data-dependent call
/// sites (continuing the workspace's `try_` audit series): a non-square
/// matrix surfaces as [`TensorError::ShapeMismatch`], a rank exceeding `n`
/// as [`TensorError::IndexOutOfRange`] and a rank of zero (no retained
/// eigenpairs) as [`TensorError::EmptyShape`], instead of a panic.
pub fn try_spectral_top_k(m: &Tensor, k: usize) -> Result<SpectralTopK, TensorError> {
    let n = require_square(m)?;
    if k == 0 {
        return Err(TensorError::EmptyShape);
    }
    if k > n {
        return Err(TensorError::IndexOutOfRange {
            index: k,
            bound: n + 1,
        });
    }
    Ok(spectral_top_k(m, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_tensor::Rng;

    #[test]
    fn symmetrize_is_symmetric_and_preserves_form() {
        let mut rng = Rng::seed_from(3);
        let m = Tensor::randn(&[6, 6], &mut rng);
        let s = symmetrize(&m);
        for i in 0..6 {
            for j in 0..6 {
                assert!((s.get(&[i, j]) - s.get(&[j, i])).abs() < 1e-6);
            }
        }
        for _ in 0..10 {
            let x = Tensor::randn(&[6], &mut rng);
            let a = quadratic_form(&x, &m);
            let b = quadratic_form(&x, &s);
            assert!((a - b).abs() < 1e-3 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn quadratic_form_known_value() {
        // M = [[1, 2], [3, 4]], x = [1, 1] -> 1 + 2 + 3 + 4 = 10
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let x = Tensor::ones(&[2]);
        assert!((quadratic_form(&x, &m) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn top_k_full_rank_reconstructs() {
        let mut rng = Rng::seed_from(5);
        let s = symmetrize(&Tensor::randn(&[5, 5], &mut rng));
        let approx = spectral_top_k(&s, 5);
        assert!(approx.reconstruct().allclose(&s, 1e-3));
    }

    #[test]
    fn top_k_of_rank_one_matrix_is_exact() {
        // M = v vᵀ has rank 1; the k=1 truncation must be exact.
        let mut rng = Rng::seed_from(6);
        let v = Tensor::randn(&[6, 1], &mut rng);
        let m = v.matmul_transb(&v);
        let approx = spectral_top_k(&m, 1);
        assert!(approx.reconstruct().allclose(&m, 1e-3));
        assert_eq!(approx.lambda.len(), 1);
    }

    #[test]
    fn eckart_young_beats_random_rank_k() {
        let mut rng = Rng::seed_from(7);
        let s = symmetrize(&Tensor::randn(&[8, 8], &mut rng));
        let k = 3;
        let spectral_err = s.sub(&spectral_top_k(&s, k).reconstruct()).frob_norm();
        for trial in 0..10 {
            let q = crate::random_orthonormal(8, k, &mut rng);
            // best symmetric approx within span(q): Q (Qᵀ S Q) Qᵀ
            let core = q.matmul_transa(&s.matmul(&q)); // wrong orientation? q is n x k
            let proj = q.matmul(&core).matmul_transb(&q);
            let rand_err = s.sub(&proj).frob_norm();
            assert!(
                spectral_err <= rand_err + 1e-3,
                "trial {trial}: spectral {spectral_err} > random {rand_err}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn symmetrize_non_square_panics() {
        symmetrize(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn top_k_zero_rank_panics() {
        spectral_top_k(&Tensor::eye(3), 0);
    }

    #[test]
    fn try_top_k_reports_errors_instead_of_panicking() {
        assert!(matches!(
            try_spectral_top_k(&Tensor::zeros(&[2, 3]), 1),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            try_spectral_top_k(&Tensor::eye(3), 0),
            Err(TensorError::EmptyShape)
        ));
        assert!(matches!(
            try_spectral_top_k(&Tensor::eye(3), 4),
            Err(TensorError::IndexOutOfRange { index: 4, bound: 4 })
        ));
        let ok = try_spectral_top_k(&Tensor::eye(3), 2).expect("valid rank");
        assert_eq!(ok.q.shape().dims(), &[3, 2]);
        assert_eq!(ok.lambda.len(), 2);
    }

    #[test]
    fn quadratic_form_zero_entry_no_longer_swallows_nan() {
        // Regression (PR 3 bug class): x = [0, 1] used to skip row 0 of M
        // entirely, hiding the NaN; through the guarded GEMM core it
        // propagates.
        let x = Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap();
        let m = Tensor::from_vec(vec![f32::NAN, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert!(quadratic_form(&x, &m).is_nan());
        // finite inputs are unaffected
        let mf = Tensor::from_vec(vec![2.0, 0.5, 0.5, 1.0], &[2, 2]).unwrap();
        assert!((quadratic_form(&x, &mf) - 1.0).abs() < 1e-6);
    }
}
