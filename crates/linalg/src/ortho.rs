use qn_tensor::{Rng, Tensor};

/// Orthonormalizes the columns of an `n × k` matrix with modified
/// Gram–Schmidt. Columns that collapse to (near) zero are replaced by fresh
/// random directions and re-orthogonalized so the result always has full
/// column rank.
///
/// # Panics
///
/// Panics if `m` is not 2-D or `k > n`. Also panics — as a documented
/// last-resort contract rather than a reachable state — if 100 consecutive
/// random resamples of a degenerate column all collapse onto the span of
/// the previous columns, which with `k <= n` requires a broken RNG.
pub fn gram_schmidt(m: &Tensor, rng: &mut Rng) -> Tensor {
    let (n, k) = m.dims2();
    assert!(k <= n, "cannot orthonormalize {k} columns in dimension {n}");
    let mut cols: Vec<Vec<f32>> = (0..k)
        .map(|j| (0..n).map(|i| m.get(&[i, j])).collect())
        .collect();
    for j in 0..k {
        let mut attempts = 0;
        loop {
            // subtract projections onto previous columns
            for p in 0..j {
                let dot: f32 = cols[j]
                    .iter()
                    .zip(cols[p].iter())
                    .map(|(&a, &b)| a * b)
                    .sum();
                let prev = cols[p].clone();
                for (v, &pv) in cols[j].iter_mut().zip(prev.iter()) {
                    *v -= dot * pv;
                }
            }
            let norm: f32 = cols[j].iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-6 {
                for v in &mut cols[j] {
                    *v /= norm;
                }
                break;
            }
            attempts += 1;
            assert!(attempts < 100, "gram_schmidt failed to find a direction");
            for v in &mut cols[j] {
                *v = rng.normal();
            }
        }
    }
    let mut out = Tensor::zeros(&[n, k]);
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            out.set(&[i, j], v);
        }
    }
    out
}

/// Samples an `n × k` matrix with orthonormal columns (Haar-ish via
/// Gram–Schmidt on Gaussian columns) — the initializer used for the `Qᵏ`
/// factor of the efficient quadratic neuron.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn random_orthonormal(n: usize, k: usize, rng: &mut Rng) -> Tensor {
    let m = Tensor::randn(&[n, k], rng);
    gram_schmidt(&m, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(q: &Tensor) -> f32 {
        let qtq = q.matmul_transa(q);
        let (k, _) = qtq.dims2();
        let mut worst = 0.0f32;
        for i in 0..k {
            for j in 0..k {
                let target = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((qtq.get(&[i, j]) - target).abs());
            }
        }
        worst
    }

    #[test]
    fn random_orthonormal_has_orthonormal_columns() {
        let mut rng = Rng::seed_from(41);
        for &(n, k) in &[(4usize, 2usize), (10, 10), (30, 5)] {
            let q = random_orthonormal(n, k, &mut rng);
            assert_eq!(q.shape().dims(), &[n, k]);
            assert!(residual(&q) < 1e-4, "residual too large for ({n}, {k})");
        }
    }

    #[test]
    fn gram_schmidt_fixes_duplicate_columns() {
        let mut rng = Rng::seed_from(42);
        // two identical columns: second must be replaced by a fresh direction
        let m = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let q = gram_schmidt(&m, &mut rng);
        assert!(residual(&q) < 1e-4);
    }

    #[test]
    fn gram_schmidt_preserves_first_direction() {
        let mut rng = Rng::seed_from(43);
        let m = Tensor::from_vec(vec![2.0, 0.0, 0.0, 3.0, 0.0, 0.0], &[3, 2]).unwrap();
        let q = gram_schmidt(&m, &mut rng);
        // first column must be e1 (normalized [2,0,0])
        assert!((q.get(&[0, 0]).abs() - 1.0).abs() < 1e-5);
        assert!(q.get(&[1, 0]).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "cannot orthonormalize")]
    fn too_many_columns_panics() {
        let mut rng = Rng::seed_from(44);
        random_orthonormal(2, 3, &mut rng);
    }
}
