use qn_tensor::{Tensor, TensorError};

/// Eigendecomposition of a real symmetric matrix, `M = Q Λ Qᵀ`.
///
/// Produced by [`eigh`]. Eigenpairs are sorted by **descending eigenvalue
/// magnitude** — the order used by the paper's top-k selection (principal
/// components first).
#[derive(Debug, Clone)]
pub struct Eigh {
    /// Eigenvalues, `|values[0]| >= |values[1]| >= …`.
    pub values: Vec<f32>,
    /// `n × n` matrix whose columns are the corresponding eigenvectors.
    pub vectors: Tensor,
}

impl Eigh {
    /// Rebuilds `Q Λ Qᵀ` (the `QΛ` column scaling, then one product with
    /// `Qᵀ` as a zero-copy stride swap through the shared GEMM core).
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is not 2-D or `values` is shorter than its
    /// column count — both impossible for values produced by [`eigh`]; the
    /// contract only binds hand-constructed instances.
    pub fn reconstruct(&self) -> Tensor {
        let (n, _) = self.vectors.dims2();
        let mut ql = self.vectors.clone();
        for i in 0..n {
            for j in 0..n {
                let v = ql.get(&[i, j]) * self.values[j];
                ql.set(&[i, j], v);
            }
        }
        ql.matmul_transb(&self.vectors)
    }

    /// Largest off-diagonal magnitude of `QᵀQ - I` — an orthonormality
    /// residual useful in tests.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is not 2-D (see [`Eigh::reconstruct`]).
    pub fn orthonormality_residual(&self) -> f32 {
        let qtq = self.vectors.matmul_transa(&self.vectors);
        let (n, _) = qtq.dims2();
        let mut worst = 0.0f32;
        for i in 0..n {
            for j in 0..n {
                let target = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((qtq.get(&[i, j]) - target).abs());
            }
        }
        worst
    }
}

/// Cyclic Jacobi eigendecomposition of a real symmetric matrix.
///
/// Runs sweeps of Jacobi rotations until the off-diagonal Frobenius mass
/// drops below `1e-9 · ‖M‖` or `max_sweeps` is reached. For the matrix sizes
/// quadratic neurons use (n = C·K², typically ≤ a few hundred) this is fast
/// and extremely robust.
///
/// The input is symmetrized first (`(M + Mᵀ)/2`), so mildly asymmetric input
/// — e.g. a trained unconstrained matrix — is handled per Lemma 1.
///
/// # Panics
///
/// Panics if `m` is not 2-D square; [`try_eigh`] is the validating
/// counterpart for data-dependent call sites.
pub fn eigh(m: &Tensor, max_sweeps: usize) -> Eigh {
    let (n, c) = m.dims2();
    assert_eq!(n, c, "eigh requires a square matrix, got {n}x{c}");
    // working copy, symmetrized
    let mut a: Vec<f32> = {
        let t = m.transpose2();
        m.data()
            .iter()
            .zip(t.data().iter())
            .map(|(&x, &y)| 0.5 * (x + y))
            .collect()
    };
    let mut q = Tensor::eye(n).into_vec();
    let norm = m.frob_norm().max(1e-20);
    let tol = 1e-9 * norm;

    for _sweep in 0..max_sweeps {
        let mut off = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apr = a[p * n + r];
                if apr.abs() <= f32::MIN_POSITIVE {
                    continue;
                }
                let app = a[p * n + p];
                let arr = a[r * n + r];
                let theta = 0.5 * (arr - app) as f64 / apr as f64;
                let t = if theta.abs() > 1e12 {
                    0.5 / theta
                } else {
                    let s = if theta >= 0.0 { 1.0 } else { -1.0 };
                    s / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let cos = 1.0 / (t * t + 1.0).sqrt();
                let sin = t * cos;
                let (cos, sin) = (cos as f32, sin as f32);
                // rotate rows/cols p and r of A
                for kk in 0..n {
                    let akp = a[kk * n + p];
                    let akr = a[kk * n + r];
                    a[kk * n + p] = cos * akp - sin * akr;
                    a[kk * n + r] = sin * akp + cos * akr;
                }
                for kk in 0..n {
                    let apk = a[p * n + kk];
                    let ark = a[r * n + kk];
                    a[p * n + kk] = cos * apk - sin * ark;
                    a[r * n + kk] = sin * apk + cos * ark;
                }
                // accumulate rotations into Q (columns are eigenvectors)
                for kk in 0..n {
                    let qkp = q[kk * n + p];
                    let qkr = q[kk * n + r];
                    q[kk * n + p] = cos * qkp - sin * qkr;
                    q[kk * n + r] = sin * qkp + cos * qkr;
                }
            }
        }
    }

    // extract eigenvalues and sort by |λ| descending, permuting columns of Q
    let mut order: Vec<usize> = (0..n).collect();
    let values: Vec<f32> = (0..n).map(|i| a[i * n + i]).collect();
    order.sort_by(|&x, &y| {
        values[y]
            .abs()
            .partial_cmp(&values[x].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let sorted_values: Vec<f32> = order.iter().map(|&i| values[i]).collect();
    let mut vectors = Tensor::zeros(&[n, n]);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors.set(&[row, new_col], q[row * n + old_col]);
        }
    }
    Eigh {
        values: sorted_values,
        vectors,
    }
}

/// Validating counterpart of [`eigh`] (continuing the PR 2/PR 3
/// unwrap/expect audit series into `qn-linalg`): a non-2-D or non-square
/// input surfaces as [`TensorError::ShapeMismatch`] instead of a panic, so
/// data-dependent call sites — e.g. decomposing a user-supplied weight
/// matrix — can recover.
pub fn try_eigh(m: &Tensor, max_sweeps: usize) -> Result<Eigh, TensorError> {
    crate::require_square(m)?;
    Ok(eigh(m, max_sweeps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_tensor::Rng;

    fn random_symmetric(n: usize, rng: &mut Rng) -> Tensor {
        let m = Tensor::randn(&[n, n], rng);
        m.add(&m.transpose2()).scale(0.5)
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut d = Tensor::zeros(&[3, 3]);
        d.set(&[0, 0], 2.0);
        d.set(&[1, 1], -5.0);
        d.set(&[2, 2], 1.0);
        let e = eigh(&d, 100);
        assert!((e.values[0] - -5.0).abs() < 1e-5);
        assert!((e.values[1] - 2.0).abs() < 1e-5);
        assert!((e.values[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = Tensor::from_vec(vec![2.0, 1.0, 1.0, 2.0], &[2, 2]).unwrap();
        let e = eigh(&m, 100);
        assert!((e.values[0] - 3.0).abs() < 1e-5);
        assert!((e.values[1] - 1.0).abs() < 1e-5);
        // eigenvector for 3 is (1,1)/sqrt(2) up to sign
        let v0 = (e.vectors.get(&[0, 0]), e.vectors.get(&[1, 0]));
        assert!((v0.0.abs() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-4);
        assert!((v0.0 - v0.1).abs() < 1e-4);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let mut rng = Rng::seed_from(31);
        for &n in &[2usize, 5, 10, 20] {
            let m = random_symmetric(n, &mut rng);
            let e = eigh(&m, 200);
            assert!(
                e.reconstruct().allclose(&m, 2e-3 * (n as f32)),
                "reconstruction failed for n={n}"
            );
            assert!(
                e.orthonormality_residual() < 1e-3,
                "orthonormality failed for n={n}"
            );
        }
    }

    #[test]
    fn eigenvalues_sorted_by_magnitude() {
        let mut rng = Rng::seed_from(32);
        let m = random_symmetric(12, &mut rng);
        let e = eigh(&m, 200);
        for w in e.values.windows(2) {
            assert!(w[0].abs() >= w[1].abs() - 1e-6);
        }
    }

    #[test]
    fn eigenvalue_equation_holds() {
        let mut rng = Rng::seed_from(33);
        let m = random_symmetric(7, &mut rng);
        let e = eigh(&m, 200);
        for j in 0..7 {
            let v = e.vectors.slice_axis(1, j, j + 1); // [7, 1]
            let mv = m.matmul(&v);
            let lv = v.scale(e.values[j]);
            assert!(mv.allclose(&lv, 1e-3), "Mv != λv for pair {j}");
        }
    }

    #[test]
    fn trace_is_preserved() {
        let mut rng = Rng::seed_from(34);
        let m = random_symmetric(9, &mut rng);
        let trace: f32 = (0..9).map(|i| m.get(&[i, i])).sum();
        let e = eigh(&m, 200);
        let sum: f32 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-3, "{trace} vs {sum}");
    }

    #[test]
    fn asymmetric_input_is_symmetrized() {
        let mut rng = Rng::seed_from(35);
        let m = Tensor::randn(&[6, 6], &mut rng);
        let e = eigh(&m, 200);
        let s = m.add(&m.transpose2()).scale(0.5);
        assert!(e.reconstruct().allclose(&s, 5e-3));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        eigh(&Tensor::zeros(&[2, 3]), 10);
    }

    #[test]
    fn try_eigh_reports_shape_errors() {
        assert!(matches!(
            try_eigh(&Tensor::zeros(&[2, 3]), 10),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            try_eigh(&Tensor::zeros(&[4]), 10),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let e = try_eigh(&Tensor::eye(3), 10).expect("square input");
        assert_eq!(e.values.len(), 3);
    }
}
