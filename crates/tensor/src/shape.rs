use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), stored row-major.
///
/// A `Shape` is an immutable list of dimension sizes. All tensors in this
/// workspace are contiguous, so strides are derived, not stored.
///
/// # Example
///
/// ```
/// use qn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank of the array, not of a matrix).
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Consumes the shape, returning the owned dimension buffer — the
    /// counterpart of `Shape::from(Vec<usize>)`, used by the buffer pool to
    /// recycle shape storage alongside tensor data.
    pub fn into_dims(self) -> Vec<usize> {
        self.dims
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index.len() != self.ndim()` or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} of size {d}");
            off += i * strides[axis];
        }
        off
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.ndim(), 3);
    }

    #[test]
    fn scalar_like_shape() {
        let s = Shape::new(&[1]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn offset_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        let s = Shape::new(&[2, 3]);
        s.offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "index rank")]
    fn offset_rank_mismatch_panics() {
        let s = Shape::new(&[2, 3]);
        s.offset(&[1]);
    }

    #[test]
    fn display_matches_debug_dims() {
        let s = Shape::new(&[4, 5]);
        assert_eq!(s.to_string(), "[4, 5]");
    }
}
