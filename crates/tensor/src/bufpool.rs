//! Size-bucketed buffer recycling: the allocation backbone of the
//! workspace's zero-alloc hot paths.
//!
//! A [`BufferPool`] keeps freed `Vec` storage in per-length free lists and
//! hands it back to later requests of the same length, so a steady-state
//! loop that repeatedly materializes the same tensor shapes (a serving
//! loop, a training step, a GEMM packing buffer) stops touching the global
//! allocator entirely once the pool is warm. The `alloc` bench in
//! `qn-bench` verifies this with a counting allocator: after warmup,
//! `InferenceSession::predict` performs **zero** heap allocations.
//!
//! Two element types are bucketed — `f32` (tensor data and kernel
//! scratch) and `usize` (shape dims) — exactly the buffers the pooled hot
//! paths churn through. (The GEMM packing scratch recycles through
//! per-thread caches inside the `mat` module instead, so parallel workers
//! never contend on a pool lock.)
//!
//! # Contents contract
//!
//! A recycled buffer comes back with **unspecified contents** (the stale
//! values of its previous life). Every consumer must either fully overwrite
//! it or explicitly zero it first; the `pool_equivalence` property suite
//! pre-poisons pools with NaN garbage and asserts results are bit-identical
//! to fresh-allocation execution.
//!
//! # Example
//!
//! ```
//! use qn_tensor::BufferPool;
//!
//! let pool = BufferPool::new();
//! let buf = pool.take_f32(128); // cold: allocates (zero-filled)
//! pool.give_f32(buf);
//! let buf = pool.take_f32(128); // warm: recycled, no allocation
//! assert_eq!(buf.len(), 128);
//! let stats = pool.stats();
//! assert_eq!((stats.hits, stats.misses), (1, 1));
//! # pool.give_f32(buf);
//! ```

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Free buffers kept per bucket before further returns are dropped; bounds
/// the pool's worst-case footprint while comfortably covering the number of
/// same-shape live buffers any single pass produces.
const MAX_PER_BUCKET: usize = 64;

/// One element type's free lists, keyed by exact buffer length.
struct Buckets<T> {
    map: HashMap<usize, Vec<Vec<T>>>,
}

impl<T> Buckets<T> {
    fn new() -> Self {
        Buckets {
            map: HashMap::new(),
        }
    }

    fn take(&mut self, len: usize) -> Option<Vec<T>> {
        self.map.get_mut(&len).and_then(|b| b.pop())
    }

    /// Returns `true` if the buffer was kept (bucket not full).
    fn give(&mut self, buf: Vec<T>) -> bool {
        let bucket = self.map.entry(buf.len()).or_default();
        if bucket.len() >= MAX_PER_BUCKET {
            return false;
        }
        bucket.push(buf);
        true
    }

    fn held(&self) -> (u64, u64) {
        let mut buffers = 0u64;
        let mut elems = 0u64;
        for (len, b) in &self.map {
            buffers += b.len() as u64;
            elems += (*len as u64) * b.len() as u64;
        }
        (buffers, elems)
    }
}

/// Snapshot of a pool's counters (see [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a free list (no allocation).
    pub hits: u64,
    /// Requests that fell through to a fresh allocation.
    pub misses: u64,
    /// Buffers returned to the pool and kept.
    pub returns: u64,
    /// Buffers returned but dropped because their bucket was full.
    pub discarded: u64,
    /// `f32` buffers currently held across all buckets.
    pub buffers_held: u64,
    /// Bytes currently held in `f32` buckets (capacity not counted).
    pub bytes_held: u64,
}

/// A thread-safe, size-bucketed free list of `Vec` storage.
///
/// One **global** instance ([`BufferPool::global`]) backs default
/// `EagerExec` contexts; **per-session** instances (e.g. the one owned by
/// `InferenceSession` in `qn-models`) isolate a serving loop's recycling
/// from everything else. See the module docs for the contents contract.
pub struct BufferPool {
    f32s: Mutex<Buckets<f32>>,
    usizes: Mutex<Buckets<usize>>,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    discarded: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool {
            f32s: Mutex::new(Buckets::new()),
            usizes: Mutex::new(Buckets::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// The process-wide shared pool — the default backing of `EagerExec`
    /// contexts built with `EagerExec::new` (sessions and benchmarks use
    /// their own instances).
    pub fn global() -> &'static Arc<BufferPool> {
        static GLOBAL: OnceLock<Arc<BufferPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(BufferPool::new()))
    }

    /// Takes a `len`-element `f32` buffer: recycled if a same-length buffer
    /// is pooled (contents **unspecified** — see the module docs), freshly
    /// allocated (zero-filled) otherwise.
    pub fn take_f32(&self, len: usize) -> Vec<f32> {
        match self.f32s.lock().expect("pool lock poisoned").take(len) {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![0.0; len]
            }
        }
    }

    /// Like [`BufferPool::take_f32`] but the returned buffer is always
    /// zero-filled, warm or cold.
    pub fn take_f32_zeroed(&self, len: usize) -> Vec<f32> {
        let mut buf = self.take_f32(len);
        buf.fill(0.0);
        buf
    }

    /// Returns an `f32` buffer to the pool (bucketed by its length; dropped
    /// if the bucket is full or the buffer is empty).
    pub fn give_f32(&self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        if self.f32s.lock().expect("pool lock poisoned").give(buf) {
            self.returns.fetch_add(1, Ordering::Relaxed);
        } else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes a `len`-element `usize` buffer (shape dims); unspecified
    /// contents when recycled, zero-filled when fresh.
    pub fn take_usize(&self, len: usize) -> Vec<usize> {
        match self.usizes.lock().expect("pool lock poisoned").take(len) {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![0; len]
            }
        }
    }

    /// Returns a `usize` buffer to the pool.
    pub fn give_usize(&self, buf: Vec<usize>) {
        if buf.capacity() == 0 {
            return;
        }
        if self.usizes.lock().expect("pool lock poisoned").give(buf) {
            self.returns.fetch_add(1, Ordering::Relaxed);
        } else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// RAII variant of [`BufferPool::take_f32`]: the buffer returns to
    /// `pool` when the [`PoolRef`] drops.
    pub fn take_ref(pool: &Arc<BufferPool>, len: usize) -> PoolRef {
        PoolRef {
            buf: Some(pool.take_f32(len)),
            pool: Arc::clone(pool),
        }
    }

    /// Snapshot of the counters and current holdings.
    pub fn stats(&self) -> PoolStats {
        let (buffers_held, elems) = self.f32s.lock().expect("pool lock poisoned").held();
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            buffers_held,
            bytes_held: elems * std::mem::size_of::<f32>() as u64,
        }
    }

    /// Drops every held buffer (counters are kept). The only eviction
    /// path: buckets are capped per length, but the set of distinct
    /// lengths follows the shapes the workload touches, so a long-lived
    /// process cycling through many shapes should `clear()` between
    /// workload phases.
    pub fn clear(&self) {
        self.f32s.lock().expect("pool lock poisoned").map.clear();
        self.usizes.lock().expect("pool lock poisoned").map.clear();
    }

    /// Pre-fills the `len` bucket with `value`-filled buffers — test hook
    /// for the poisoned-pool property (recycled garbage must never leak
    /// into results).
    pub fn poison_f32(&self, len: usize, count: usize, value: f32) {
        for _ in 0..count {
            self.give_f32(vec![value; len]);
        }
    }

    /// Overwrites **every** currently held `f32` buffer with `value` — the
    /// strongest form of the poisoned-pool test hook: after a warm pass,
    /// every buffer the next pass will recycle carries `value` (e.g. NaN),
    /// so any kernel that reads a recycled element before writing it is
    /// caught by a bitwise comparison.
    pub fn poison_held(&self, value: f32) {
        let mut buckets = self.f32s.lock().expect("pool lock poisoned");
        for bucket in buckets.map.values_mut() {
            for buf in bucket.iter_mut() {
                buf.fill(value);
            }
        }
    }
}

/// RAII handle to a pooled `f32` buffer: derefs to the slice and returns
/// the storage to its pool on drop. See [`BufferPool::take_ref`].
pub struct PoolRef {
    buf: Option<Vec<f32>>,
    pool: Arc<BufferPool>,
}

impl PoolRef {
    /// Detaches the buffer from the RAII return (it will not go back to the
    /// pool automatically).
    pub fn into_vec(mut self) -> Vec<f32> {
        self.buf.take().expect("buffer present until drop")
    }

    /// An empty handle holding no buffer (drops without returning
    /// anything) — the placeholder `Storage::make_owned` swaps in while
    /// detaching a pooled buffer.
    pub(crate) fn detached() -> PoolRef {
        PoolRef {
            buf: None,
            pool: Arc::clone(BufferPool::global()),
        }
    }
}

impl std::fmt::Debug for PoolRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoolRef(len={})", self.buf.as_ref().map_or(0, Vec::len))
    }
}

impl Deref for PoolRef {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.buf.as_deref().expect("buffer present until drop")
    }
}

impl DerefMut for PoolRef {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.buf.as_deref_mut().expect("buffer present until drop")
    }
}

impl Drop for PoolRef {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.give_f32(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_by_exact_length() {
        let pool = BufferPool::new();
        let a = pool.take_f32(16);
        pool.give_f32(a);
        let _b = pool.take_f32(8); // different bucket: miss
        let c = pool.take_f32(16); // hit
        assert_eq!(c.len(), 16);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.returns, 1);
    }

    #[test]
    fn cold_take_is_zeroed_warm_take_is_unspecified() {
        let pool = BufferPool::new();
        let cold = pool.take_f32(4);
        assert_eq!(cold, vec![0.0; 4]);
        pool.give_f32(vec![7.0; 4]);
        let warm = pool.take_f32(4);
        assert_eq!(warm, vec![7.0; 4], "warm buffers keep stale contents");
        let zeroed = {
            pool.give_f32(warm);
            pool.take_f32_zeroed(4)
        };
        assert_eq!(zeroed, vec![0.0; 4]);
    }

    #[test]
    fn bucket_cap_discards_excess() {
        let pool = BufferPool::new();
        for _ in 0..MAX_PER_BUCKET + 5 {
            pool.give_f32(vec![0.0; 2]);
        }
        let s = pool.stats();
        assert_eq!(s.returns, MAX_PER_BUCKET as u64);
        assert_eq!(s.discarded, 5);
        assert_eq!(s.buffers_held, MAX_PER_BUCKET as u64);
    }

    #[test]
    fn pool_ref_returns_on_drop() {
        let pool = Arc::new(BufferPool::new());
        {
            let mut r = BufferPool::take_ref(&pool, 8);
            r[0] = 3.0;
            assert_eq!(r.len(), 8);
        }
        assert_eq!(pool.stats().buffers_held, 1);
        let warm = pool.take_f32(8);
        assert_eq!(warm[0], 3.0);
    }

    #[test]
    fn usize_buckets_work() {
        let pool = BufferPool::new();
        pool.give_usize(vec![1, 2, 3]);
        assert_eq!(pool.take_usize(3), vec![1, 2, 3]);
        assert_eq!(pool.take_usize(2), vec![0, 0]);
    }

    #[test]
    fn clear_drops_holdings() {
        let pool = BufferPool::new();
        pool.give_f32(vec![0.0; 4]);
        pool.clear();
        assert_eq!(pool.stats().buffers_held, 0);
    }

    #[test]
    fn pool_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool>();
    }
}
