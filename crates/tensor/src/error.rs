use std::error::Error;
use std::fmt;

/// Error type for fallible tensor construction and reshaping.
///
/// Hot-path arithmetic (`matmul`, elementwise ops, …) panics on shape
/// mismatch instead — those are programmer errors, documented per method
/// under `# Panics` — while data-dependent entry points (`from_vec`,
/// `reshape`, …) return `Result<_, TensorError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the product of the dims.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// A zero-sized dimension where one is not allowed.
    EmptyShape,
    /// An input's shape differs from what the consumer expects — returned by
    /// validating entry points (e.g. `InferenceSession::try_predict`) so a
    /// malformed request surfaces as an error instead of a panic.
    ShapeMismatch {
        /// Shape the consumer expects.
        expected: Vec<usize>,
        /// Shape actually provided.
        actual: Vec<usize>,
    },
    /// An index (e.g. a token id in a serving request) is outside its valid
    /// range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The exclusive upper bound it must stay below.
        bound: usize,
    },
    /// An operation that needs at least one element received an empty
    /// input (e.g. summarizing an empty sample) — returned by validating
    /// `try_` entry points such as `qn_metrics::stats::try_summarize`.
    EmptyInput {
        /// What was empty.
        what: &'static str,
    },
    /// A checkpoint file is malformed, truncated, or corrupt — returned by
    /// the `checkpoint`/`mmap` readers, which validate every field before
    /// touching it (malformed input must never panic).
    InvalidCheckpoint {
        /// Byte offset into the file where validation failed (0 when the
        /// failure precedes parsing, e.g. an I/O error).
        offset: u64,
        /// What was wrong at that offset.
        detail: String,
    },
    /// A checkpoint carries a format version this build does not read.
    VersionMismatch {
        /// Version stored in the file.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape element count {expected}"
            ),
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape tensor of shape {from:?} into {to:?}: element counts differ"
            ),
            TensorError::EmptyShape => write!(f, "shape must have at least one element"),
            TensorError::ShapeMismatch { expected, actual } => write!(
                f,
                "input shape {actual:?} does not match the expected shape {expected:?}"
            ),
            TensorError::IndexOutOfRange { index, bound } => {
                write!(f, "index {index} out of range (must be < {bound})")
            }
            TensorError::EmptyInput { what } => {
                write!(f, "empty input: {what} needs at least one element")
            }
            TensorError::InvalidCheckpoint { offset, detail } => {
                write!(f, "invalid checkpoint at byte {offset}: {detail}")
            }
            TensorError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint version {found} is not supported (this build reads <= {supported})"
            ),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert_eq!(
            e.to_string(),
            "buffer length 5 does not match shape element count 6"
        );
    }

    #[test]
    fn display_reshape_mismatch() {
        let e = TensorError::ReshapeMismatch {
            from: vec![2, 3],
            to: vec![4],
        };
        assert!(e.to_string().contains("[2, 3]"));
        assert!(e.to_string().contains("[4]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
