//! The int8/f16 precision tier: quantized weight storage ([`QTensor`]),
//! an int8 GEMM sibling of the packed core ([`gemm_i8`]), and software
//! `f32 ↔ f16` bit conversion (no half-precision hardware or external
//! crates required).
//!
//! # Quantization scheme
//!
//! Per-channel **symmetric** int8: each row (output channel) of a 2-D
//! weight matrix gets one `f32` scale `s = absmax / 127`, and codes are
//! `q = round(x / s)` clamped to `[-127, 127]` (the code `-128` is never
//! produced, so negation is always representable and `|q·s| ≤ absmax`).
//! Rounding is round-to-nearest-even via `qn_simd::quantize_to_i8`, which
//! is **bit-identical at every dispatch level** — quantizing a model on an
//! AVX2 box and on a scalar box produces the same codes.
//!
//! The per-element reconstruction error is at most `s/2` plus the f32
//! rounding of `x·(1/s)` (≤ a few ULP); the property suite bounds it by
//! `s · 0.5001`.
//!
//! # Determinism of [`gemm_i8`]
//!
//! The inner product accumulates in `i32`, and integer addition is
//! associative — any split of the `k` loop, any SIMD width, and any
//! thread count produce the same accumulator bit-for-bit. The epilogue
//! multiplies `acc as f32` by the two scales in one fixed order. So,
//! unlike the f32 core, the int8 GEMM is **bit-identical across dispatch
//! levels, kernel profiles, and thread counts** with no exact/fast split.
//!
//! # Zero-skip semantics
//!
//! The f32 core carries finiteness-guarded zero-skip machinery because
//! `0.0 × NaN` must propagate. The integer domain has no NaN/∞ and a
//! zero code contributes exactly `0` to the accumulator, so [`gemm_i8`]
//! deliberately has **no skip path** — skipping could only save integer
//! MACs that the widening multiply-add makes nearly free, and the result
//! is unaffected either way.
//!
//! # Accumulator range
//!
//! `|a·b| ≤ 127² = 16129` per product, so the `i32` accumulator is safe
//! for any `k` up to ~133 000 — far beyond every layer shape in the
//! workspace (documented in `qn_simd::dot_i8`; [`gemm_i8`] asserts it).

use crate::mat::{scratch, MatMut, PAR_MIN_MACS};
use crate::{Tensor, TensorError};

/// Largest inner dimension [`gemm_i8`] accepts: beyond this the i32
/// accumulator of `qn_simd::dot_i8` could overflow (see module docs).
pub const GEMM_I8_MAX_K: usize = 130_000;

// ---------------------------------------------------------------------------
// f16 bit conversion
// ---------------------------------------------------------------------------

/// Converts an `f32` to IEEE 754 binary16 bits with round-to-nearest-even.
///
/// Overflow goes to ±∞, underflow denormalizes and then flushes to ±0,
/// NaN stays NaN (quieted, payload truncated but never zeroed).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;
    if exp == 0xFF {
        if man == 0 {
            return sign | 0x7C00; // ±∞
        }
        // NaN: carry the top payload bits, force at least one set so the
        // value stays a NaN after truncation.
        let payload = (man >> 13) as u16 & 0x3FF;
        return sign | 0x7C00 | if payload == 0 { 0x200 } else { payload };
    }
    let e = exp - 127 + 15; // re-biased binary16 exponent
    if e >= 31 {
        return sign | 0x7C00; // overflow → ±∞
    }
    if e <= 0 {
        if e < -10 {
            return sign; // too small for even a subnormal → ±0
        }
        // Subnormal: restore the implicit bit, shift into the 10-bit
        // field with round-to-nearest-even.
        let man = man | 0x0080_0000;
        let shift = (14 - e) as u32;
        let lsb = (man >> shift) & 1;
        let rounded = man + (1 << (shift - 1)) - 1 + lsb;
        return sign | (rounded >> shift) as u16;
    }
    // Normal: round the 23-bit mantissa to 10 bits (nearest-even); a
    // mantissa carry rolls into the exponent via the addition (and can
    // correctly produce ∞ at e == 30).
    let lsb = (man >> 13) & 1;
    let rounded = man + 0x0FFF + lsb;
    sign | (((e as u32) << 10) + (rounded >> 13)) as u16
}

/// Converts IEEE 754 binary16 bits to the exactly-representable `f32`.
///
/// Every finite f16 value is exact in f32, so
/// `f32_to_f16_bits(f16_bits_to_f32(h)) == h` for all `h` (NaN payloads
/// round-trip through the quieting in [`f32_to_f16_bits`]).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let negative = h & 0x8000 != 0;
    let exp = (h >> 10) & 0x1F;
    let man = (h & 0x3FF) as u32;
    let mag = match exp {
        // Subnormal (or zero): value = man · 2⁻²⁴, exact as an f32
        // integer times a power of two.
        0 => man as f32 * f32::from_bits(0x3380_0000),
        31 => {
            if man == 0 {
                f32::INFINITY
            } else {
                // Quiet NaN carrying the payload in the top mantissa bits.
                let sign = ((h as u32) & 0x8000) << 16;
                return f32::from_bits(sign | 0x7FC0_0000 | (man << 13));
            }
        }
        _ => f32::from_bits(((exp as u32 + 112) << 23) | (man << 13)),
    };
    if negative {
        -mag
    } else {
        mag
    }
}

/// Encodes a slice to binary16, round-to-nearest-even per element.
pub fn encode_f16(src: &[f32]) -> Vec<u16> {
    src.iter().map(|&x| f32_to_f16_bits(x)).collect()
}

/// Decodes binary16 bits back to `f32` (exact per element).
pub fn decode_f16(src: &[u16]) -> Vec<f32> {
    src.iter().map(|&h| f16_bits_to_f32(h)).collect()
}

// ---------------------------------------------------------------------------
// MatRefI8
// ---------------------------------------------------------------------------

/// An immutable stride-aware int8 matrix view — the [`crate::MatRef`]
/// sibling for quantized operands. `at(i, j)` reads
/// `data[i * row_stride + j * col_stride]`; [`transpose`](MatRefI8::transpose)
/// is a stride swap, zero-copy.
#[derive(Clone, Copy, Debug)]
pub struct MatRefI8<'a> {
    data: &'a [i8],
    rows: usize,
    cols: usize,
    row_stride: usize,
    col_stride: usize,
}

impl<'a> MatRefI8<'a> {
    /// Row-major contiguous view of `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is shorter than `rows * cols`.
    pub fn new(data: &'a [i8], rows: usize, cols: usize) -> Self {
        assert!(
            data.len() >= rows * cols,
            "MatRefI8: slice of {} elements cannot hold {rows}x{cols}",
            data.len()
        );
        MatRefI8 {
            data,
            rows,
            cols,
            row_stride: cols,
            col_stride: 1,
        }
    }

    /// General strided view.
    ///
    /// # Panics
    ///
    /// Panics if the last addressable element falls outside `data`.
    pub fn with_strides(
        data: &'a [i8],
        rows: usize,
        cols: usize,
        row_stride: usize,
        col_stride: usize,
    ) -> Self {
        if rows > 0 && cols > 0 {
            let last = (rows - 1) * row_stride + (cols - 1) * col_stride;
            assert!(
                last < data.len(),
                "MatRefI8: {rows}x{cols} view with strides ({row_stride}, {col_stride}) \
                 exceeds slice of {} elements",
                data.len()
            );
        }
        MatRefI8 {
            data,
            rows,
            cols,
            row_stride,
            col_stride,
        }
    }

    /// The transposed view: swaps dims and strides. Zero-copy.
    pub fn transpose(self) -> Self {
        MatRefI8 {
            data: self.data,
            rows: self.cols,
            cols: self.rows,
            row_stride: self.col_stride,
            col_stride: self.row_stride,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the computed flat offset is out of bounds (debug builds
    /// additionally assert `i < rows && j < cols`).
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> i8 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j * self.col_stride]
    }

    /// Row `i` as a contiguous slice, if `col_stride == 1`.
    #[inline]
    fn contiguous_row(&self, i: usize) -> Option<&'a [i8]> {
        if self.col_stride == 1 {
            let base = i * self.row_stride;
            Some(&self.data[base..base + self.cols])
        } else {
            None
        }
    }

    /// Column `j` as a contiguous slice, if `row_stride == 1` (a
    /// transposed view of a row-major matrix).
    #[inline]
    fn contiguous_col(&self, j: usize) -> Option<&'a [i8]> {
        if self.row_stride == 1 {
            let base = j * self.col_stride;
            Some(&self.data[base..base + self.rows])
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// QTensor
// ---------------------------------------------------------------------------

/// A 2-D tensor stored as int8 codes with one symmetric `f32` scale per
/// row (per output channel): `value[i, j] ≈ data[i, j] · scales[i]`.
///
/// Weight memory is `rows·cols` bytes plus `4·rows` scale bytes — ~3.9×
/// smaller than f32 at ResNet-20 shapes. Codes lie in `[-127, 127]`.
///
/// # Example
///
/// ```
/// use qn_tensor::{QTensor, Tensor};
///
/// let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 4.0], &[2, 2]).unwrap();
/// let q = QTensor::quantize(&w);
/// let back = q.dequantize();
/// for (a, b) in w.data().iter().zip(back.data()) {
///     assert!((a - b).abs() <= q.scales().iter().cloned().fold(0.0, f32::max) * 0.5001);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct QTensor {
    data: Vec<i8>,
    scales: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl QTensor {
    /// Quantizes a 2-D tensor with per-row absmax calibration:
    /// `scale[i] = absmax(row i) / 127`. An all-zero row gets scale `0`
    /// and all-zero codes (dequantizing to exact zeros).
    ///
    /// Codes are produced by `qn_simd::quantize_to_i8`, bit-identical at
    /// every dispatch level.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not 2-D or holds non-finite values.
    pub fn quantize(t: &Tensor) -> QTensor {
        assert_eq!(t.ndim(), 2, "QTensor::quantize requires a 2-D tensor");
        let (rows, cols) = t.dims2();
        Self::quantize_rows(t.data(), rows, cols)
    }

    /// Quantizes a flat row-major `[rows, cols]` slice (the shape-free
    /// core of [`QTensor::quantize`], used by module quantizers that view
    /// conv weights as `[out_channels, patch]`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or any value is non-finite.
    pub fn quantize_rows(data: &[f32], rows: usize, cols: usize) -> QTensor {
        assert_eq!(
            data.len(),
            rows * cols,
            "QTensor: {} elements cannot hold {rows}x{cols}",
            data.len()
        );
        let mut codes = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for i in 0..rows {
            let row = &data[i * cols..(i + 1) * cols];
            let mut absmax = 0.0f32;
            for &x in row {
                assert!(x.is_finite(), "QTensor: non-finite weight {x}");
                let a = x.abs();
                if a > absmax {
                    absmax = a;
                }
            }
            if absmax > 0.0 {
                scales[i] = absmax / 127.0;
                qn_simd::quantize_to_i8(&mut codes[i * cols..(i + 1) * cols], row, 127.0 / absmax);
            }
            // absmax == 0: scale stays 0, codes stay 0.
        }
        QTensor {
            data: codes,
            scales,
            rows,
            cols,
        }
    }

    /// Rebuilds a `QTensor` from stored parts (checkpoint loading).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] if the lengths don't
    /// match the shape.
    pub fn from_parts(
        data: Vec<i8>,
        scales: Vec<f32>,
        rows: usize,
        cols: usize,
    ) -> Result<QTensor, TensorError> {
        if data.len() != rows * cols || scales.len() != rows {
            return Err(TensorError::InvalidCheckpoint {
                offset: 0,
                detail: format!(
                    "QTensor parts mismatch: {} codes + {} scales for {rows}x{cols}",
                    data.len(),
                    scales.len()
                ),
            });
        }
        Ok(QTensor {
            data,
            scales,
            rows,
            cols,
        })
    }

    /// Reconstructs the f32 tensor `codes[i, j] · scales[i]`.
    pub fn dequantize(&self) -> Tensor {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for i in 0..self.rows {
            let s = self.scales[i];
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &q) in out[i * self.cols..(i + 1) * self.cols].iter_mut().zip(row) {
                *o = q as f32 * s;
            }
        }
        Tensor::from_vec(out, &[self.rows, self.cols]).expect("shape consistent")
    }

    /// Zero-copy int8 view of the codes.
    pub fn mat(&self) -> MatRefI8<'_> {
        MatRefI8::new(&self.data, self.rows, self.cols)
    }

    /// The raw codes, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-row scales (`rows` entries).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Number of rows (output channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored bytes: one per code plus four per row scale.
    pub fn weight_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }

    /// Bytes the same matrix occupies in f32.
    pub fn f32_bytes(&self) -> usize {
        self.rows * self.cols * 4
    }
}

// ---------------------------------------------------------------------------
// gemm_i8
// ---------------------------------------------------------------------------

/// Int8 matrix product with f32 requantize epilogue:
/// `C[i, j] = (Σₚ A[i, p]·B[p, j]) · sa[i] · sb[j]`, `C` fully
/// overwritten.
///
/// `sa` holds A's per-row scales (length `m`), `sb` holds B's per-column
/// scales (length `n`); for the canonical `x · Wᵀ` layer product, pass
/// the activation row scales as `sa` and the weight per-channel scales
/// as `sb` (B being the transposed weight view, its columns are weight
/// rows). The epilogue is the fixed order `(acc as f32 · sa[i]) · sb[j]`.
///
/// **Bit-identical** across dispatch levels, kernel profiles, and thread
/// counts — integer accumulation is associative (see module docs). No
/// zero-skip machinery, also per the module docs.
///
/// # Panics
///
/// Panics on dimension mismatch, scale-length mismatch, or
/// `k > GEMM_I8_MAX_K` (i32 accumulator bound).
pub fn gemm_i8(c: MatMut<'_>, a: MatRefI8<'_>, b: MatRefI8<'_>, sa: &[f32], sb: &[f32]) {
    let k = a.cols();
    let (cdata, m, n, row_stride) = c.into_raw();
    assert_eq!(a.rows(), m, "gemm_i8: a has {} rows, c has {m}", a.rows());
    assert_eq!(
        b.rows(),
        k,
        "gemm_i8: a is {m}x{k} but b has {} rows",
        b.rows()
    );
    assert_eq!(b.cols(), n, "gemm_i8: b has {} cols, c has {n}", b.cols());
    assert_eq!(
        sa.len(),
        m,
        "gemm_i8: sa has {} scales for {m} rows",
        sa.len()
    );
    assert_eq!(
        sb.len(),
        n,
        "gemm_i8: sb has {} scales for {n} cols",
        sb.len()
    );
    assert!(
        k <= GEMM_I8_MAX_K,
        "gemm_i8: k = {k} exceeds the i32 accumulator bound {GEMM_I8_MAX_K}"
    );
    if m == 0 || n == 0 {
        return;
    }
    let len = (m - 1) * row_stride + n;
    let cdata = &mut cdata[..len];
    if k == 0 {
        for crow in cdata.chunks_mut(row_stride) {
            let w = n.min(crow.len());
            crow[..w].fill(0.0);
        }
        return;
    }
    // Pack B's columns contiguously unless the view already is (a
    // transposed row-major matrix — the weight case). The pack is shared
    // read-only by every band worker.
    let bt_packed: Option<Vec<i8>> = if b.contiguous_col(0).is_some() {
        None
    } else {
        let mut bt = scratch::take_i8(n * k);
        for j in 0..n {
            let dst = &mut bt[j * k..(j + 1) * k];
            for (p, d) in dst.iter_mut().enumerate() {
                *d = b.at(p, j);
            }
        }
        Some(bt)
    };
    let col_of = |j: usize| -> &[i8] {
        match &bt_packed {
            Some(bt) => &bt[j * k..(j + 1) * k],
            None => b.contiguous_col(j).expect("checked contiguous above"),
        }
    };
    let row_kernel = |i: usize, crow: &mut [f32]| {
        let crow = &mut crow[..n];
        // Row of A contiguously, packing through this worker's scratch
        // only when the view is strided.
        let (arow, apack) = match a.contiguous_row(i) {
            Some(r) => (r, None),
            None => {
                let mut buf = scratch::take_i8(k);
                for (p, d) in buf.iter_mut().enumerate() {
                    *d = a.at(i, p);
                }
                // borrow dance: move the buffer out, keep a raw range
                (&[][..], Some(buf))
            }
        };
        let arow: &[i8] = apack.as_deref().unwrap_or(arow);
        let si = sa[i];
        for (j, o) in crow.iter_mut().enumerate() {
            let acc = qn_simd::dot_i8(arow, col_of(j));
            *o = acc as f32 * si * sb[j];
        }
        if let Some(buf) = apack {
            scratch::give_i8(buf);
        }
    };
    if m * n * k >= PAR_MIN_MACS {
        qn_parallel::par_chunks_mut(cdata, row_stride, row_kernel);
    } else {
        for (i, crow) in cdata.chunks_mut(row_stride).enumerate() {
            row_kernel(i, crow);
        }
    }
    if let Some(bt) = bt_packed {
        scratch::give_i8(bt);
    }
}

/// The executable specification of [`gemm_i8`]: a plain sequential
/// triple loop with scalar i32 accumulation and the identical epilogue
/// order. Test-only reference, mirroring [`crate::mat::reference`].
pub fn gemm_i8_reference(
    out: &mut [f32],
    a: MatRefI8<'_>,
    b: MatRefI8<'_>,
    sa: &[f32],
    sb: &[f32],
) {
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    assert_eq!(out.len(), m * n, "gemm_i8_reference: output length");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += a.at(i, p) as i32 * b.at(p, j) as i32;
            }
            out[i * n + j] = acc as f32 * sa[i] * sb[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16 max
        assert_eq!(f32_to_f16_bits(65520.0), 0x7C00); // rounds to ∞
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xFC00);
        assert_eq!(f32_to_f16_bits(5.960_464_5e-8), 0x0001); // min subnormal
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000); // flushes
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1 + 2⁻¹¹ is exactly halfway between 1.0 and the next f16
        // (1 + 2⁻¹⁰); the tie goes to the even mantissa (1.0).
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_281_25), 0x3C00);
        // 1 + 3·2⁻¹¹ is halfway between odd and even; goes up to even.
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * 0.000_488_281_25), 0x3C02);
    }

    #[test]
    fn f16_roundtrip_is_identity_on_all_finite_f16() {
        for h in 0u16..=0xFFFF {
            let exp = (h >> 10) & 0x1F;
            if exp == 31 {
                continue; // ∞/NaN handled separately
            }
            let x = f16_bits_to_f32(h);
            assert_eq!(f32_to_f16_bits(x), h, "h = {h:#06x} → {x}");
        }
    }

    #[test]
    fn f16_decode_encode_slices() {
        let xs = vec![0.5, -1.25, 3.0e4, 1.0e-5];
        let back = decode_f16(&encode_f16(&xs));
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_error_is_bounded_by_half_scale() {
        let mut rng = Rng::seed_from(5);
        let t = Tensor::randn(&[7, 33], &mut rng);
        let q = QTensor::quantize(&t);
        let back = q.dequantize();
        for i in 0..7 {
            let bound = q.scales()[i] * 0.5001;
            for j in 0..33 {
                let d = (t.get(&[i, j]) - back.get(&[i, j])).abs();
                assert!(d <= bound, "row {i}: err {d} > {bound}");
            }
        }
    }

    #[test]
    fn zero_row_gets_zero_scale_and_exact_zeros() {
        let t = Tensor::from_vec(vec![0.0, 0.0, 1.0, -3.0], &[2, 2]).unwrap();
        let q = QTensor::quantize(&t);
        assert_eq!(q.scales()[0], 0.0);
        assert_eq!(&q.data()[..2], &[0, 0]);
        assert_eq!(q.dequantize().get(&[0, 0]), 0.0);
        // absmax hits the ±127 codes exactly
        assert_eq!(q.data()[3], -127);
    }

    #[test]
    fn weight_bytes_report_compression() {
        let q = QTensor::quantize(&Tensor::ones(&[16, 144]));
        assert_eq!(q.weight_bytes(), 16 * 144 + 16 * 4);
        assert_eq!(q.f32_bytes(), 16 * 144 * 4);
        assert!(q.f32_bytes() as f64 / q.weight_bytes() as f64 > 3.5);
    }

    #[test]
    fn gemm_i8_matches_reference_all_layouts() {
        let mut rng = Rng::seed_from(17);
        let (m, k, n) = (13, 29, 11);
        let a: Vec<i8> = (0..m * k)
            .map(|_| rng.uniform(-127.0, 127.0) as i8)
            .collect();
        let b: Vec<i8> = (0..k * n)
            .map(|_| rng.uniform(-127.0, 127.0) as i8)
            .collect();
        let sa: Vec<f32> = (0..m).map(|i| 0.01 + i as f32 * 1e-3).collect();
        let sb: Vec<f32> = (0..n).map(|j| 0.02 + j as f32 * 1e-3).collect();
        let av = MatRefI8::new(&a, m, k);
        // b stored as [n, k] row-major, viewed transposed (weight layout)
        let bt = MatRefI8::new(&b, n, k).transpose();
        let mut want = vec![0.0f32; m * n];
        gemm_i8_reference(&mut want, av, bt, &sa, &sb);
        let mut got = vec![0.0f32; m * n];
        gemm_i8(MatMut::new(&mut got, m, n), av, bt, &sa, &sb);
        assert_eq!(got, want, "transposed-B (contiguous-col) path");
        // b stored row-major [k, n]: forces the packing path
        let bk: Vec<i8> = (0..k * n)
            .map(|_| rng.uniform(-127.0, 127.0) as i8)
            .collect();
        let bv = MatRefI8::new(&bk, k, n);
        gemm_i8_reference(&mut want, av, bv, &sa, &sb);
        gemm_i8(MatMut::new(&mut got, m, n), av, bv, &sa, &sb);
        assert_eq!(got, want, "row-major-B (packed) path");
    }

    #[test]
    fn gemm_i8_k_zero_zero_fills() {
        let mut out = vec![7.0f32; 6];
        gemm_i8(
            MatMut::new(&mut out, 2, 3),
            MatRefI8::new(&[], 2, 0),
            MatRefI8::new(&[], 0, 3),
            &[1.0, 1.0],
            &[1.0, 1.0, 1.0],
        );
        assert_eq!(out, [0.0; 6]);
    }

    #[test]
    fn gemm_i8_strided_destination_leaves_gap() {
        let a = [1i8, 0, 0, 1];
        let b = [5i8, 6, 7, 8];
        let mut out = vec![-1.0f32; 8];
        gemm_i8(
            MatMut::with_row_stride(&mut out, 2, 2, 4),
            MatRefI8::new(&a, 2, 2),
            MatRefI8::new(&b, 2, 2).transpose().transpose(),
            &[1.0, 1.0],
            &[1.0, 1.0],
        );
        assert_eq!(out, [5.0, 6.0, -1.0, -1.0, 7.0, 8.0, -1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "gemm_i8: a is")]
    fn gemm_i8_dim_mismatch_panics() {
        let mut out = vec![0.0f32; 4];
        gemm_i8(
            MatMut::new(&mut out, 2, 2),
            MatRefI8::new(&[0; 6], 2, 3),
            MatRefI8::new(&[0; 8], 4, 2),
            &[1.0; 2],
            &[1.0; 2],
        );
    }
}
