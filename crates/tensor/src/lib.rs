//! # qn-tensor
//!
//! Dense, contiguous, row-major `f32` tensors and the numeric kernels the rest
//! of the `quadranet` workspace builds on: matrix multiplication, im2col
//! convolution, pooling, broadcasting helpers and reductions.
//!
//! The crate is deliberately small and dependency-free (only `rand` for
//! initialization) so that the quadratic-neuron library reproduces the paper's
//! system from scratch rather than delegating to an existing framework.
//!
//! # Example
//!
//! ```
//! use qn_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), qn_tensor::TensorError> {
//! let mut rng = Rng::seed_from(42);
//! let a = Tensor::randn(&[2, 3], &mut rng);
//! let b = Tensor::randn(&[3, 4], &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape().dims(), &[2, 4]);
//! let back = Tensor::from_vec(vec![1.0; 8], &[2, 4])?;
//! let grad_a = back.matmul_transb(&b); // dC/dA = gB^T
//! assert_eq!(grad_a.shape().dims(), &[2, 3]);
//! # Ok(())
//! # }
//! ```

mod conv;
mod error;
mod pool;
mod rng;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, Conv2dSpec};
pub use error::TensorError;
pub use pool::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, PoolSpec};
pub use rng::Rng;
pub use shape::Shape;
pub use tensor::Tensor;
