//! # qn-tensor
//!
//! Dense, contiguous, row-major `f32` tensors and the numeric kernels the rest
//! of the `quadranet` workspace builds on: matrix multiplication, im2col
//! convolution, pooling, broadcasting helpers and reductions.
//!
//! The crate is deliberately small and dependency-free (only `rand` for
//! initialization) so that the quadratic-neuron library reproduces the paper's
//! system from scratch rather than delegating to an existing framework.
//!
//! # Layout, views, and determinism
//!
//! [`Tensor`] owns a dense, contiguous, **row-major** buffer. On top of that
//! single layout sit the stride-aware matrix views [`MatRef`]/[`MatMut`]:
//! a matrix is `(data, rows, cols, row_stride, col_stride)`, so transposition
//! ([`MatRef::transpose`]) is a stride swap and slicing one batch element out
//! of a `[N, M, K]` buffer is a subslice — **zero-copy** either way. Every
//! matrix product in the workspace (`matmul`, `matmul_transa`,
//! `matmul_transb`, the batched attention products, the im2col product
//! inside `conv2d`, the `qn-linalg` reconstructions) routes through the one
//! packed, register-tiled [`gemm`] core behind those views.
//!
//! Two invariants hold everywhere and are enforced by the workspace's
//! property suites:
//!
//! - **Determinism:** the `k`-accumulation of every output element is
//!   strictly sequential, and parallelism only ever splits disjoint output
//!   regions — results are **bit-identical at any thread count**, and
//!   bit-identical to the seed naive kernels (retained in [`reference`](mod@reference) as
//!   the executable specification).
//! - **IEEE-754 exactness:** the zero-coefficient skip is
//!   finiteness-guarded once, at the GEMM packing step, so `0 × NaN = NaN`
//!   and `0 × ∞ = NaN` propagate instead of being silently swallowed.
//!
//! # Example
//!
//! ```
//! use qn_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), qn_tensor::TensorError> {
//! let mut rng = Rng::seed_from(42);
//! let a = Tensor::randn(&[2, 3], &mut rng);
//! let b = Tensor::randn(&[3, 4], &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape().dims(), &[2, 4]);
//! let back = Tensor::from_vec(vec![1.0; 8], &[2, 4])?;
//! let grad_a = back.matmul_transb(&b); // dC/dA = gB^T
//! assert_eq!(grad_a.shape().dims(), &[2, 3]);
//! # Ok(())
//! # }
//! ```

mod conv;
mod error;
mod mat;
mod pool;
mod rng;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, Conv2dSpec};
pub use error::TensorError;
pub use mat::{gemm, gemm_batched, reference, MatMut, MatRef};
pub use pool::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, PoolSpec};
pub use rng::Rng;
pub use shape::Shape;
pub use tensor::Tensor;
