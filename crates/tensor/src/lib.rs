//! # qn-tensor
//!
//! Dense, contiguous, row-major `f32` tensors and the numeric kernels the rest
//! of the `quadranet` workspace builds on: matrix multiplication, im2col
//! convolution, pooling, broadcasting helpers and reductions.
//!
//! The crate is deliberately small and dependency-free (only `rand` for
//! initialization) so that the quadratic-neuron library reproduces the paper's
//! system from scratch rather than delegating to an existing framework.
//!
//! # Layout, views, and determinism
//!
//! [`Tensor`] owns a dense, contiguous, **row-major** buffer. On top of that
//! single layout sit the stride-aware matrix views [`MatRef`]/[`MatMut`]:
//! a matrix is `(data, rows, cols, row_stride, col_stride)`, so transposition
//! ([`MatRef::transpose`]) is a stride swap and slicing one batch element out
//! of a `[N, M, K]` buffer is a subslice — **zero-copy** either way. Every
//! matrix product in the workspace (`matmul`, `matmul_transa`,
//! `matmul_transb`, the batched attention products, the im2col product
//! inside `conv2d`, the `qn-linalg` reconstructions) routes through the one
//! packed, register-tiled [`gemm`] core behind those views.
//!
//! Two invariants hold everywhere and are enforced by the workspace's
//! property suites:
//!
//! - **Determinism:** the `k`-accumulation of every output element is
//!   strictly sequential, and parallelism only ever splits disjoint output
//!   regions — results are **bit-identical at any thread count**, and
//!   bit-identical to the seed naive kernels (retained in [`reference`](mod@reference) as
//!   the executable specification).
//! - **IEEE-754 exactness:** the zero-coefficient skip is
//!   finiteness-guarded once, at the GEMM packing step, so `0 × NaN = NaN`
//!   and `0 × ∞ = NaN` propagate instead of being silently swallowed.
//!
//! # Storage: owned, pooled, and mapped buffers
//!
//! A tensor's buffer is a [`Storage`] — one of three variants behind a
//! single `Deref<Target = [f32]>` surface, so kernels never care which one
//! they are reading:
//!
//! - [`Storage::Owned`] — a plain `Vec<f32>`; every ordinary constructor
//!   produces this.
//! - [`Storage::Pooled`] — a [`PoolRef`] on loan from a [`BufferPool`],
//!   returned on drop.
//! - [`Storage::Mapped`] — a shared, immutable window into a memory-mapped
//!   checkpoint file ([`Mmap`]): the tensor **borrows the file's bytes with
//!   zero copies**, cloning bumps an `Arc`, and the first in-place write
//!   copies-on-write into an owned buffer. This is how `Checkpoint::
//!   tensor_mapped` loads model weights without touching the allocator
//!   (cold-start loading is bounded by I/O, not memcpy).
//!
//! The [`checkpoint`] module defines the versioned on-disk container
//! (magic + version + CRC-32 + JSON-ish header + 64-byte-aligned raw
//! little-endian `f32` blobs) that [`Storage::Mapped`] windows into; see
//! its docs for the wire format and validation guarantees.
//!
//! # Pooling and in-place ops
//!
//! Allocation is the workspace's second hot-path cost after FLOPs, so the
//! crate ships a buffer-recycling layer:
//!
//! - [`BufferPool`] — thread-safe, size-bucketed free lists of `Vec`
//!   storage with hit/miss/return counters ([`BufferPool::stats`]) and an
//!   RAII handout ([`PoolRef`], used by the fused eager conv for its patch
//!   matrix). One global instance ([`BufferPool::global`]) backs default
//!   `EagerExec` arenas; per-session instances isolate serving loops
//!   (`InferenceSession` in `qn-models`). The [`gemm`] packing scratch
//!   recycles through **per-thread** caches instead, so parallel workers
//!   never touch a pool lock.
//! - [`Tensor::from_pooled`] / [`Tensor::into_pool`] round-trip a tensor's
//!   data *and* shape storage through a pool; [`Tensor::refit`] reshapes a
//!   tensor in place reusing its own buffers (the `EagerExec` arena's
//!   workhorse).
//! - In-place and into-buffer elementwise kernels —
//!   [`Tensor::map_inplace`], [`Tensor::zip_inplace`], [`Tensor::axpy`],
//!   and the slice-level [`elemwise`] module — share one parallel banding
//!   rule with the allocating [`Tensor::map`]/[`Tensor::zip`], so every
//!   variant is **bit-identical**.
//!
//! Recycled buffers carry **unspecified contents**: every consumer either
//! fully overwrites or zero-fills. The `pool_equivalence.rs` property
//! suite pre-poisons pools with NaN and asserts pooled execution equals
//! fresh-allocation execution bit for bit.
//!
//! # Example
//!
//! ```
//! use qn_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), qn_tensor::TensorError> {
//! let mut rng = Rng::seed_from(42);
//! let a = Tensor::randn(&[2, 3], &mut rng);
//! let b = Tensor::randn(&[3, 4], &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape().dims(), &[2, 4]);
//! let back = Tensor::from_vec(vec![1.0; 8], &[2, 4])?;
//! let grad_a = back.matmul_transb(&b); // dC/dA = gB^T
//! assert_eq!(grad_a.shape().dims(), &[2, 3]);
//! # Ok(())
//! # }
//! ```

mod bufpool;
pub mod checkpoint;
mod conv;
pub mod elemwise;
mod error;
mod mat;
mod mmap;
mod pool;
pub mod quant;
mod rng;
mod shape;
mod storage;
mod tensor;

pub use bufpool::{BufferPool, PoolRef, PoolStats};
pub use checkpoint::{
    Checkpoint, CheckpointWriter, DType, TensorEntry, CHECKPOINT_VERSION, CHECKPOINT_VERSION_F32,
};
pub use conv::{col2im, im2col, im2col_into, Conv2dSpec};
pub use error::TensorError;
pub use mat::{gemm, gemm_batched, reference, MatMut, MatRef};
pub use mmap::Mmap;
pub use pool::{
    avg_pool2d, avg_pool2d_backward, avg_pool2d_into, max_pool2d, max_pool2d_backward,
    max_pool2d_into, PoolSpec,
};
pub use quant::{
    decode_f16, encode_f16, f16_bits_to_f32, f32_to_f16_bits, gemm_i8, gemm_i8_reference, MatRefI8,
    QTensor, GEMM_I8_MAX_K,
};
pub use rng::Rng;
pub use shape::Shape;
pub use storage::Storage;
pub use tensor::Tensor;
