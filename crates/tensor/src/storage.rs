//! Owned-vs-borrowed tensor storage.
//!
//! [`Storage`] is the single buffer type behind [`Tensor`](crate::Tensor):
//! a contiguous run of `f32`s that is either **owned** (a plain `Vec`),
//! **pooled** (a [`PoolRef`] that returns to its [`BufferPool`] on drop), or
//! **mapped** (a shared window into an [`Mmap`](crate::Mmap), so a parameter
//! tensor can borrow its bytes straight out of a checkpoint file with zero
//! copies). All reads go through `Deref<Target = [f32]>`; mutation goes
//! through `DerefMut`, which transparently **copies-on-write** a mapped
//! buffer into an owned one — mapped storage is immutable by construction
//! (many tensors may share one mapping), so the first in-place write
//! privatizes the bytes.

use crate::bufpool::{BufferPool, PoolRef};
use crate::mmap::Mmap;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// The buffer behind a [`Tensor`](crate::Tensor): owned, pooled, or a
/// zero-copy window into a memory-mapped checkpoint.
///
/// See the module docs above for the ownership and copy-on-write rules.
#[derive(Debug)]
pub enum Storage {
    /// A plain owned heap buffer — the default for every constructor.
    Owned(Vec<f32>),
    /// A buffer on loan from a [`BufferPool`]; dropping it returns the
    /// storage to the pool.
    Pooled(PoolRef),
    /// A shared, immutable window of `len` elements starting `offset`
    /// **bytes** into a mapping. Cloning is an `Arc` bump (no data copy);
    /// writing copies-on-write into [`Storage::Owned`].
    Mapped {
        /// The mapping the window borrows from (kept alive by this handle).
        map: Arc<Mmap>,
        /// Byte offset of the first element (4-byte aligned).
        offset: usize,
        /// Number of `f32` elements in the window.
        len: usize,
    },
}

impl Storage {
    /// Read-only view of the elements.
    pub fn as_slice(&self) -> &[f32] {
        match self {
            Storage::Owned(v) => v,
            Storage::Pooled(p) => p,
            Storage::Mapped { map, offset, len } => map
                .f32_slice(*offset, *len)
                .expect("mapped storage window was validated at construction"),
        }
    }

    /// `true` if this storage borrows a memory mapping (zero-copy loaded).
    pub fn is_mapped(&self) -> bool {
        matches!(self, Storage::Mapped { .. })
    }

    /// Ensures the storage is [`Storage::Owned`], copying mapped bytes and
    /// detaching pooled buffers as needed.
    fn make_owned(&mut self) {
        match self {
            Storage::Owned(_) => {}
            Storage::Pooled(p) => {
                let v = std::mem::replace(p, PoolRef::detached()).into_vec();
                *self = Storage::Owned(v);
            }
            Storage::Mapped { .. } => *self = Storage::Owned(self.as_slice().to_vec()),
        }
    }

    /// Resizes to `len` elements (new elements are `fill`), privatizing
    /// non-owned storage first. Same-length calls on owned buffers are
    /// free — the `Tensor::refit` fast path.
    pub(crate) fn resize(&mut self, len: usize, fill: f32) {
        if let Storage::Owned(v) = self {
            if v.len() != len {
                v.resize(len, fill);
            }
            return;
        }
        if self.as_slice().len() == len && !self.is_mapped() {
            return;
        }
        self.make_owned();
        if let Storage::Owned(v) = self {
            v.resize(len, fill);
        }
    }

    /// Consumes the storage, returning an owned buffer (detaching it from
    /// a pool, or copying it out of a mapping).
    pub fn into_vec(self) -> Vec<f32> {
        match self {
            Storage::Owned(v) => v,
            Storage::Pooled(p) => p.into_vec(),
            Storage::Mapped { .. } => self.as_slice().to_vec(),
        }
    }

    /// Hands the buffer to `pool` for reuse. Pooled storage returns to
    /// **its own** pool (via drop); mapped storage has nothing to give.
    pub(crate) fn give_to(self, pool: &BufferPool) {
        match self {
            Storage::Owned(v) => pool.give_f32(v),
            Storage::Pooled(p) => drop(p),
            Storage::Mapped { .. } => {}
        }
    }
}

impl From<Vec<f32>> for Storage {
    fn from(v: Vec<f32>) -> Self {
        Storage::Owned(v)
    }
}

impl From<PoolRef> for Storage {
    fn from(p: PoolRef) -> Self {
        Storage::Pooled(p)
    }
}

impl Deref for Storage {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl DerefMut for Storage {
    /// Mutable access; **copies-on-write** mapped storage into an owned
    /// buffer first (pooled and owned buffers mutate in place).
    fn deref_mut(&mut self) -> &mut [f32] {
        if self.is_mapped() {
            self.make_owned();
        }
        match self {
            Storage::Owned(v) => v,
            Storage::Pooled(p) => p,
            Storage::Mapped { .. } => unreachable!("mapped storage was privatized above"),
        }
    }
}

impl Clone for Storage {
    /// Owned and pooled buffers clone by copying into a fresh owned buffer;
    /// mapped windows clone by bumping the mapping's `Arc` — **zero copy**,
    /// which is what keeps `Parameter::value()` snapshots of mmap-loaded
    /// weights free.
    fn clone(&self) -> Self {
        match self {
            Storage::Mapped { map, offset, len } => Storage::Mapped {
                map: Arc::clone(map),
                offset: *offset,
                len: *len,
            },
            other => Storage::Owned(other.as_slice().to_vec()),
        }
    }
}

impl PartialEq for Storage {
    /// Element-wise equality of the viewed slices (the variant does not
    /// participate: an owned and a mapped buffer with equal contents are
    /// equal).
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip() {
        let mut s = Storage::from(vec![1.0f32, 2.0, 3.0]);
        assert_eq!(&s[..], &[1.0, 2.0, 3.0]);
        s[1] = 5.0;
        assert_eq!(s.clone().into_vec(), vec![1.0, 5.0, 3.0]);
    }

    #[test]
    fn pooled_detaches_on_into_vec() {
        let pool = Arc::new(BufferPool::new());
        let r = BufferPool::take_ref(&pool, 4);
        let s = Storage::from(r);
        assert_eq!(s.as_slice().len(), 4);
        let v = s.into_vec();
        assert_eq!(v.len(), 4);
        // detached: nothing returned to the pool
        assert_eq!(pool.stats().returns, 0);
    }

    #[test]
    fn pooled_drop_returns_to_its_pool() {
        let pool = Arc::new(BufferPool::new());
        let other = BufferPool::new();
        let s = Storage::from(BufferPool::take_ref(&pool, 8));
        s.give_to(&other);
        assert_eq!(pool.stats().returns, 1, "returns to the owning pool");
        assert_eq!(other.stats().returns, 0);
    }

    #[test]
    fn mapped_clone_is_zero_copy_and_write_privatizes() {
        let bytes: Vec<u8> = [1.0f32, 2.0, 3.0, 4.0]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let map = Arc::new(Mmap::from_bytes(bytes));
        let mut s = Storage::Mapped {
            map: Arc::clone(&map),
            offset: 4,
            len: 2,
        };
        assert!(s.is_mapped());
        assert_eq!(&s[..], &[2.0, 3.0]);
        let c = s.clone();
        assert!(c.is_mapped(), "clone shares the mapping");
        // first write copies-on-write; the mapping is untouched
        s[0] = 9.0;
        assert!(!s.is_mapped());
        assert_eq!(&s[..], &[9.0, 3.0]);
        assert_eq!(&c[..], &[2.0, 3.0]);
    }
}
