use crate::{tensor::PAR_MIN_ELEMS, Tensor};

/// Geometry of a 2-D pooling window (square, non-padded).
///
/// # Example
///
/// ```
/// use qn_tensor::PoolSpec;
///
/// let spec = PoolSpec::new(2, 2);
/// assert_eq!(spec.output_hw(8, 8), (4, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Window side length.
    pub window: usize,
    /// Stride in both directions.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pooling spec.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `stride == 0`.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(
            window > 0 && stride > 0,
            "window and stride must be positive"
        );
        PoolSpec { window, stride }
    }

    /// Output spatial size for an `h × w` input.
    ///
    /// # Panics
    ///
    /// Panics if the input is smaller than the window.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.window && w >= self.window,
            "input {h}x{w} smaller than window {}",
            self.window
        );
        (
            (h - self.window) / self.stride + 1,
            (w - self.window) / self.stride + 1,
        )
    }
}

/// Max pooling over `[B, C, H, W]`; returns the pooled tensor and the flat
/// argmax index of each output element (for the backward pass).
///
/// # Panics
///
/// Panics if `input` is not 4-D or smaller than the window.
pub fn max_pool2d(input: &Tensor, spec: PoolSpec) -> (Tensor, Vec<usize>) {
    let (b, c, h, w) = input.dims4();
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(&[b, c, oh, ow]);
    let mut arg = vec![0usize; b * c * oh * ow];
    let data = input.data();
    // One unit per (batch, channel) plane: pooled values and argmax indices
    // for a plane are disjoint output slabs, so the sweep parallelizes over
    // `b·c` with identical per-plane results at any thread count.
    qn_parallel::par_chunks_mut_pair_min(
        out.data_mut(),
        oh * ow,
        &mut arg,
        oh * ow,
        PAR_MIN_ELEMS,
        |plane, out_plane, arg_plane| {
            let img = plane * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..spec.window {
                        for kx in 0..spec.window {
                            let iy = oy * spec.stride + ky;
                            let ix = ox * spec.stride + kx;
                            let idx = img + iy * w + ix;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = oy * ow + ox;
                    out_plane[o] = best;
                    arg_plane[o] = best_idx;
                }
            }
        },
    );
    (out, arg)
}

/// Values-only [`max_pool2d`] into a caller-provided buffer of
/// `B·C·OH·OW` elements (fully overwritten) — the inference path, which
/// never needs the argmax indices and so skips their allocation entirely.
/// Bit-identical to the values returned by [`max_pool2d`].
///
/// # Panics
///
/// Panics if `input` is not 4-D, smaller than the window, or `dst` has the
/// wrong length.
pub fn max_pool2d_into(dst: &mut [f32], input: &Tensor, spec: PoolSpec) {
    let (b, c, h, w) = input.dims4();
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(
        dst.len(),
        b * c * oh * ow,
        "max_pool2d_into length mismatch"
    );
    let data = input.data();
    // Same plane split and scan order as max_pool2d.
    qn_parallel::par_chunks_mut_min(dst, oh * ow, PAR_MIN_ELEMS, |plane, out_plane| {
        let img = plane * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        let iy = oy * spec.stride + ky;
                        let ix = ox * spec.stride + kx;
                        let v = data[img + iy * w + ix];
                        if v > best {
                            best = v;
                        }
                    }
                }
                out_plane[oy * ow + ox] = best;
            }
        }
    });
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// winning input position.
///
/// # Panics
///
/// Panics if `grad.numel() != argmax.len()`.
pub fn max_pool2d_backward(
    grad: &Tensor,
    argmax: &[usize],
    input_dims: (usize, usize, usize, usize),
) -> Tensor {
    assert_eq!(grad.numel(), argmax.len(), "grad/argmax length mismatch");
    let (b, c, h, w) = input_dims;
    let mut out = Tensor::zeros(&[b, c, h, w]);
    for (g, &idx) in grad.data().iter().zip(argmax.iter()) {
        out.data_mut()[idx] += g;
    }
    out
}

/// Average pooling over `[B, C, H, W]`.
///
/// # Panics
///
/// Panics if `input` is not 4-D or smaller than the window.
pub fn avg_pool2d(input: &Tensor, spec: PoolSpec) -> Tensor {
    let (b, c, h, w) = input.dims4();
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(&[b, c, oh, ow]);
    avg_pool2d_into(out.data_mut(), input, spec);
    out
}

/// [`avg_pool2d`] into a caller-provided buffer of `B·C·OH·OW` elements
/// (fully overwritten). Bit-identical to the allocating version.
///
/// # Panics
///
/// Panics if `input` is not 4-D, smaller than the window, or `dst` has the
/// wrong length.
pub fn avg_pool2d_into(dst: &mut [f32], input: &Tensor, spec: PoolSpec) {
    let (b, c, h, w) = input.dims4();
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(
        dst.len(),
        b * c * oh * ow,
        "avg_pool2d_into length mismatch"
    );
    let norm = 1.0 / (spec.window * spec.window) as f32;
    let data = input.data();
    // Parallel over (batch, channel) planes; window sums stay sequential.
    qn_parallel::par_chunks_mut_min(dst, oh * ow, PAR_MIN_ELEMS, |plane, out_plane| {
        let img = plane * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        acc += data[img + (oy * spec.stride + ky) * w + ox * spec.stride + kx];
                    }
                }
                out_plane[oy * ow + ox] = acc * norm;
            }
        }
    });
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient uniformly
/// over its window.
///
/// # Panics
///
/// Panics if `grad`'s spatial dims are inconsistent with the geometry.
pub fn avg_pool2d_backward(
    grad: &Tensor,
    spec: PoolSpec,
    input_dims: (usize, usize, usize, usize),
) -> Tensor {
    let (b, c, h, w) = input_dims;
    let (oh, ow) = spec.output_hw(h, w);
    let (gb, gc, goh, gow) = grad.dims4();
    assert_eq!((gb, gc, goh, gow), (b, c, oh, ow), "grad geometry mismatch");
    let mut out = Tensor::zeros(&[b, c, h, w]);
    let norm = 1.0 / (spec.window * spec.window) as f32;
    let gdata = grad.data();
    // Overlapping windows accumulate only within their own plane, so the
    // scatter parallelizes over (batch, channel) planes with the in-plane
    // accumulation order unchanged.
    qn_parallel::par_chunks_mut_min(out.data_mut(), h * w, PAR_MIN_ELEMS, |plane, out_plane| {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = gdata[(plane * oh + oy) * ow + ox] * norm;
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        out_plane[(oy * spec.stride + ky) * w + ox * spec.stride + kx] += g;
                    }
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn max_pool_known_values() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (y, arg) = max_pool2d(&x, PoolSpec::new(2, 2));
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let (_, arg) = max_pool2d(&x, PoolSpec::new(2, 2));
        let g = Tensor::from_vec(vec![2.5], &[1, 1, 1, 1]).unwrap();
        let back = max_pool2d_backward(&g, &arg, (1, 1, 2, 2));
        assert_eq!(back.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_known_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = avg_pool2d(&x, PoolSpec::new(2, 2));
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn avg_pool_backward_spreads() {
        let g = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap();
        let back = avg_pool2d_backward(&g, PoolSpec::new(2, 2), (1, 1, 2, 2));
        assert_eq!(back.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_via_window() {
        let mut rng = Rng::seed_from(20);
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        let y = avg_pool2d(&x, PoolSpec::new(4, 4));
        assert_eq!(y.shape().dims(), &[2, 3, 1, 1]);
        for bi in 0..2 {
            for ci in 0..3 {
                let manual = x.slice_axis(0, bi, bi + 1).slice_axis(1, ci, ci + 1).mean();
                assert!((y.get(&[bi, ci, 0, 0]) - manual).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn avg_pool_adjoint_property() {
        let mut rng = Rng::seed_from(21);
        let dims = (2usize, 2usize, 6usize, 6usize);
        let spec = PoolSpec::new(2, 2);
        let x = Tensor::randn(&[dims.0, dims.1, dims.2, dims.3], &mut rng);
        let y = avg_pool2d(&x, spec);
        let g = Tensor::randn(y.shape().dims(), &mut rng);
        let lhs = y.dot(&g);
        let rhs = x.dot(&avg_pool2d_backward(&g, spec, dims));
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "smaller than window")]
    fn pool_window_too_large_panics() {
        PoolSpec::new(4, 1).output_hw(3, 3);
    }
}
