//! Stride-aware matrix views and the packed GEMM core.
//!
//! Every matrix product in the workspace — `Tensor::{matmul, matmul_transa,
//! matmul_transb}`, the batched products behind attention, the im2col
//! product behind `conv2d`, and the `qn-linalg` reconstructions — bottoms
//! out in the single [`gemm`] kernel defined here, following the classic
//! layered BLAS design (Goto & van de Geijn, "Anatomy of High-Performance
//! Matrix Multiplication"):
//!
//! - [`MatRef`]/[`MatMut`] describe a matrix as `(data, rows, cols,
//!   strides)` over a borrowed `f32` slice, so **transposition is a stride
//!   swap** ([`MatRef::transpose`]) and slicing a batch element out of a
//!   contiguous `[N, M, K]` buffer is a subslice — no copies anywhere on the
//!   way into the kernel.
//! - [`gemm`] packs the right-hand side into contiguous column panels,
//!   packs the left-hand side into register-block tiles, and drives an
//!   `MR × NR` register-tiled micro-kernel with an `NR`-unrolled inner
//!   loop. Large products are parallelized over disjoint output-row bands
//!   on the `qn-parallel` pool.
//!
//! # Determinism
//!
//! The `k`-accumulation for every output element is **strictly sequential**
//! (`p = 0, 1, …, k-1`), in the packed path, the small fallback path, and at
//! any thread count. Together with the zero-skip analysis below this makes
//! every product **bit-identical** to the seed triple-loop kernels (retained
//! in [`reference`](mod@reference)) — the property suites in `crates/tensor/tests/`
//! enforce the equality across shapes, transpose flags and thread counts.
//!
//! # Kernel profiles
//!
//! Under the default `qn_simd::KernelProfile::Exact` everything above holds
//! unconditionally: the scalar micro-kernel runs unchanged at every
//! `QN_SIMD` level. Under the opt-in `Fast` profile the packed path swaps
//! in a vectorized micro-kernel ([`run_band_fast_g`]) built on
//! `qn_simd::arch::SimdF32`: each lane still accumulates its output element
//! strictly sequentially over `k` — there is **no reassociation** — so the
//! only divergence from the exact kernel is FMA fusing (one rounding per
//! multiply-add instead of two) on ISAs that fuse. Results are
//! ULP-bounded against [`reference`](mod@reference)
//! (`crates/tensor/tests/gemm_fast_profile.rs`), and the fallback path for
//! small/skinny products stays exact under both profiles. The fast kernel
//! drops the zero-skip machinery (and its `contains_zero` pre-scan):
//! skipping exists to spare scalar MACs, which vector FMA makes free.
//!
//! # The finiteness-guarded zero skip
//!
//! A `0.0` coefficient in `A` may only skip its row of `B` when that row is
//! entirely finite (`0 × NaN = NaN` and `0 × ∞ = NaN` must propagate —
//! see the PR 3 regression suites). The guard lives in exactly one place:
//! the B-packing step computes a per-`k`-row finiteness mask in the same
//! pass that packs the panel, and the micro-kernel consults it before
//! skipping an all-zero register block. Skipping is IEEE-754-exact: an
//! accumulator chain that starts at `+0.0` can never reach `-0.0` (for
//! finite `x`, `x + (-x) = +0.0` and `+0.0 + ±0.0 = +0.0`), so dropping
//! `±0.0` products leaves every bit of the result unchanged.

use crate::Tensor;
#[cfg(target_arch = "x86_64")]
use qn_simd::arch::{Avx2F32, Sse2F32};
use qn_simd::arch::{ScalarF32, SimdF32};
use qn_simd::{KernelProfile, SimdLevel};

/// Rows per register block of the micro-kernel.
const MR: usize = 4;
/// Columns per packed panel / register block; the inner loop is unrolled
/// over `NR` so the compiler can keep the whole `MR × NR` accumulator block
/// in vector registers.
const NR: usize = 8;

/// Minimum multiply–accumulate count before [`gemm`] packs; below this the
/// packing traffic costs more than it saves and the strided fallback runs.
const PACK_MIN_MACS: usize = 2048;

/// Minimum multiply–accumulate count before a product fans out to the
/// `qn-parallel` pool (the seed kernels' threshold, unchanged; shared
/// with the int8 sibling in `quant`).
pub(crate) const PAR_MIN_MACS: usize = 32 * 1024;

/// An immutable stride-aware matrix view over a borrowed `f32` slice.
///
/// `at(i, j)` reads `data[i * row_stride + j * col_stride]`; a row-major
/// matrix has `row_stride = cols, col_stride = 1`. Because the layout is
/// explicit, [`transpose`](MatRef::transpose) is a stride swap — **no
/// copy** — and a batch element of a contiguous 3-D tensor is a plain
/// subslice.
///
/// # Example
///
/// ```
/// use qn_tensor::{MatRef, MatMut, gemm, Tensor};
///
/// # fn main() -> Result<(), qn_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// let at = a.mat().transpose(); // zero-copy 3×2 view
/// assert_eq!(at.at(2, 1), 6.0);
/// let mut out = vec![0.0; 9];
/// gemm(MatMut::new(&mut out, 3, 3), at, a.mat()); // aᵀ @ a
/// assert_eq!(out[0], 1.0 * 1.0 + 4.0 * 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MatRef<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    row_stride: usize,
    col_stride: usize,
}

impl<'a> MatRef<'a> {
    /// Row-major contiguous view of `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is shorter than `rows * cols`.
    pub fn new(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert!(
            data.len() >= rows * cols,
            "MatRef: slice of {} elements cannot hold {rows}x{cols}",
            data.len()
        );
        MatRef {
            data,
            rows,
            cols,
            row_stride: cols,
            col_stride: 1,
        }
    }

    /// General strided view.
    ///
    /// # Panics
    ///
    /// Panics if the last addressable element
    /// (`(rows-1)·row_stride + (cols-1)·col_stride`) falls outside `data`.
    pub fn with_strides(
        data: &'a [f32],
        rows: usize,
        cols: usize,
        row_stride: usize,
        col_stride: usize,
    ) -> Self {
        if rows > 0 && cols > 0 {
            let last = (rows - 1) * row_stride + (cols - 1) * col_stride;
            assert!(
                last < data.len(),
                "MatRef: {rows}x{cols} view with strides ({row_stride}, {col_stride}) \
                 exceeds slice of {} elements",
                data.len()
            );
        }
        MatRef {
            data,
            rows,
            cols,
            row_stride,
            col_stride,
        }
    }

    /// The transposed view: swaps dims and strides. Zero-copy.
    pub fn transpose(self) -> Self {
        MatRef {
            data: self.data,
            rows: self.cols,
            cols: self.rows,
            row_stride: self.col_stride,
            col_stride: self.row_stride,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the computed flat offset is out of bounds (debug builds
    /// additionally assert `i < rows && j < cols`).
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j * self.col_stride]
    }

    /// `true` when the view is dense row-major (`row_stride == cols`,
    /// `col_stride == 1`).
    pub fn is_contiguous(&self) -> bool {
        self.col_stride == 1 && self.row_stride == self.cols
    }

    /// `true` if any viewed element is (positive or negative) zero — the
    /// pre-scan deciding whether the zero-skip machinery is worth enabling.
    fn contains_zero(&self) -> bool {
        if self.is_contiguous() {
            return self.data[..self.rows * self.cols].contains(&0.0);
        }
        (0..self.rows).any(|i| (0..self.cols).any(|j| self.at(i, j) == 0.0))
    }
}

/// A mutable output-matrix view: `rows × cols` written row-major with an
/// optional `row_stride >= cols` (so a sub-block of a wider buffer can be
/// the destination). The data between `cols` and `row_stride` is never
/// touched.
#[derive(Debug)]
pub struct MatMut<'a> {
    data: &'a mut [f32],
    rows: usize,
    cols: usize,
    row_stride: usize,
}

impl<'a> MatMut<'a> {
    /// Dense row-major destination of `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is shorter than `rows * cols`.
    pub fn new(data: &'a mut [f32], rows: usize, cols: usize) -> Self {
        MatMut::with_row_stride(data, rows, cols, cols)
    }

    /// Destination whose consecutive rows are `row_stride` elements apart.
    ///
    /// # Panics
    ///
    /// Panics if `row_stride < cols` or `data` cannot hold the last row.
    pub fn with_row_stride(
        data: &'a mut [f32],
        rows: usize,
        cols: usize,
        row_stride: usize,
    ) -> Self {
        assert!(
            row_stride >= cols,
            "MatMut: row_stride {row_stride} < cols {cols}"
        );
        if rows > 0 && cols > 0 {
            let need = (rows - 1) * row_stride + cols;
            assert!(
                data.len() >= need,
                "MatMut: slice of {} elements cannot hold {rows}x{cols} \
                 with row stride {row_stride}",
                data.len()
            );
        }
        MatMut {
            data,
            rows,
            cols,
            row_stride,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Decomposes the view into `(data, rows, cols, row_stride)` for
    /// sibling kernels in this crate (the int8 GEMM epilogue writes
    /// through the raw slice).
    pub(crate) fn into_raw(self) -> (&'a mut [f32], usize, usize, usize) {
        (self.data, self.rows, self.cols, self.row_stride)
    }
}

/// Thread-local scratch cache for the packing buffers.
///
/// Each thread reuses its own small stack of buffers — the calling thread
/// holds the packed-B panel and finiteness mask, and every pool worker
/// takes its A-tile from its **own** cache inside the band task — so
/// parallel products never contend on a lock, and a steady-state loop of
/// same-shape products allocates nothing. Recycled buffers have
/// unspecified contents; the packing routines write every element,
/// padding included.
pub(crate) mod scratch {
    use std::cell::RefCell;

    /// Buffers retained per thread per element type.
    const MAX_HELD: usize = 8;

    thread_local! {
        static F32S: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
        static BOOLS: RefCell<Vec<Vec<bool>>> = const { RefCell::new(Vec::new()) };
        static I8S: RefCell<Vec<Vec<i8>>> = const { RefCell::new(Vec::new()) };
    }

    /// Takes a `len`-element buffer with unspecified contents: reuses a
    /// cached buffer whose capacity suffices, else allocates.
    pub fn take_f32(len: usize) -> Vec<f32> {
        F32S.with(|cache| {
            let mut cache = cache.borrow_mut();
            match cache.iter().position(|b| b.capacity() >= len) {
                Some(i) => {
                    let mut buf = cache.swap_remove(i);
                    buf.resize(len, 0.0);
                    buf
                }
                None => vec![0.0; len],
            }
        })
    }

    /// Returns a buffer to this thread's cache (dropped when full).
    pub fn give_f32(buf: Vec<f32>) {
        F32S.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.len() < MAX_HELD && buf.capacity() > 0 {
                cache.push(buf);
            }
        });
    }

    /// Takes a `len`-element mask buffer with unspecified contents.
    pub fn take_bool(len: usize) -> Vec<bool> {
        BOOLS.with(|cache| {
            let mut cache = cache.borrow_mut();
            match cache.iter().position(|b| b.capacity() >= len) {
                Some(i) => {
                    let mut buf = cache.swap_remove(i);
                    buf.resize(len, false);
                    buf
                }
                None => vec![false; len],
            }
        })
    }

    /// Returns a mask buffer to this thread's cache.
    pub fn give_bool(buf: Vec<bool>) {
        BOOLS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.len() < MAX_HELD && buf.capacity() > 0 {
                cache.push(buf);
            }
        });
    }

    /// Takes a `len`-element int8 buffer with unspecified contents (the
    /// int8 GEMM's operand-packing scratch).
    pub fn take_i8(len: usize) -> Vec<i8> {
        I8S.with(|cache| {
            let mut cache = cache.borrow_mut();
            match cache.iter().position(|b| b.capacity() >= len) {
                Some(i) => {
                    let mut buf = cache.swap_remove(i);
                    buf.resize(len, 0);
                    buf
                }
                None => vec![0; len],
            }
        })
    }

    /// Returns an int8 buffer to this thread's cache.
    pub fn give_i8(buf: Vec<i8>) {
        I8S.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.len() < MAX_HELD && buf.capacity() > 0 {
                cache.push(buf);
            }
        });
    }
}

/// Right-hand side packed into `⌈n/NR⌉` column panels, each `k × NR`
/// row-major (`data[panel · k·NR + p · NR + j]`), zero-padded past `n`.
/// The optional `finite` mask — one flag per `k`-row of `B`, computed in the
/// **same pass** as the packing — is the single home of the
/// finiteness-guarded zero skip.
///
/// Both buffers are drawn from — and returned to — the calling thread's
/// [`scratch`] cache, so a steady-state loop of same-shape products packs
/// without touching the allocator and parallel workers never contend on a
/// lock. Every element (padding included) is written explicitly, so
/// recycled contents never leak.
struct PackedB {
    data: Vec<f32>,
    n: usize,
    panels: usize,
    finite: Option<Vec<bool>>,
}

impl PackedB {
    /// Hands the scratch buffers back to this thread's cache.
    fn recycle(self) {
        scratch::give_f32(self.data);
        if let Some(mask) = self.finite {
            scratch::give_bool(mask);
        }
    }
}

fn pack_b(b: MatRef<'_>, with_mask: bool) -> PackedB {
    let (k, n) = (b.rows, b.cols);
    let panels = n.div_ceil(NR);
    let mut data = scratch::take_f32(panels * k * NR);
    let mut finite = if with_mask {
        let mut f = scratch::take_bool(k);
        f.fill(true);
        f
    } else {
        Vec::new()
    };
    for jp in 0..panels {
        let j0 = jp * NR;
        let nr = NR.min(n - j0);
        let pbase = jp * k * NR;
        for p in 0..k {
            let dst = &mut data[pbase + p * NR..pbase + (p + 1) * NR];
            if with_mask {
                let mut all_finite = true;
                for (jj, d) in dst.iter_mut().take(nr).enumerate() {
                    let v = b.at(p, j0 + jj);
                    all_finite &= v.is_finite();
                    *d = v;
                }
                if !all_finite {
                    finite[p] = false;
                }
            } else {
                // dense-A path: no mask wanted, skip the finiteness reduction
                for (jj, d) in dst.iter_mut().take(nr).enumerate() {
                    *d = b.at(p, j0 + jj);
                }
            }
            // explicit zero padding past n: the buffer may be recycled
            dst[nr..].fill(0.0);
        }
    }
    PackedB {
        data,
        n,
        panels,
        finite: if with_mask { Some(finite) } else { None },
    }
}

/// The register-tiled heart: one `MR × NR` block of `C`, all of `k`.
///
/// `ap` is a packed A-tile (`k × MR`, column of the block contiguous per
/// `p`), `bp` a packed B-panel (`k × NR`). Accumulation per output element
/// is strictly sequential over `p`; with `SKIP` the finiteness-guarded
/// zero-skip drops rank-1 updates whose `MR` coefficients are all zero and
/// whose `B`-row is entirely finite (bit-exact either way, see module docs).
#[inline(always)]
fn microkernel<const SKIP: bool>(ap: &[f32], bp: &[f32], finite: &[bool]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (p, (ac, br)) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).enumerate() {
        if SKIP && finite[p] && ac.iter().all(|&v| v == 0.0) {
            continue;
        }
        for (accrow, &ai) in acc.iter_mut().zip(ac) {
            for (o, &bv) in accrow.iter_mut().zip(br) {
                *o += ai * bv;
            }
        }
    }
    acc
}

/// Which micro-kernel a [`gemm`] call drives, resolved **once** per call
/// from `qn_simd::{KernelProfile, SimdLevel}` so every band of one product
/// runs the same code path regardless of which pool worker executes it.
#[derive(Clone, Copy)]
enum Kernel {
    /// The seed-bit-identical scalar micro-kernel (default profile).
    Exact,
    /// The vectorized FMA micro-kernel at the given dispatch level.
    Fast(SimdLevel),
}

impl Kernel {
    /// Resolves the kernel for this call from the active profile/level.
    fn active() -> Kernel {
        match KernelProfile::active() {
            KernelProfile::Exact => Kernel::Exact,
            KernelProfile::Fast => Kernel::Fast(SimdLevel::active()),
        }
    }
}

/// Processes `band_rows` consecutive output rows starting at global row
/// `first_row`, writing into `cband` (local offsets, `row_stride` apart).
fn run_band(
    cband: &mut [f32],
    row_stride: usize,
    band_rows: usize,
    first_row: usize,
    a: MatRef<'_>,
    packed: &PackedB,
    kernel: Kernel,
) {
    let k = a.cols;
    // A-tile scratch from this worker thread's cache; every element is
    // overwritten per block (incl. zero padding), so recycled contents
    // never leak.
    let mut atile = scratch::take_f32(k * MR);
    match kernel {
        Kernel::Exact => run_band_exact(
            cband, row_stride, band_rows, first_row, a, packed, &mut atile,
        ),
        // SAFETY (both vector arms): `Kernel::Fast` carries
        // `SimdLevel::active()`, which never exceeds the detected CPU
        // features, so the `#[target_feature]` wrapper only runs on
        // hardware that has its ISA.
        #[cfg(target_arch = "x86_64")]
        Kernel::Fast(SimdLevel::Avx2) => unsafe {
            run_band_fast_avx2(
                cband, row_stride, band_rows, first_row, a, packed, &mut atile,
            )
        },
        #[cfg(target_arch = "x86_64")]
        Kernel::Fast(SimdLevel::Sse2) => unsafe {
            run_band_fast_sse2(
                cband, row_stride, band_rows, first_row, a, packed, &mut atile,
            )
        },
        // SAFETY: scalar lanes are plain f32 arithmetic — sound everywhere.
        Kernel::Fast(_) => unsafe {
            run_band_fast_g::<ScalarF32>(
                cband, row_stride, band_rows, first_row, a, packed, &mut atile,
            )
        },
    }
    scratch::give_f32(atile);
}

/// The exact-profile band loop (the seed-bit-identical path).
fn run_band_exact(
    cband: &mut [f32],
    row_stride: usize,
    band_rows: usize,
    first_row: usize,
    a: MatRef<'_>,
    packed: &PackedB,
    atile: &mut [f32],
) {
    let k = a.cols;
    let finite = packed.finite.as_deref();
    for ib in (0..band_rows).step_by(MR) {
        let mr = MR.min(band_rows - ib);
        pack_a_block(atile, a, first_row + ib, mr, k);
        for jp in 0..packed.panels {
            let j0 = jp * NR;
            let nr = NR.min(packed.n - j0);
            let bp = &packed.data[jp * k * NR..(jp + 1) * k * NR];
            let acc = match finite {
                Some(fin) => microkernel::<true>(atile, bp, fin),
                None => microkernel::<false>(atile, bp, &[]),
            };
            for (ii, accrow) in acc.iter().enumerate().take(mr) {
                let off = (ib + ii) * row_stride + j0;
                cband[off..off + nr].copy_from_slice(&accrow[..nr]);
            }
        }
    }
}

/// Packs one A block: `atile[p·MR + ii] = A[first + ii, p]`, zero-padded
/// past `mr` so the micro-kernels always see a full `MR`-row block.
///
/// The full-block row-contiguous case (every block but the last when `A`
/// is untransposed — the overwhelming majority) interleaves four
/// pre-sliced rows instead of going through the bounds-checked strided
/// `at()`, which matters: for skinny products (`n ≪ m`) the pack is a
/// constant fraction of total work. Element values are identical either
/// way, so the specialization is bit-neutral.
#[inline(always)]
fn pack_a_block(atile: &mut [f32], a: MatRef<'_>, first: usize, mr: usize, k: usize) {
    if mr == MR && a.col_stride == 1 && k > 0 {
        let mut rows: [&[f32]; MR] = [&[]; MR];
        for (ii, r) in rows.iter_mut().enumerate() {
            let s = (first + ii) * a.row_stride;
            *r = &a.data[s..s + k];
        }
        for (p, dst) in atile[..k * MR].chunks_exact_mut(MR).enumerate() {
            for (ii, d) in dst.iter_mut().enumerate() {
                *d = rows[ii][p];
            }
        }
        return;
    }
    for (p, dst) in atile[..k * MR].chunks_exact_mut(MR).enumerate() {
        for (ii, d) in dst.iter_mut().enumerate() {
            *d = if ii < mr { a.at(first + ii, p) } else { 0.0 };
        }
    }
}

/// The `Fast`-profile band loop, generic over the SIMD lane type.
///
/// Panels are consumed **in pairs** where possible: with `MR = 4` rows ×
/// 2 panels the kernel keeps `8·(NR/LANES)` independent accumulator
/// chains live, enough instruction-level parallelism to keep both FMA
/// ports busy (a single `MR × NR` block has only 4 chains at AVX2 width —
/// FMA latency then caps throughput at half peak). Each lane's
/// `k`-accumulation is still strictly sequential, so the only divergence
/// from [`run_band_exact`] is the fusing of `mul_add` itself.
///
/// # Safety
///
/// `S`'s instruction set must be available; callers go through the
/// `#[target_feature]` wrappers selected by [`Kernel`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn run_band_fast_g<S: SimdF32>(
    cband: &mut [f32],
    row_stride: usize,
    band_rows: usize,
    first_row: usize,
    a: MatRef<'_>,
    packed: &PackedB,
    atile: &mut [f32],
) {
    let k = a.cols;
    let nv = NR / S::LANES;
    for ib in (0..band_rows).step_by(MR) {
        let mr = MR.min(band_rows - ib);
        pack_a_block(atile, a, first_row + ib, mr, k);
        let atile = &atile[..k * MR];
        let mut jp = 0;
        // Two panels at a time: 2·MR·nv accumulator chains.
        while jp + 2 <= packed.panels {
            let bp0 = &packed.data[jp * k * NR..(jp + 1) * k * NR];
            let bp1 = &packed.data[(jp + 1) * k * NR..(jp + 2) * k * NR];
            let mut acc0 = [[S::zero(); NR]; MR];
            let mut acc1 = [[S::zero(); NR]; MR];
            for (p, ac) in atile.chunks_exact(MR).enumerate() {
                let br0 = &bp0[p * NR..p * NR + NR];
                let br1 = &bp1[p * NR..p * NR + NR];
                let mut bv0 = [S::zero(); NR];
                let mut bv1 = [S::zero(); NR];
                for v in 0..nv {
                    bv0[v] = S::load(&br0[v * S::LANES..]);
                    bv1[v] = S::load(&br1[v * S::LANES..]);
                }
                for i in 0..MR {
                    let av = S::splat(ac[i]);
                    for v in 0..nv {
                        acc0[i][v] = av.mul_add(bv0[v], acc0[i][v]);
                        acc1[i][v] = av.mul_add(bv1[v], acc1[i][v]);
                    }
                }
            }
            let j0 = jp * NR;
            store_acc_block(&acc0, cband, row_stride, ib, mr, j0, NR);
            let nr1 = NR.min(packed.n - (j0 + NR));
            store_acc_block(&acc1, cband, row_stride, ib, mr, j0 + NR, nr1);
            jp += 2;
        }
        if jp < packed.panels {
            let bp = &packed.data[jp * k * NR..(jp + 1) * k * NR];
            let mut acc = [[S::zero(); NR]; MR];
            for (p, ac) in atile.chunks_exact(MR).enumerate() {
                let br = &bp[p * NR..p * NR + NR];
                let mut bv = [S::zero(); NR];
                for v in 0..nv {
                    bv[v] = S::load(&br[v * S::LANES..]);
                }
                for i in 0..MR {
                    let av = S::splat(ac[i]);
                    for v in 0..nv {
                        acc[i][v] = av.mul_add(bv[v], acc[i][v]);
                    }
                }
            }
            let j0 = jp * NR;
            let nr = NR.min(packed.n - j0);
            store_acc_block(&acc, cband, row_stride, ib, mr, j0, nr);
        }
    }
}

/// Writes one `MR × NR` vector accumulator block into `cband` at
/// `(ib.., j0..j0+nr)`.
///
/// # Safety
///
/// Same ISA contract as [`run_band_fast_g`] (it is only called from it).
#[inline(always)]
unsafe fn store_acc_block<S: SimdF32>(
    acc: &[[S; NR]; MR],
    cband: &mut [f32],
    row_stride: usize,
    ib: usize,
    mr: usize,
    j0: usize,
    nr: usize,
) {
    let nv = NR / S::LANES;
    let mut tmp = [0.0f32; NR];
    for (ii, accrow) in acc.iter().enumerate().take(mr) {
        let off = (ib + ii) * row_stride + j0;
        if nr == NR {
            for (v, av) in accrow.iter().enumerate().take(nv) {
                av.store(&mut cband[off + v * S::LANES..]);
            }
        } else {
            for (v, av) in accrow.iter().enumerate().take(nv) {
                av.store(&mut tmp[v * S::LANES..]);
            }
            cband[off..off + nr].copy_from_slice(&tmp[..nr]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn run_band_fast_avx2(
    cband: &mut [f32],
    row_stride: usize,
    band_rows: usize,
    first_row: usize,
    a: MatRef<'_>,
    packed: &PackedB,
    atile: &mut [f32],
) {
    run_band_fast_g::<Avx2F32>(cband, row_stride, band_rows, first_row, a, packed, atile)
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "sse2")]
unsafe fn run_band_fast_sse2(
    cband: &mut [f32],
    row_stride: usize,
    band_rows: usize,
    first_row: usize,
    a: MatRef<'_>,
    packed: &PackedB,
    atile: &mut [f32],
) {
    run_band_fast_g::<Sse2F32>(cband, row_stride, band_rows, first_row, a, packed, atile)
}

/// Fallback for products too small (or too skinny) to pack, parallelized
/// over output rows past the seed threshold. Also zero-fills `C` when
/// `k == 0`.
///
/// Per output element the accumulation is sequential over `p` either way —
/// bit-identical to the packed path and the seed kernels — but the loop
/// shape follows `B`'s layout so the inner loop streams contiguous memory:
/// row-major `B` gets the seed's saxpy over `B`-rows (row-vector matmuls,
/// matvecs), column-major `B` (a stride-swapped transpose view) gets one
/// dot product per element over `B`-columns (the seed `transb` shape).
fn gemm_fallback(c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    let row_stride = c.row_stride;
    let saxpy = b.col_stride == 1;
    let row_kernel = |i: usize, crow: &mut [f32]| {
        let crow = &mut crow[..n];
        if saxpy {
            crow.fill(0.0);
            for p in 0..k {
                let av = a.at(i, p);
                let brow = &b.data[p * b.row_stride..p * b.row_stride + n];
                for (o, &bv) in crow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        } else {
            for (j, o) in crow.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at(i, p) * b.at(p, j);
                }
                *o = acc;
            }
        }
    };
    let len = (m - 1) * row_stride + n;
    if m * n * k >= PAR_MIN_MACS {
        qn_parallel::par_chunks_mut(&mut c.data[..len], row_stride, row_kernel);
    } else {
        for (i, crow) in c.data[..len].chunks_mut(row_stride).enumerate() {
            row_kernel(i, crow);
        }
    }
}

/// Matrix product `C ← A · B` (`C` is fully overwritten).
///
/// The one GEMM kernel every product in the workspace routes through.
/// Transposed operands are passed as stride-swapped views
/// ([`MatRef::transpose`]); `C` must be row-major (an optional row stride
/// lets a sub-block of a wider buffer be the destination).
///
/// Guarantees (see the module docs for the analysis):
///
/// - under the default `Exact` profile, **bit-identical** results to the
///   seed naive kernels ([`reference`](mod@reference)) at any thread count — per-element
///   accumulation over `k` is strictly sequential and parallelism only ever
///   splits disjoint output-row bands;
/// - under the opt-in `Fast` profile (`QN_KERNEL_PROFILE=fast`), the packed
///   path runs the vectorized FMA micro-kernel — still sequential per
///   output element, ULP-bounded against the reference (fusing only);
/// - IEEE-754-exact non-finite propagation: the zero-coefficient skip is
///   finiteness-guarded at the packing step (`0 × NaN = NaN` survives);
/// - `k == 0` zero-fills `C` (the empty sum).
///
/// # Panics
///
/// Panics on dimension mismatch between `c`, `a` and `b`.
pub fn gemm(c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    assert_eq!(a.rows, m, "gemm: a has {} rows, c has {m}", a.rows);
    assert_eq!(b.rows, k, "gemm: a is {m}x{k} but b has {} rows", b.rows);
    assert_eq!(b.cols, n, "gemm: b has {} cols, c has {n}", b.cols);
    if m == 0 || n == 0 {
        return;
    }
    if m < MR || n < NR || m * n * k < PACK_MIN_MACS {
        return gemm_fallback(c, a, b);
    }
    let kernel = Kernel::active();
    // Enable the skip machinery only when A actually holds a zero (the scan
    // reads A once; a dense A pays nothing beyond it). The fast kernel
    // never skips, so it also skips the scan.
    let with_mask = matches!(kernel, Kernel::Exact) && a.contains_zero();
    let packed = pack_b(b, with_mask);
    let row_stride = c.row_stride;
    let blocks = m.div_ceil(MR);
    let threads = qn_parallel::num_threads();
    let bands = threads.min(blocks);
    let len = (m - 1) * row_stride + n;
    let cdata = &mut c.data[..len];
    if bands > 1 && m * n * k >= PAR_MIN_MACS {
        let rows_per_band = blocks.div_ceil(bands) * MR;
        qn_parallel::par_chunks_mut(cdata, rows_per_band * row_stride, |bi, band| {
            let first = bi * rows_per_band;
            run_band(
                band,
                row_stride,
                rows_per_band.min(m - first),
                first,
                a,
                &packed,
                kernel,
            );
        });
    } else {
        run_band(cdata, row_stride, m, 0, a, &packed, kernel);
    }
    packed.recycle();
}

/// Runs `batches` independent products `out[i] ← a_of(i) · b_of(i)` (each
/// `m × k · k × n`) into the contiguous `[batches, m, n]` buffer `out`.
///
/// Batch-parallelism is preferred whenever the batch dimension alone can
/// occupy the pool (each product then runs inline inside its worker) —
/// [`gemm`]'s internal row-band split is capped at `⌈m/MR⌉` bands, so for
/// wide short-`m` products (e.g. per-sample conv planes) the batch is the
/// better axis. Only when there are fewer batches than threads do batches
/// run sequentially with [`gemm`] parallelizing internally. Either way the
/// output regions are disjoint and per-element accumulation is sequential,
/// so results are bit-identical at any thread count.
///
/// # Panics
///
/// Panics if `out.len() != batches * m * n` or any view has the wrong shape.
pub fn gemm_batched<'a, FA, FB>(
    out: &mut [f32],
    batches: usize,
    m: usize,
    n: usize,
    k: usize,
    a_of: FA,
    b_of: FB,
) where
    FA: Fn(usize) -> MatRef<'a> + Sync,
    FB: Fn(usize) -> MatRef<'a> + Sync,
{
    assert_eq!(
        out.len(),
        batches * m * n,
        "gemm_batched: output of {} elements cannot hold {batches}x{m}x{n}",
        out.len()
    );
    if batches == 0 || m * n == 0 {
        return;
    }
    let per = m * n;
    let run = |ni: usize, slab: &mut [f32]| {
        gemm(MatMut::new(slab, m, n), a_of(ni), b_of(ni));
    };
    let per_macs = m * n * k;
    let threads = qn_parallel::num_threads();
    let batch_parallel =
        batches * per_macs >= PAR_MIN_MACS && (batches >= threads || per_macs < PAR_MIN_MACS);
    if batch_parallel {
        qn_parallel::par_chunks_mut(out, per, run);
    } else {
        for (ni, slab) in out.chunks_mut(per).enumerate() {
            run(ni, slab);
        }
    }
}

/// The seed naive matmul kernels, retained verbatim (modulo the parallel
/// split, which was bit-neutral) as the executable specification the packed
/// [`gemm`] core is tested — and benchmarked — against.
///
/// These run strictly sequentially and are **not** called by any production
/// path; `crates/tensor/tests/gemm_equivalence.rs` asserts bit-equality
/// against them and `crates/bench/benches/gemm.rs` measures the speedup
/// over them.
pub mod reference {
    use crate::Tensor;

    /// Per-row finiteness of a `[rows, width]` matrix — the seed guard for
    /// the zero-coefficient skip (`0 × NaN` must propagate).
    fn finite_rows(data: &[f32], rows: usize, width: usize) -> Vec<bool> {
        (0..rows)
            .map(|r| {
                data[r * width..(r + 1) * width]
                    .iter()
                    .all(|v| v.is_finite())
            })
            .collect()
    }

    /// Seed `[M, K] × [K, N]` kernel (finiteness-guarded zero skip).
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.dims2();
        let (k2, n) = b.dims2();
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        let skippable = if a.data().contains(&0.0) {
            finite_rows(b.data(), k, n)
        } else {
            vec![false; k]
        };
        let mut out = vec![0.0f32; m * n];
        for (i, orow) in out.chunks_mut(n.max(1)).enumerate() {
            let arow = &a.data()[i * k..(i + 1) * k];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 && skippable[p] {
                    continue;
                }
                let brow = &b.data()[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n]).expect("matmul shape consistent")
    }

    /// Seed `[K, M]ᵀ × [K, N]` kernel.
    pub fn matmul_transa(a: &Tensor, b: &Tensor) -> Tensor {
        let (k, m) = a.dims2();
        let (k2, n) = b.dims2();
        assert_eq!(k, k2, "matmul_transa leading dims differ: {k} vs {k2}");
        let skippable = if a.data().contains(&0.0) {
            finite_rows(b.data(), k, n)
        } else {
            vec![false; k]
        };
        let mut out = vec![0.0f32; m * n];
        for (i, orow) in out.chunks_mut(n.max(1)).enumerate() {
            for (p, ok) in skippable.iter().enumerate() {
                let av = a.data()[p * m + i];
                if av == 0.0 && *ok {
                    continue;
                }
                let brow = &b.data()[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n]).expect("matmul_transa shape consistent")
    }

    /// Seed `[M, K] × [N, K]ᵀ` kernel (per-element dot products).
    pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.dims2();
        let (n, k2) = b.dims2();
        assert_eq!(k, k2, "matmul_transb trailing dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for (i, orow) in out.chunks_mut(n.max(1)).enumerate() {
            let arow = &a.data()[i * k..(i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b.data()[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow.iter()) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
        Tensor::from_vec(out, &[m, n]).expect("matmul_transb shape consistent")
    }
}

impl Tensor {
    /// Borrows a 2-D tensor as a zero-copy [`MatRef`] view.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn mat(&self) -> MatRef<'_> {
        assert_eq!(self.ndim(), 2, "mat view requires a 2-D tensor");
        let (r, c) = self.dims2();
        MatRef::new(self.data(), r, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn transpose_view_reads_transposed() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let v = t.mat().transpose();
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 2);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(v.at(j, i), t.get(&[i, j]));
            }
        }
        assert!(!v.is_contiguous());
        assert!(t.mat().is_contiguous());
    }

    #[test]
    fn packed_path_matches_reference_kernels() {
        let mut rng = Rng::seed_from(11);
        // 24·24·24 = 13.8k MACs > PACK_MIN_MACS with m ≥ MR, n ≥ NR.
        let a = Tensor::randn(&[24, 24], &mut rng);
        let b = Tensor::randn(&[24, 24], &mut rng);
        assert!(a.matmul(&b).bit_identical(&reference::matmul(&a, &b)));
        assert!(a
            .matmul_transa(&b)
            .bit_identical(&reference::matmul_transa(&a, &b)));
        assert!(a
            .matmul_transb(&b)
            .bit_identical(&reference::matmul_transb(&a, &b)));
    }

    #[test]
    fn sparse_packed_path_matches_reference() {
        let mut rng = Rng::seed_from(12);
        // Zero-heavy A engages the skip machinery on the packed path.
        let a = Tensor::randn(&[32, 24], &mut rng).map(|v| if v > 0.0 { 0.0 } else { v });
        let b = Tensor::randn(&[24, 16], &mut rng);
        assert!(a.matmul(&b).bit_identical(&reference::matmul(&a, &b)));
    }

    #[test]
    fn gemm_with_strided_destination_leaves_gap_untouched() {
        // C is a 2×2 block inside rows of width 4; the gap keeps its value.
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let mut out = vec![-1.0f32; 8];
        gemm(MatMut::with_row_stride(&mut out, 2, 2, 4), a.mat(), b.mat());
        assert_eq!(out, [5.0, 6.0, -1.0, -1.0, 7.0, 8.0, -1.0, -1.0]);
    }

    #[test]
    fn k_zero_zero_fills() {
        let mut out = vec![9.0f32; 6];
        gemm(
            MatMut::new(&mut out, 2, 3),
            MatRef::new(&[], 2, 0),
            MatRef::new(&[], 0, 3),
        );
        assert_eq!(out, [0.0; 6]);
    }

    #[test]
    fn double_transpose_views_compose() {
        let mut rng = Rng::seed_from(13);
        let a = Tensor::randn(&[5, 7], &mut rng); // used as aᵀ: [7, 5]
        let b = Tensor::randn(&[9, 7], &mut rng); // used as bᵀ: [7, 9]
        let mut out = vec![0.0f32; 5 * 9];
        gemm(
            MatMut::new(&mut out, 5, 9),
            a.mat().transpose().transpose(),
            b.mat().transpose(),
        );
        let expect = a.matmul_transb(&b);
        assert_eq!(out, expect.data());
    }

    #[test]
    #[should_panic(expected = "gemm: a is")]
    fn gemm_inner_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let mut out = vec![0.0f32; 4];
        gemm(MatMut::new(&mut out, 2, 2), a.mat(), b.mat());
    }

    #[test]
    #[should_panic(expected = "row_stride")]
    fn matmut_narrow_stride_panics() {
        let mut out = vec![0.0f32; 4];
        MatMut::with_row_stride(&mut out, 2, 2, 1);
    }
}
