//! Read-only file mappings for zero-copy weight loading.
//!
//! [`Mmap`] presents a checkpoint file as one immutable, 8-byte-aligned
//! byte buffer that many tensors can window into ([`Storage::Mapped`]
//! holds an `Arc<Mmap>` plus a byte offset, so the mapping lives exactly as
//! long as the last tensor borrowing it). The workspace is std-only, so
//! "mapping" is implemented as a single aligned `File::read` into an
//! anonymous buffer rather than an OS `mmap(2)` — the **storage API is
//! mapping-ready** (offset-windowed, shared, immutable, alignment-checked),
//! and a syscall-backed implementation can replace the loader without
//! touching any consumer.
//!
//! [`Storage::Mapped`]: crate::Storage

use crate::TensorError;
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// An immutable, 8-byte-aligned in-memory view of a file (see the
/// module docs above for why this is a read, not a syscall mapping).
pub struct Mmap {
    /// Backing allocation in `u64` units, guaranteeing 8-byte alignment so
    /// any 4-byte-aligned window is valid `&[f32]`.
    buf: Box<[u64]>,
    /// Number of valid bytes (the file length; the tail of the last `u64`
    /// word is zero padding).
    len: usize,
}

impl Mmap {
    /// Maps `path` read-only.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] (offset 0) if the file
    /// cannot be opened or read.
    pub fn open(path: &Path) -> Result<Mmap, TensorError> {
        let err = |e: std::io::Error| TensorError::InvalidCheckpoint {
            offset: 0,
            detail: format!("cannot map {}: {e}", path.display()),
        };
        let mut file = File::open(path).map_err(err)?;
        let len = file.metadata().map_err(err)?.len();
        let len = usize::try_from(len).map_err(|_| TensorError::InvalidCheckpoint {
            offset: 0,
            detail: format!("{} exceeds the address space", path.display()),
        })?;
        let mut buf = vec![0u64; len.div_ceil(8)].into_boxed_slice();
        file.read_exact(&mut as_bytes_mut(&mut buf)[..len])
            .map_err(err)?;
        Ok(Mmap { buf, len })
    }

    /// Wraps an in-memory byte buffer as a mapping (copied into aligned
    /// storage) — the entry point for tests that fuzz malformed
    /// checkpoints without touching the filesystem.
    pub fn from_bytes(bytes: impl AsRef<[u8]>) -> Mmap {
        let bytes = bytes.as_ref();
        let mut buf = vec![0u64; bytes.len().div_ceil(8)].into_boxed_slice();
        as_bytes_mut(&mut buf)[..bytes.len()].copy_from_slice(bytes);
        Mmap {
            buf,
            len: bytes.len(),
        }
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: the backing `u64` allocation is at least `len` bytes and
        // every byte of it is initialized (zero-filled before the read).
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr().cast::<u8>(), self.len) }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows `count` raw bytes starting `offset` bytes into the mapping
    /// — the window primitive for non-f32 checkpoint blobs (int8 codes,
    /// binary16 bits).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] if the window runs past
    /// the end of the mapping.
    pub fn byte_slice(&self, offset: usize, count: usize) -> Result<&[u8], TensorError> {
        match offset.checked_add(count) {
            Some(end) if end <= self.len => Ok(&self.as_bytes()[offset..end]),
            _ => Err(TensorError::InvalidCheckpoint {
                offset: offset as u64,
                detail: format!(
                    "data window [{offset}, {offset} + {count}) runs past the mapped length {}",
                    self.len
                ),
            }),
        }
    }

    /// Borrows `count` `f32`s starting `offset` bytes into the mapping.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] if `offset` is not
    /// 4-byte aligned or the window runs past the end of the mapping.
    pub fn f32_slice(&self, offset: usize, count: usize) -> Result<&[f32], TensorError> {
        if !offset.is_multiple_of(std::mem::align_of::<f32>()) {
            return Err(TensorError::InvalidCheckpoint {
                offset: offset as u64,
                detail: format!("tensor data offset {offset} is not 4-byte aligned"),
            });
        }
        let bytes = count.checked_mul(4).and_then(|b| b.checked_add(offset));
        match bytes {
            Some(end) if end <= self.len => {
                // SAFETY: in bounds (checked above), 4-byte aligned (the
                // base is 8-aligned and `offset % 4 == 0`), and every byte
                // is initialized; `f32` has no invalid bit patterns.
                Ok(unsafe {
                    std::slice::from_raw_parts(
                        self.buf.as_ptr().cast::<u8>().add(offset).cast::<f32>(),
                        count,
                    )
                })
            }
            _ => Err(TensorError::InvalidCheckpoint {
                offset: offset as u64,
                detail: format!(
                    "tensor data window [{offset}, {offset} + {count}·4) runs past the \
                     mapped length {}",
                    self.len
                ),
            }),
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mmap({} bytes)", self.len)
    }
}

/// Mutable byte view of a `u64` buffer (for filling it from a file).
fn as_bytes_mut(buf: &mut [u64]) -> &mut [u8] {
    // SAFETY: u8 has no alignment or validity requirements and the region
    // is exactly the buffer's own allocation.
    unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), buf.len() * 8) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_roundtrip() {
        let m = Mmap::from_bytes([1u8, 2, 3, 4, 5]);
        assert_eq!(m.len(), 5);
        assert_eq!(m.as_bytes(), &[1, 2, 3, 4, 5]);
        assert!(!m.is_empty());
        assert!(Mmap::from_bytes([]).is_empty());
    }

    #[test]
    fn f32_slice_reads_le_floats() {
        let mut bytes = vec![0u8; 4];
        bytes.extend_from_slice(&1.5f32.to_le_bytes());
        bytes.extend_from_slice(&(-2.0f32).to_le_bytes());
        let m = Mmap::from_bytes(&bytes);
        assert_eq!(m.f32_slice(4, 2).unwrap(), &[1.5, -2.0]);
    }

    #[test]
    fn f32_slice_rejects_misalignment_and_overrun() {
        let m = Mmap::from_bytes(vec![0u8; 16]);
        assert!(matches!(
            m.f32_slice(2, 1),
            Err(TensorError::InvalidCheckpoint { offset: 2, .. })
        ));
        assert!(m.f32_slice(8, 3).is_err());
        assert!(m.f32_slice(16, 1).is_err());
        // usize-overflowing window must error, not wrap
        assert!(m.f32_slice(8, usize::MAX / 2).is_err());
        assert!(m.f32_slice(16, 0).is_ok(), "empty window at EOF is fine");
    }

    #[test]
    fn byte_slice_windows_and_bounds() {
        let m = Mmap::from_bytes([1u8, 2, 3, 4, 5]);
        assert_eq!(m.byte_slice(1, 3).unwrap(), &[2, 3, 4]);
        assert_eq!(m.byte_slice(3, 0).unwrap(), &[] as &[u8]);
        assert!(m.byte_slice(3, 3).is_err());
        assert!(m.byte_slice(usize::MAX, 2).is_err());
    }

    #[test]
    fn open_missing_file_errors() {
        let err = Mmap::open(Path::new("/nonexistent/qn-ckpt")).unwrap_err();
        assert!(matches!(err, TensorError::InvalidCheckpoint { .. }));
    }

    #[test]
    fn open_reads_file_contents() {
        let path = std::env::temp_dir().join("qn_mmap_open_test.bin");
        std::fs::write(&path, [9u8, 8, 7]).unwrap();
        let m = Mmap::open(&path).unwrap();
        assert_eq!(m.as_bytes(), &[9, 8, 7]);
        let _ = std::fs::remove_file(&path);
    }
}
