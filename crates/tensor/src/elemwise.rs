//! Parallel-banded elementwise slice kernels.
//!
//! The single home of the workspace's elementwise execution strategy: every
//! map/zip — allocating ([`Tensor::map`](crate::Tensor::map)/
//! [`zip`](crate::Tensor::zip)), in-place
//! ([`map_inplace`](crate::Tensor::map_inplace)/
//! [`zip_inplace`](crate::Tensor::zip_inplace)) or into a recycled
//! destination buffer (the `EagerExec` arena in `qn-autograd`) — funnels
//! through these slice kernels, so all of them share one banding rule and
//! therefore produce **bit-identical** results: each output element depends
//! only on its own inputs, bands are disjoint, and the per-element
//! arithmetic is independent of the band split.
//!
//! Inputs shorter than [`PAR_MIN_ELEMS`] stay on
//! the calling thread.
//!
//! # Named profile-aware ops
//!
//! The closure kernels above are the `Exact` tier. The **named** ops
//! ([`relu_to`], [`add_to`], [`sigmoid_to`], …) additionally consult
//! `qn_simd::KernelProfile`: under `Exact` they run the identical closure
//! loop; under `Fast` they hand each band to the dispatched `qn-simd`
//! vector kernel. For the arithmetic ops (add/sub/mul/scale/add-scalar/
//! square/relu) the vector path is lane-wise IEEE-identical to the closure
//! — no reassociation, no fusing — so those stay bit-identical in *both*
//! profiles; only `sigmoid_to`/`exp_to` swap in the polynomial
//! approximation (ULP-bounded, see `qn_simd::math`) under `Fast`.

use qn_parallel::PAR_MIN_ELEMS;
use qn_simd::KernelProfile;

#[inline]
fn bands_for(n: usize) -> usize {
    if n >= PAR_MIN_ELEMS {
        qn_parallel::num_threads()
    } else {
        1
    }
}

/// `dst[i] = f(src[i])`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn map_to(dst: &mut [f32], src: &[f32], f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(dst.len(), src.len(), "map_to length mismatch");
    let n = dst.len();
    if bands_for(n) <= 1 {
        for (o, &v) in dst.iter_mut().zip(src) {
            *o = f(v);
        }
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |bi, chunk| {
        let start = bi * band;
        let s = &src[start..start + chunk.len()];
        for (o, &v) in chunk.iter_mut().zip(s) {
            *o = f(v);
        }
    });
}

/// `dst[i] = f(a[i], b[i])`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn zip_to(dst: &mut [f32], a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    assert_eq!(dst.len(), a.len(), "zip_to length mismatch");
    assert_eq!(dst.len(), b.len(), "zip_to length mismatch");
    let n = dst.len();
    if bands_for(n) <= 1 {
        for ((o, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *o = f(x, y);
        }
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |bi, chunk| {
        let start = bi * band;
        let sa = &a[start..start + chunk.len()];
        let sb = &b[start..start + chunk.len()];
        for ((o, &x), &y) in chunk.iter_mut().zip(sa).zip(sb) {
            *o = f(x, y);
        }
    });
}

/// `dst[i] = f(dst[i])` in place.
pub fn map_assign(dst: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    let n = dst.len();
    if bands_for(n) <= 1 {
        for v in dst.iter_mut() {
            *v = f(*v);
        }
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |_, chunk| {
        for v in chunk.iter_mut() {
            *v = f(*v);
        }
    });
}

/// `dst[i] = f(dst[i], src[i])` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn zip_assign(dst: &mut [f32], src: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    assert_eq!(dst.len(), src.len(), "zip_assign length mismatch");
    let n = dst.len();
    if bands_for(n) <= 1 {
        for (o, &v) in dst.iter_mut().zip(src) {
            *o = f(*o, v);
        }
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |bi, chunk| {
        let start = bi * band;
        let s = &src[start..start + chunk.len()];
        for (o, &v) in chunk.iter_mut().zip(s) {
            *o = f(*o, v);
        }
    });
}

/// Runs a slice kernel over the same parallel bands the closure kernels
/// use (the shared banding rule is what keeps every elementwise variant
/// bit-identical at any thread count).
fn banded_unary(dst: &mut [f32], src: &[f32], kernel: fn(&mut [f32], &[f32])) {
    let n = dst.len();
    if bands_for(n) <= 1 {
        kernel(dst, src);
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |bi, chunk| {
        let start = bi * band;
        kernel(chunk, &src[start..start + chunk.len()]);
    });
}

fn banded_unary_s(dst: &mut [f32], src: &[f32], s: f32, kernel: fn(&mut [f32], &[f32], f32)) {
    let n = dst.len();
    if bands_for(n) <= 1 {
        kernel(dst, src, s);
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |bi, chunk| {
        let start = bi * band;
        kernel(chunk, &src[start..start + chunk.len()], s);
    });
}

fn banded_binary(dst: &mut [f32], a: &[f32], b: &[f32], kernel: fn(&mut [f32], &[f32], &[f32])) {
    let n = dst.len();
    if bands_for(n) <= 1 {
        kernel(dst, a, b);
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |bi, chunk| {
        let start = bi * band;
        let end = start + chunk.len();
        kernel(chunk, &a[start..end], &b[start..end]);
    });
}

/// `dst[i] = a[i] + b[i]` — bit-identical in both profiles (`Fast`
/// vectorizes, lane-wise IEEE-identical).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_to(dst: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(dst.len(), a.len(), "add_to length mismatch");
    assert_eq!(dst.len(), b.len(), "add_to length mismatch");
    match KernelProfile::active() {
        KernelProfile::Exact => zip_to(dst, a, b, |x, y| x + y),
        KernelProfile::Fast => banded_binary(dst, a, b, qn_simd::add_to),
    }
}

/// `dst[i] = a[i] - b[i]` — bit-identical in both profiles.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_to(dst: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(dst.len(), a.len(), "sub_to length mismatch");
    assert_eq!(dst.len(), b.len(), "sub_to length mismatch");
    match KernelProfile::active() {
        KernelProfile::Exact => zip_to(dst, a, b, |x, y| x - y),
        KernelProfile::Fast => banded_binary(dst, a, b, qn_simd::sub_to),
    }
}

/// `dst[i] = a[i] * b[i]` — bit-identical in both profiles.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_to(dst: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(dst.len(), a.len(), "mul_to length mismatch");
    assert_eq!(dst.len(), b.len(), "mul_to length mismatch");
    match KernelProfile::active() {
        KernelProfile::Exact => zip_to(dst, a, b, |x, y| x * y),
        KernelProfile::Fast => banded_binary(dst, a, b, qn_simd::mul_to),
    }
}

/// `dst[i] = src[i] * s` — bit-identical in both profiles.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn scale_to(dst: &mut [f32], src: &[f32], s: f32) {
    assert_eq!(dst.len(), src.len(), "scale_to length mismatch");
    match KernelProfile::active() {
        KernelProfile::Exact => map_to(dst, src, |v| v * s),
        KernelProfile::Fast => banded_unary_s(dst, src, s, qn_simd::scale_to),
    }
}

/// `dst[i] = src[i] + s` — bit-identical in both profiles.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_scalar_to(dst: &mut [f32], src: &[f32], s: f32) {
    assert_eq!(dst.len(), src.len(), "add_scalar_to length mismatch");
    match KernelProfile::active() {
        KernelProfile::Exact => map_to(dst, src, |v| v + s),
        KernelProfile::Fast => banded_unary_s(dst, src, s, qn_simd::add_scalar_to),
    }
}

/// `dst[i] = src[i]²` — bit-identical in both profiles.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn square_to(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "square_to length mismatch");
    match KernelProfile::active() {
        KernelProfile::Exact => map_to(dst, src, |v| v * v),
        KernelProfile::Fast => banded_unary(dst, src, qn_simd::square_to),
    }
}

/// `dst[i] = max(src[i], 0)` — bit-identical in both profiles (the vector
/// `max` matches `f32::max`'s NaN → 0 behavior for this pattern).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn relu_to(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "relu_to length mismatch");
    match KernelProfile::active() {
        KernelProfile::Exact => map_to(dst, src, |v| v.max(0.0)),
        KernelProfile::Fast => banded_unary(dst, src, qn_simd::relu_to),
    }
}

/// `dst[i] = 1 / (1 + e^(−src[i]))`. Under `Fast` this is the `qn-simd`
/// polynomial approximation (≤ 16 ULP of the libm form).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sigmoid_to(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "sigmoid_to length mismatch");
    match KernelProfile::active() {
        KernelProfile::Exact => map_to(dst, src, |v| 1.0 / (1.0 + (-v).exp())),
        KernelProfile::Fast => banded_unary(dst, src, qn_simd::sigmoid_to),
    }
}

/// `dst[i] = e^src[i]`. Under `Fast` this is the `qn-simd` polynomial
/// approximation (≤ 8 ULP of `f32::exp` on its clamped domain).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn exp_to(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "exp_to length mismatch");
    match KernelProfile::active() {
        KernelProfile::Exact => map_to(dst, src, |v| v.exp()),
        KernelProfile::Fast => banded_unary(dst, src, qn_simd::exp_to),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_ops_match_closures_in_exact_profile() {
        let a: Vec<f32> = (0..300).map(|i| (i as f32 - 150.0) * 0.1).collect();
        let b: Vec<f32> = (0..300).map(|i| (i as f32).cos()).collect();
        let mut named = vec![0.0f32; 300];
        let mut closure = vec![0.0f32; 300];
        add_to(&mut named, &a, &b);
        zip_to(&mut closure, &a, &b, |x, y| x + y);
        assert_eq!(named, closure);
        relu_to(&mut named, &a);
        map_to(&mut closure, &a, |v| v.max(0.0));
        assert_eq!(named, closure);
        sigmoid_to(&mut named, &a);
        map_to(&mut closure, &a, |v| 1.0 / (1.0 + (-v).exp()));
        assert_eq!(named, closure);
    }

    #[test]
    fn map_and_zip_match_sequential() {
        let src: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 100];
        map_to(&mut dst, &src, |v| v * 2.0);
        assert!(dst.iter().zip(&src).all(|(&d, &s)| d == s * 2.0));
        let mut z = vec![0.0f32; 100];
        zip_to(&mut z, &src, &dst, |a, b| a + b);
        assert!(z.iter().zip(&src).all(|(&zv, &s)| zv == s * 3.0));
    }

    #[test]
    fn inplace_variants_match_out_of_place() {
        let src: Vec<f32> = (0..50).map(|i| i as f32 - 25.0).collect();
        let mut a = src.clone();
        map_assign(&mut a, |v| v.max(0.0));
        let mut b = vec![0.0f32; 50];
        map_to(&mut b, &src, |v| v.max(0.0));
        assert_eq!(a, b);
        let mut c = src.clone();
        zip_assign(&mut c, &b, |x, y| x + y);
        let mut d = vec![0.0f32; 50];
        zip_to(&mut d, &src, &b, |x, y| x + y);
        assert_eq!(c, d);
    }

    #[test]
    fn large_parallel_matches_sequential() {
        let n = PAR_MIN_ELEMS + 37;
        let src: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let mut par = vec![0.0f32; n];
        map_to(&mut par, &src, |v| v * v + 1.0);
        let mut seq = vec![0.0f32; n];
        qn_parallel::with_max_threads(1, || map_to(&mut seq, &src, |v| v * v + 1.0));
        assert_eq!(par, seq, "banding must be bit-neutral");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut dst = vec![0.0f32; 3];
        map_to(&mut dst, &[1.0, 2.0], |v| v);
    }
}
