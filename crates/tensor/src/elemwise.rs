//! Parallel-banded elementwise slice kernels.
//!
//! The single home of the workspace's elementwise execution strategy: every
//! map/zip — allocating ([`Tensor::map`](crate::Tensor::map)/
//! [`zip`](crate::Tensor::zip)), in-place
//! ([`map_inplace`](crate::Tensor::map_inplace)/
//! [`zip_inplace`](crate::Tensor::zip_inplace)) or into a recycled
//! destination buffer (the `EagerExec` arena in `qn-autograd`) — funnels
//! through these slice kernels, so all of them share one banding rule and
//! therefore produce **bit-identical** results: each output element depends
//! only on its own inputs, bands are disjoint, and the per-element
//! arithmetic is independent of the band split.
//!
//! Inputs shorter than [`PAR_MIN_ELEMS`] stay on
//! the calling thread.

use qn_parallel::PAR_MIN_ELEMS;

#[inline]
fn bands_for(n: usize) -> usize {
    if n >= PAR_MIN_ELEMS {
        qn_parallel::num_threads()
    } else {
        1
    }
}

/// `dst[i] = f(src[i])`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn map_to(dst: &mut [f32], src: &[f32], f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(dst.len(), src.len(), "map_to length mismatch");
    let n = dst.len();
    if bands_for(n) <= 1 {
        for (o, &v) in dst.iter_mut().zip(src) {
            *o = f(v);
        }
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |bi, chunk| {
        let start = bi * band;
        let s = &src[start..start + chunk.len()];
        for (o, &v) in chunk.iter_mut().zip(s) {
            *o = f(v);
        }
    });
}

/// `dst[i] = f(a[i], b[i])`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn zip_to(dst: &mut [f32], a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    assert_eq!(dst.len(), a.len(), "zip_to length mismatch");
    assert_eq!(dst.len(), b.len(), "zip_to length mismatch");
    let n = dst.len();
    if bands_for(n) <= 1 {
        for ((o, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *o = f(x, y);
        }
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |bi, chunk| {
        let start = bi * band;
        let sa = &a[start..start + chunk.len()];
        let sb = &b[start..start + chunk.len()];
        for ((o, &x), &y) in chunk.iter_mut().zip(sa).zip(sb) {
            *o = f(x, y);
        }
    });
}

/// `dst[i] = f(dst[i])` in place.
pub fn map_assign(dst: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    let n = dst.len();
    if bands_for(n) <= 1 {
        for v in dst.iter_mut() {
            *v = f(*v);
        }
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |_, chunk| {
        for v in chunk.iter_mut() {
            *v = f(*v);
        }
    });
}

/// `dst[i] = f(dst[i], src[i])` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn zip_assign(dst: &mut [f32], src: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    assert_eq!(dst.len(), src.len(), "zip_assign length mismatch");
    let n = dst.len();
    if bands_for(n) <= 1 {
        for (o, &v) in dst.iter_mut().zip(src) {
            *o = f(*o, v);
        }
        return;
    }
    let band = n.div_ceil(qn_parallel::num_threads());
    qn_parallel::par_chunks_mut(dst, band, |bi, chunk| {
        let start = bi * band;
        let s = &src[start..start + chunk.len()];
        for (o, &v) in chunk.iter_mut().zip(s) {
            *o = f(*o, v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_zip_match_sequential() {
        let src: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 100];
        map_to(&mut dst, &src, |v| v * 2.0);
        assert!(dst.iter().zip(&src).all(|(&d, &s)| d == s * 2.0));
        let mut z = vec![0.0f32; 100];
        zip_to(&mut z, &src, &dst, |a, b| a + b);
        assert!(z.iter().zip(&src).all(|(&zv, &s)| zv == s * 3.0));
    }

    #[test]
    fn inplace_variants_match_out_of_place() {
        let src: Vec<f32> = (0..50).map(|i| i as f32 - 25.0).collect();
        let mut a = src.clone();
        map_assign(&mut a, |v| v.max(0.0));
        let mut b = vec![0.0f32; 50];
        map_to(&mut b, &src, |v| v.max(0.0));
        assert_eq!(a, b);
        let mut c = src.clone();
        zip_assign(&mut c, &b, |x, y| x + y);
        let mut d = vec![0.0f32; 50];
        zip_to(&mut d, &src, &b, |x, y| x + y);
        assert_eq!(c, d);
    }

    #[test]
    fn large_parallel_matches_sequential() {
        let n = PAR_MIN_ELEMS + 37;
        let src: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let mut par = vec![0.0f32; n];
        map_to(&mut par, &src, |v| v * v + 1.0);
        let mut seq = vec![0.0f32; n];
        qn_parallel::with_max_threads(1, || map_to(&mut seq, &src, |v| v * v + 1.0));
        assert_eq!(par, seq, "banding must be bit-neutral");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut dst = vec![0.0f32; 3];
        map_to(&mut dst, &[1.0, 2.0], |v| v);
    }
}
