use crate::{tensor::PAR_MIN_ELEMS, Shape, Tensor};

/// Geometry of a 2-D convolution: kernel size, stride and zero padding.
///
/// Used by [`im2col`]/[`col2im`] and by every convolutional layer in the
/// workspace, including the quadratic-neuron convolutions, so that linear and
/// quadratic layers share one lowering path.
///
/// # Example
///
/// ```
/// use qn_tensor::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 1, 1); // 3x3 kernel, stride 1, pad 1
/// assert_eq!(spec.output_hw(8, 8), (8, 8)); // "same" convolution
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both spatial directions.
    pub stride: usize,
    /// Zero padding on each spatial border.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec for a square kernel.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Conv2dSpec {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kernel && pw >= self.kernel,
            "input {h}x{w} (+pad {}) smaller than kernel {}",
            self.padding,
            self.kernel
        );
        (
            (ph - self.kernel) / self.stride + 1,
            (pw - self.kernel) / self.stride + 1,
        )
    }

    /// Number of inputs seen by one output unit: `C · k · k`.
    pub fn patch_len(&self, in_channels: usize) -> usize {
        in_channels * self.kernel * self.kernel
    }
}

/// Lowers a `[B, C, H, W]` input into patch-matrix form `[B·OH·OW, C·K·K]`.
///
/// Row `b·OH·OW + oy·OW + ox` holds the receptive field of output position
/// `(oy, ox)` in image `b`, flattened channel-major. Convolution then becomes
/// a single matrix multiplication against flattened filters, which is also
/// exactly the form quadratic neurons need (`x` = one patch row).
///
/// # Panics
///
/// Panics if `input` is not 4-D.
pub fn im2col(input: &Tensor, spec: Conv2dSpec) -> Tensor {
    let (b, c, h, w) = input.dims4();
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let patch = c * k * k;
    let rows = b * oh * ow;
    let mut out = vec![0.0f32; rows * patch];
    im2col_into(&mut out, input, spec);
    Tensor::from_vec(out, &[rows, patch]).expect("im2col sizes are consistent")
}

/// [`im2col`] into a caller-provided (e.g. pool-recycled) buffer of
/// `B·OH·OW × C·K·K` elements. The buffer is zero-filled first, so recycled
/// contents cannot leak into padding positions; results are bit-identical
/// to the allocating version.
///
/// # Panics
///
/// Panics if `input` is not 4-D or `dst` has the wrong length.
pub fn im2col_into(dst: &mut [f32], input: &Tensor, spec: Conv2dSpec) {
    let (b, c, h, w) = input.dims4();
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let patch = c * k * k;
    let rows = b * oh * ow;
    assert_eq!(dst.len(), rows * patch, "im2col_into length mismatch");
    dst.fill(0.0);
    let data = input.data();
    let pad = spec.padding as isize;
    // Each image's patch rows are a disjoint slab of the output, so the
    // lowering parallelizes over the batch with identical per-row writes at
    // any thread count.
    qn_parallel::par_chunks_mut_min(dst, oh * ow * patch, PAR_MIN_ELEMS, |bi, slab| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (oy * ow + ox) * patch;
                let iy0 = (oy * spec.stride) as isize - pad;
                let ix0 = (ox * spec.stride) as isize - pad;
                for ci in 0..c {
                    let img = (bi * c + ci) * h * w;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue; // stays zero
                        }
                        let src_row = img + iy as usize * w;
                        let dst = row + (ci * k + ky) * k;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            slab[dst + kx] = data[src_row + ix as usize];
                        }
                    }
                }
            }
        }
    });
}

/// Adjoint of [`im2col`]: scatters patch-space gradients back to image space.
///
/// Given `cols` of shape `[B·OH·OW, C·K·K]` produced for an input of shape
/// `[B, C, H, W]` with `spec`, returns the gradient with respect to that
/// input (overlapping patches accumulate).
///
/// # Panics
///
/// Panics if `cols` is not 2-D or its dims are inconsistent with the
/// geometry.
pub fn col2im(cols: &Tensor, spec: Conv2dSpec, input_dims: (usize, usize, usize, usize)) -> Tensor {
    let (b, c, h, w) = input_dims;
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let patch = c * k * k;
    let (rows, cols_w) = cols.dims2();
    assert_eq!(rows, b * oh * ow, "col2im row count mismatch");
    assert_eq!(cols_w, patch, "col2im patch length mismatch");
    let mut out = vec![0.0f32; b * c * h * w];
    let data = cols.data();
    let pad = spec.padding as isize;
    // Overlapping patches only ever accumulate into their own image, so the
    // scatter parallelizes over the batch; the in-image accumulation order
    // is unchanged, keeping results bit-identical at any thread count.
    qn_parallel::par_chunks_mut_min(&mut out, c * h * w, PAR_MIN_ELEMS, |bi, img_out| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((bi * oh + oy) * ow + ox) * patch;
                let iy0 = (oy * spec.stride) as isize - pad;
                let ix0 = (ox * spec.stride) as isize - pad;
                for ci in 0..c {
                    let img = ci * h * w;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst_row = img + iy as usize * w;
                        let src = row + (ci * k + ky) * k;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            img_out[dst_row + ix as usize] += data[src + kx];
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[b, c, h, w]).expect("col2im sizes are consistent")
}

#[allow(dead_code)]
fn shape4(b: usize, c: usize, h: usize, w: usize) -> Shape {
    Shape::new(&[b, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    /// Direct O(B·C²·K²·H·W) reference convolution for validating im2col.
    fn conv2d_reference(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Tensor {
        let (b, c, h, w) = input.dims4();
        let (oc, wc, kh, kw) = weight.dims4();
        assert_eq!(c, wc);
        assert_eq!(kh, spec.kernel);
        assert_eq!(kw, spec.kernel);
        let (oh, ow) = spec.output_hw(h, w);
        let mut out = Tensor::zeros(&[b, oc, oh, ow]);
        for bi in 0..b {
            for oci in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ci in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy =
                                        (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.get(&[bi, ci, iy as usize, ix as usize])
                                        * weight.get(&[oci, ci, ky, kx]);
                                }
                            }
                        }
                        out.set(&[bi, oci, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn output_hw_same_conv() {
        let spec = Conv2dSpec::new(3, 1, 1);
        assert_eq!(spec.output_hw(8, 8), (8, 8));
        assert_eq!(spec.output_hw(5, 7), (5, 7));
    }

    #[test]
    fn output_hw_strided() {
        let spec = Conv2dSpec::new(3, 2, 1);
        assert_eq!(spec.output_hw(8, 8), (4, 4));
        let spec1 = Conv2dSpec::new(1, 2, 0);
        assert_eq!(spec1.output_hw(8, 8), (4, 4));
    }

    #[test]
    fn patch_len_counts_inputs() {
        assert_eq!(Conv2dSpec::new(3, 1, 1).patch_len(16), 144);
    }

    #[test]
    fn im2col_matmul_equals_reference_conv() {
        let mut rng = Rng::seed_from(11);
        for &(c, k, s, p) in &[
            (1usize, 3usize, 1usize, 1usize),
            (2, 3, 2, 1),
            (3, 1, 1, 0),
            (2, 5, 1, 2),
        ] {
            let spec = Conv2dSpec::new(k, s, p);
            let input = Tensor::randn(&[2, c, 7, 6], &mut rng);
            let oc = 4;
            let weight = Tensor::randn(&[oc, c, k, k], &mut rng);
            let cols = im2col(&input, spec);
            let wmat = weight.reshape(&[oc, c * k * k]).unwrap();
            let out = cols.matmul_transb(&wmat); // [B*OH*OW, OC]
            let (oh, ow) = spec.output_hw(7, 6);
            let out = out
                .reshape(&[2, oh, ow, oc])
                .unwrap()
                .permute(&[0, 3, 1, 2]);
            let reference = conv2d_reference(&input, &weight, spec);
            assert!(
                out.allclose(&reference, 1e-4),
                "mismatch at c={c} k={k} s={s} p={p}"
            );
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop needs.
        let mut rng = Rng::seed_from(13);
        let spec = Conv2dSpec::new(3, 2, 1);
        let dims = (2usize, 3usize, 6usize, 5usize);
        let x = Tensor::randn(&[dims.0, dims.1, dims.2, dims.3], &mut rng);
        let cols = im2col(&x, spec);
        let y = Tensor::randn(cols.shape().dims(), &mut rng);
        let lhs = cols.dot(&y);
        let back = col2im(&y, spec, dims);
        let rhs = x.dot(&back);
        assert!(
            (lhs - rhs).abs() <= 1e-2 * lhs.abs().max(1.0),
            "adjoint mismatch: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn im2col_shapes() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::zeros(&[4, 3, 8, 8]);
        let cols = im2col(&x, spec);
        assert_eq!(cols.shape().dims(), &[4 * 8 * 8, 3 * 9]);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn kernel_larger_than_input_panics() {
        Conv2dSpec::new(5, 1, 0).output_hw(3, 3);
    }
}
