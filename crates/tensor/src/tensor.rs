use crate::mat::{gemm, MatMut, MatRef};
use crate::{elemwise, BufferPool, Rng, Shape, Storage, TensorError};
use std::fmt;

pub(crate) use qn_parallel::PAR_MIN_ELEMS;

/// A dense, contiguous, row-major `f32` array of arbitrary rank.
///
/// `Tensor` is the single numeric container used throughout `quadranet`.
/// Its buffer is a [`Storage`]: usually an owned `Vec`, sometimes a pooled
/// buffer, and — for checkpoint-loaded parameters — a **zero-copy window
/// into a memory mapping** (see [`Tensor::is_mapped`]; in-place writes
/// copy-on-write). It is contiguous and row-major: rank-changing views are
/// materialized by copying, which keeps the autodiff tape simple. The
/// exception is the 2-D
/// matrix-product path: [`Tensor::mat`] borrows a tensor as a zero-copy
/// stride-aware [`MatRef`](crate::MatRef) view, and the `matmul` family
/// below passes transposes into the shared [`gemm`](crate::gemm) core as
/// stride swaps instead of copies.
///
/// # Example
///
/// ```
/// use qn_tensor::Tensor;
///
/// # fn main() -> Result<(), qn_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Storage,
    shape: Shape,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={}, data[..{}]={:?}{})",
            self.shape,
            preview.len(),
            preview,
            if self.data.len() > 8 { ", …" } else { "" }
        )
    }
}

impl Tensor {
    // ----- constructors -------------------------------------------------

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()].into(),
            shape,
        }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()].into(),
            shape,
        }
    }

    /// Builds a tensor from an owned buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            data: data.into(),
            shape,
        })
    }

    /// Builds a tensor by evaluating `f` at every flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data: Vec<f32> = (0..shape.numel()).map(&mut f).collect();
        Tensor {
            data: data.into(),
            shape,
        }
    }

    /// Assembles a tensor from pre-validated storage (the `checkpoint`
    /// module's constructor: the shape/length invariant is the caller's).
    pub(crate) fn from_storage(data: Storage, shape: Shape) -> Self {
        debug_assert_eq!(data.len(), shape.numel());
        Tensor { data, shape }
    }

    /// `true` if this tensor's storage is a zero-copy window into a
    /// memory-mapped checkpoint (see [`Storage::Mapped`]).
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Standard-normal initialized tensor.
    pub fn randn(dims: &[usize], rng: &mut Rng) -> Self {
        Tensor::from_fn(dims, |_| rng.normal())
    }

    /// All-zeros tensor whose data **and** shape buffers are drawn from
    /// `pool` (see [`BufferPool`]); hand them back with
    /// [`Tensor::into_pool`] when done. With a warm pool the round trip
    /// performs no heap allocation — the basis of the zero-alloc serving
    /// path in `qn-models`.
    pub fn from_pooled(pool: &BufferPool, dims: &[usize]) -> Self {
        let mut dvec = pool.take_usize(dims.len());
        dvec.copy_from_slice(dims);
        let shape = Shape::from(dvec);
        let mut data = pool.take_f32(shape.numel());
        data.fill(0.0);
        Tensor {
            data: data.into(),
            shape,
        }
    }

    /// Like [`Tensor::from_pooled`] but with **unspecified contents** (the
    /// recycled buffer is not zeroed). Every element must be written before
    /// it is read; use this only when the tensor is fully overwritten.
    pub fn from_pooled_uninit(pool: &BufferPool, dims: &[usize]) -> Self {
        let mut dvec = pool.take_usize(dims.len());
        dvec.copy_from_slice(dims);
        let shape = Shape::from(dvec);
        let data = pool.take_f32(shape.numel());
        Tensor {
            data: data.into(),
            shape,
        }
    }

    /// Returns this tensor's data and shape buffers to `pool` for reuse by
    /// a later [`Tensor::from_pooled`] of the same shape. (Mapped storage
    /// has nothing to give back — the mapping is shared, not recyclable.)
    pub fn into_pool(self, pool: &BufferPool) {
        self.data.give_to(pool);
        pool.give_usize(self.shape.into_dims());
    }

    /// Reshapes this tensor **in place** to `dims`, recycling its own
    /// storage: the data buffer is resized (grown elements are zero, all
    /// others keep their previous values — i.e. contents are **unspecified**
    /// and must be fully overwritten), and the `Shape` is kept as-is when
    /// `dims` already matches. The workhorse of the `EagerExec`
    /// slot-recycling arena: refitting a slot to the same shape it held
    /// last pass touches the allocator not at all.
    pub fn refit(&mut self, dims: &[usize]) {
        if self.shape.dims() != dims {
            self.shape = Shape::new(dims);
        }
        let numel = self.shape.numel();
        if self.data.len() != numel {
            self.data.resize(numel, 0.0);
        }
    }

    /// Uniform `[lo, hi)` initialized tensor.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        Tensor::from_fn(dims, |_| rng.uniform(lo, hi))
    }

    // ----- accessors -----------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Immutable view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer (copied out of shared
    /// storage if the tensor was mapped).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Writes the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    // ----- shape manipulation --------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.numel() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: new_shape,
        })
    }

    /// Consuming reshape: reuses the data buffer outright — no copy, no
    /// allocation beyond the new `Shape`. Bit-identical to
    /// [`Tensor::reshape`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn into_reshaped(self, dims: &[usize]) -> Result<Self, TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.numel() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data,
            shape: new_shape,
        })
    }

    /// 2-D transpose.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2(&self) -> Self {
        assert_eq!(self.ndim(), 2, "transpose2 requires a 2-D tensor");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// General axis permutation, e.g. `permute(&[0, 2, 1, 3])`.
    ///
    /// Walks the output in order while **stepping** a source offset by the
    /// permuted strides (odometer-style carries), instead of re-deriving the
    /// full multi-index with divisions for every element; when the innermost
    /// output axis is contiguous in the source the row is a single
    /// `copy_from_slice`. Output is bit-identical to the naive gather.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is not a permutation of `0..ndim`.
    pub fn permute(&self, axes: &[usize]) -> Self {
        if self.ndim() == 0 {
            assert!(axes.is_empty(), "permute needs 0 axes");
            // rank-0: the only permutation is the identity
            return self.clone();
        }
        let old_dims = self.shape.dims();
        let new_dims: Vec<usize> = axes.iter().map(|&a| old_dims[a]).collect();
        let mut out = vec![0.0f32; self.numel()];
        self.permute_into(axes, &mut out);
        Tensor {
            data: out.into(),
            shape: Shape::new(&new_dims),
        }
    }

    /// [`Tensor::permute`] into a caller-provided buffer of `numel`
    /// elements (fully overwritten; the caller owns the permuted shape).
    /// Bit-identical to the allocating version.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is not a permutation of `0..ndim` or `dst` has the
    /// wrong length.
    pub fn permute_into(&self, axes: &[usize], dst: &mut [f32]) {
        let nd = self.ndim();
        assert_eq!(axes.len(), nd, "permute needs {nd} axes");
        assert_eq!(dst.len(), self.numel(), "permute_into length mismatch");
        let mut seen = [false; 16];
        assert!(nd <= seen.len(), "permute supports rank <= 16");
        for &a in axes {
            assert!(a < nd && !seen[a], "axes must be a permutation of 0..{nd}");
            seen[a] = true;
        }
        if nd == 0 {
            dst.copy_from_slice(&self.data);
            return;
        }
        let old_dims = self.shape.dims();
        // row-major strides, computed on the stack (no allocation)
        let mut old_strides = [0usize; 16];
        {
            let mut s = 1usize;
            for i in (0..nd).rev() {
                old_strides[i] = s;
                s *= old_dims[i];
            }
        }
        let mut new_dims = [0usize; 16];
        let mut new_strides_in_old = [0usize; 16];
        for (i, &a) in axes.iter().enumerate() {
            new_dims[i] = old_dims[a];
            new_strides_in_old[i] = old_strides[a];
        }
        let new_dims = &new_dims[..nd];
        let new_strides_in_old = &new_strides_in_old[..nd];
        if !dst.is_empty() {
            let inner_len = new_dims[nd - 1];
            let inner_stride = new_strides_in_old[nd - 1];
            let outer = nd - 1;
            let mut index = [0usize; 16];
            let mut base = 0usize;
            for chunk in dst.chunks_mut(inner_len) {
                if inner_stride == 1 {
                    chunk.copy_from_slice(&self.data[base..base + inner_len]);
                } else {
                    let mut src = base;
                    for v in chunk.iter_mut() {
                        *v = self.data[src];
                        src += inner_stride;
                    }
                }
                // odometer carry over the outer axes, stepping `base` by the
                // source stride of whichever axis advanced
                for axis in (0..outer).rev() {
                    index[axis] += 1;
                    base += new_strides_in_old[axis];
                    if index[axis] < new_dims[axis] {
                        break;
                    }
                    base -= new_strides_in_old[axis] * new_dims[axis];
                    index[axis] = 0;
                }
            }
        }
    }

    // ----- elementwise ----------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    ///
    /// Large tensors are processed in parallel bands on the `qn-parallel`
    /// pool (each element depends only on itself, so results are identical
    /// at any thread count); `f` therefore has to be `Sync`. Shares its
    /// banding with the whole elementwise family (see [`elemwise`]), so
    /// allocating, in-place and into-buffer variants are bit-identical.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        let mut out = vec![0.0f32; self.numel()];
        elemwise::map_to(&mut out, &self.data, f);
        Tensor {
            data: out.into(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place — bit-identical to
    /// [`Tensor::map`] without the output allocation. Parallelized the same
    /// way, so `f` has to be `Sync`.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        elemwise::map_assign(&mut self.data, f);
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// Parallelized like [`Tensor::map`], so `f` has to be `Sync`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        let mut out = vec![0.0f32; self.numel()];
        elemwise::zip_to(&mut out, &self.data, &other.data, f);
        Tensor {
            data: out.into(),
            shape: self.shape.clone(),
        }
    }

    /// Combines with `other` elementwise **in place**:
    /// `self[i] = f(self[i], other[i])` — bit-identical to [`Tensor::zip`]
    /// without the output allocation. The backbone of the allocation-free
    /// activation derivatives in `qn-autograd`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_inplace(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) {
        assert_eq!(
            self.shape, other.shape,
            "zip_inplace shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        elemwise::zip_assign(&mut self.data, &other.data, f);
    }

    /// BLAS-style accumulate `self += alpha · x` in place (bit-identical to
    /// `self.add(&x.scale(alpha))` for the per-element expression
    /// `self + alpha * x`).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, x: &Tensor) {
        assert_eq!(
            self.shape, x.shape,
            "axpy shape mismatch: {} vs {}",
            self.shape, x.shape
        );
        elemwise::zip_assign(&mut self.data, &x.data, move |d, s| d + alpha * s);
    }

    /// Elementwise sum. See [`Tensor::zip`] for panics.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference. See [`Tensor::zip`] for panics.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product. See [`Tensor::zip`] for panics.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise quotient. See [`Tensor::zip`] for panics.
    pub fn div(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place (gradient accumulation) — the
    /// `alpha = 1` case of [`Tensor::axpy`], parallel-banded like the rest
    /// of the elementwise family (bit-identical to the sequential sweep).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        elemwise::zip_assign(&mut self.data, &other.data, |a, b| a + b);
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|v| v + s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Self {
        self.map(|v| -v)
    }

    // ----- broadcast helpers ----------------------------------------------

    /// Adds a length-`M` bias to each row of a `[B, M]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `bias` is not 1-D of matching width.
    pub fn add_row(&self, bias: &Tensor) -> Self {
        assert_eq!(self.ndim(), 2, "add_row requires a 2-D tensor");
        assert_eq!(bias.ndim(), 1, "bias must be 1-D");
        let (b, m) = (self.shape.dim(0), self.shape.dim(1));
        assert_eq!(bias.numel(), m, "bias width {} != {}", bias.numel(), m);
        let mut out = self.clone();
        for i in 0..b {
            for j in 0..m {
                out.data[i * m + j] += bias.data[j];
            }
        }
        out
    }

    /// Adds a length-`C` bias to every spatial position of a `[B, C, H, W]`
    /// tensor.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 4-D or `bias` is not 1-D of matching channels.
    pub fn add_channel(&self, bias: &Tensor) -> Self {
        assert_eq!(self.ndim(), 4, "add_channel requires a 4-D tensor");
        assert_eq!(bias.ndim(), 1, "bias must be 1-D");
        let (b, c, h, w) = self.dims4();
        assert_eq!(bias.numel(), c, "bias width {} != {}", bias.numel(), c);
        let mut out = self.clone();
        let hw = h * w;
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * hw;
                let add = bias.data[ci];
                for v in &mut out.data[base..base + hw] {
                    *v += add;
                }
            }
        }
        out
    }

    /// Multiplies each channel of a `[B, C, H, W]` tensor by a per-channel
    /// factor.
    ///
    /// # Panics
    ///
    /// Panics on rank/width mismatch (see [`Tensor::add_channel`]).
    pub fn mul_channel(&self, scale: &Tensor) -> Self {
        assert_eq!(self.ndim(), 4, "mul_channel requires a 4-D tensor");
        assert_eq!(scale.ndim(), 1, "scale must be 1-D");
        let (b, c, h, w) = self.dims4();
        assert_eq!(scale.numel(), c, "scale width {} != {}", scale.numel(), c);
        let mut out = self.clone();
        let hw = h * w;
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * hw;
                let s = scale.data[ci];
                for v in &mut out.data[base..base + hw] {
                    *v *= s;
                }
            }
        }
        out
    }

    /// Convenience destructuring of a 4-D shape.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D.
    pub fn dims4(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.ndim(), 4, "dims4 requires a 4-D tensor");
        let d = self.shape.dims();
        (d[0], d[1], d[2], d[3])
    }

    /// Convenience destructuring of a 2-D shape.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn dims2(&self) -> (usize, usize) {
        assert_eq!(self.ndim(), 2, "dims2 requires a 2-D tensor");
        let d = self.shape.dims();
        (d[0], d[1])
    }

    // ----- linear algebra ---------------------------------------------------

    /// Matrix product `self @ other` of `[M, K] × [K, N]`.
    ///
    /// A thin wrapper over the shared [`gemm`](crate::gemm) core: results
    /// are bit-identical at any thread count, with the finiteness-guarded
    /// zero-coefficient skip (`0 × NaN = NaN` propagates — see the
    /// [`mat`](crate::MatRef) module docs).
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner dims.
    pub fn matmul(&self, other: &Tensor) -> Self {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = self.dims2();
        let (k2, n) = other.dims2();
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        gemm(MatMut::new(&mut out, m, n), self.mat(), other.mat());
        Tensor {
            data: out.into(),
            shape: Shape::new(&[m, n]),
        }
    }

    /// Matrix product `selfᵀ @ other` of `[K, M]ᵀ × [K, N]`: the transpose
    /// is a zero-copy stride swap into the shared [`gemm`](crate::gemm)
    /// core, never a materialized copy.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible leading dims.
    pub fn matmul_transa(&self, other: &Tensor) -> Self {
        assert_eq!(self.ndim(), 2, "matmul_transa lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_transa rhs must be 2-D");
        let (k, m) = self.dims2();
        let (k2, n) = other.dims2();
        assert_eq!(k, k2, "matmul_transa leading dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        gemm(
            MatMut::new(&mut out, m, n),
            self.mat().transpose(),
            other.mat(),
        );
        Tensor {
            data: out.into(),
            shape: Shape::new(&[m, n]),
        }
    }

    /// Matrix product `self @ otherᵀ` of `[M, K] × [N, K]ᵀ`: the transpose
    /// is a zero-copy stride swap into the shared [`gemm`](crate::gemm)
    /// core, never a materialized copy.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible trailing dims.
    pub fn matmul_transb(&self, other: &Tensor) -> Self {
        assert_eq!(self.ndim(), 2, "matmul_transb lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_transb rhs must be 2-D");
        let (m, k) = self.dims2();
        let (n, k2) = other.dims2();
        assert_eq!(k, k2, "matmul_transb trailing dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        gemm(
            MatMut::new(&mut out, m, n),
            self.mat(),
            other.mat().transpose(),
        );
        Tensor {
            data: out.into(),
            shape: Shape::new(&[m, n]),
        }
    }

    /// Inner product of two same-length tensors viewed as flat vectors —
    /// the `1 × K · K × 1` case of the shared [`gemm`](crate::gemm) core
    /// (identical accumulation order to a sequential fold).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.numel(),
            other.numel(),
            "dot length mismatch: {} vs {}",
            self.numel(),
            other.numel()
        );
        let k = self.numel();
        let mut out = [0.0f32];
        gemm(
            MatMut::new(&mut out, 1, 1),
            MatRef::new(&self.data, 1, k),
            MatRef::new(&other.data, k, 1),
        );
        out[0]
    }

    /// Frobenius norm (`sqrt` of the sum of squares).
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    // ----- reductions ---------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(self.numel() > 0, "mean of empty tensor");
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sums over one axis, removing it.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= ndim`.
    pub fn sum_axis(&self, axis: usize) -> Self {
        let nd = self.ndim();
        assert!(axis < nd, "axis {axis} out of range for rank {nd}");
        let dims = self.shape.dims();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out_dims: Vec<usize> = dims.to_vec();
        out_dims.remove(axis);
        if out_dims.is_empty() {
            out_dims.push(1);
        }
        let mut out = vec![0.0f32; outer * inner];
        self.sum_axis_into(axis, &mut out);
        Tensor {
            data: out.into(),
            shape: Shape::new(&out_dims),
        }
    }

    /// [`Tensor::sum_axis`] into a caller-provided buffer of
    /// `numel / dim(axis)` elements (fully overwritten; the caller owns the
    /// reduced shape). Bit-identical to the allocating version.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= ndim` or `dst` has the wrong length.
    pub fn sum_axis_into(&self, axis: usize, dst: &mut [f32]) {
        let nd = self.ndim();
        assert!(axis < nd, "axis {axis} out of range for rank {nd}");
        let dims = self.shape.dims();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let outer: usize = dims[..axis].iter().product();
        assert_eq!(dst.len(), outer * inner, "sum_axis_into length mismatch");
        dst.fill(0.0);
        if inner > 0 {
            // stride-stepping slice walk: the source cursor advances by
            // `inner` per mid-step, with no per-element index arithmetic;
            // accumulation order per output element (mid ascending) is
            // unchanged, so results are bit-identical to the naive loop
            for (o, orow) in dst.chunks_mut(inner).enumerate() {
                let mut src = o * mid * inner;
                for _ in 0..mid {
                    let row = &self.data[src..src + inner];
                    for (ov, &v) in orow.iter_mut().zip(row) {
                        *ov += v;
                    }
                    src += inner;
                }
            }
        }
    }

    /// Mean over one axis, removing it. See [`Tensor::sum_axis`] for panics.
    pub fn mean_axis(&self, axis: usize) -> Self {
        let n = self.shape.dim(axis) as f32;
        self.sum_axis(axis).scale(1.0 / n)
    }

    /// Row-wise argmax of a `[B, C]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (b, c) = self.dims2();
        (0..b)
            .map(|i| {
                let row = &self.data[i * c..(i + 1) * c];
                row.iter()
                    .enumerate()
                    .max_by(|x, y| x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    // ----- slicing / joining -----------------------------------------------------

    /// Concatenates tensors along `axis`. All other dims must match.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, ranks differ, or non-`axis` dims differ.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Self {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let nd = parts[0].ndim();
        assert!(axis < nd, "axis {axis} out of range for rank {nd}");
        for p in parts {
            assert_eq!(p.ndim(), nd, "concat rank mismatch");
            for a in 0..nd {
                if a != axis {
                    assert_eq!(
                        p.shape.dim(a),
                        parts[0].shape.dim(a),
                        "concat dim {a} mismatch"
                    );
                }
            }
        }
        let dims = parts[0].shape.dims();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let total_mid: usize = parts.iter().map(|p| p.shape.dim(axis)).sum();
        let mut out_dims = dims.to_vec();
        out_dims[axis] = total_mid;
        let mut out = vec![0.0f32; outer * total_mid * inner];
        for o in 0..outer {
            let mut mid_off = 0usize;
            for p in parts {
                let mid = p.shape.dim(axis);
                let src = &p.data[o * mid * inner..(o + 1) * mid * inner];
                let dst_base = (o * total_mid + mid_off) * inner;
                out[dst_base..dst_base + mid * inner].copy_from_slice(src);
                mid_off += mid;
            }
        }
        Tensor {
            data: out.into(),
            shape: Shape::new(&out_dims),
        }
    }

    /// Copies the half-open range `[start, end)` of `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Self {
        let nd = self.ndim();
        assert!(axis < nd, "axis {axis} out of range for rank {nd}");
        let dims = self.shape.dims();
        assert!(
            start <= end && end <= dims[axis],
            "slice [{start}, {end}) out of bounds for axis of size {}",
            dims[axis]
        );
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mid = dims[axis];
        let new_mid = end - start;
        let mut out_dims = dims.to_vec();
        out_dims[axis] = new_mid;
        let mut out = vec![0.0f32; outer * new_mid * inner];
        for o in 0..outer {
            let src_base = (o * mid + start) * inner;
            let dst_base = o * new_mid * inner;
            out[dst_base..dst_base + new_mid * inner]
                .copy_from_slice(&self.data[src_base..src_base + new_mid * inner]);
        }
        Tensor {
            data: out.into(),
            shape: Shape::new(&out_dims),
        }
    }

    /// Gathers rows (axis 0) by index, with repetition allowed.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let dims = self.shape.dims();
        let rows = dims[0];
        let inner: usize = dims[1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims[0] = indices.len();
        let mut out = vec![0.0f32; indices.len() * inner];
        for (d, &i) in indices.iter().enumerate() {
            assert!(i < rows, "row index {i} out of bounds ({rows} rows)");
            out[d * inner..(d + 1) * inner].copy_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        Tensor {
            data: out.into(),
            shape: Shape::new(&out_dims),
        }
    }

    /// Zero-pads the two trailing spatial dims of a `[B, C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D.
    pub fn pad_spatial(&self, pad: usize) -> Self {
        let (b, c, h, w) = self.dims4();
        let (nh, nw) = (h + 2 * pad, w + 2 * pad);
        let mut out = Tensor::zeros(&[b, c, nh, nw]);
        for bi in 0..b {
            for ci in 0..c {
                for y in 0..h {
                    let src = ((bi * c + ci) * h + y) * w;
                    let dst = ((bi * c + ci) * nh + y + pad) * nw + pad;
                    out.data[dst..dst + w].copy_from_slice(&self.data[src..src + w]);
                }
            }
        }
        out
    }

    /// Crops a `[B, C, H, W]` tensor to `[B, C, ch, cw]` starting at
    /// `(top, left)`.
    ///
    /// # Panics
    ///
    /// Panics if the crop window exceeds the spatial extent.
    pub fn crop_spatial(&self, top: usize, left: usize, ch: usize, cw: usize) -> Self {
        let (b, c, h, w) = self.dims4();
        assert!(
            top + ch <= h && left + cw <= w,
            "crop ({top}+{ch}, {left}+{cw}) exceeds ({h}, {w})"
        );
        let mut out = Tensor::zeros(&[b, c, ch, cw]);
        for bi in 0..b {
            for ci in 0..c {
                for y in 0..ch {
                    let src = ((bi * c + ci) * h + top + y) * w + left;
                    let dst = ((bi * c + ci) * ch + y) * cw;
                    out.data[dst..dst + cw].copy_from_slice(&self.data[src..src + cw]);
                }
            }
        }
        out
    }

    /// Flips a `[B, C, H, W]` tensor horizontally (mirror along width).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D.
    pub fn flip_horizontal(&self) -> Self {
        let (b, c, h, w) = self.dims4();
        let mut out = self.clone();
        for bi in 0..b {
            for ci in 0..c {
                for y in 0..h {
                    let base = ((bi * c + ci) * h + y) * w;
                    for x in 0..w {
                        out.data[base + x] = self.data[base + w - 1 - x];
                    }
                }
            }
        }
        out
    }

    // ----- comparison helpers ----------------------------------------------------

    /// `true` if every element differs by at most `tol` in absolute value.
    ///
    /// Shapes must match for the comparison to succeed.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// `true` if shapes match and every element is **bit-identical**
    /// (`f32::to_bits` equality, so `-0.0 != 0.0` and NaN payloads are
    /// compared exactly) — the comparator behind the workspace's
    /// determinism contract that parallel kernels reproduce sequential
    /// results bit-for-bit.
    pub fn bit_identical(&self, other: &Tensor) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).expect("test tensor")
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn constructors_fill() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
        let e = Tensor::eye(3);
        assert_eq!(e.sum(), 3.0);
        assert_eq!(e.get(&[1, 1]), 1.0);
        assert_eq!(e.get(&[0, 1]), 0.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = Tensor::zeros(&[2, 3]);
        a.set(&[1, 2], 7.0);
        assert_eq!(a.get(&[1, 2]), 7.0);
        assert_eq!(a.data()[5], 7.0);
    }

    #[test]
    fn reshape_checks_numel() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert!(a.reshape(&[4]).is_ok());
        assert!(a.reshape(&[5]).is_err());
        assert_eq!(a.reshape(&[1, 4]).unwrap().shape().dims(), &[1, 4]);
    }

    #[test]
    fn transpose2_swaps() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = a.transpose2();
        assert_eq!(b.shape().dims(), &[3, 2]);
        assert_eq!(b.get(&[2, 0]), 3.0);
        assert_eq!(b.get(&[0, 1]), 4.0);
        assert!(b.transpose2().allclose(&a, 0.0));
    }

    #[test]
    fn permute_matches_transpose_on_2d() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert!(a.permute(&[1, 0]).allclose(&a.transpose2(), 0.0));
    }

    #[test]
    fn permute_rank0_is_identity() {
        let s = Tensor::from_vec(vec![2.5], &[]).expect("rank-0 tensor");
        let p = s.permute(&[]);
        assert_eq!(p.data(), &[2.5]);
        assert_eq!(p.ndim(), 0);
    }

    #[test]
    fn bit_identical_distinguishes_zero_signs_and_shapes() {
        let a = t(&[0.0, 1.0], &[2]);
        assert!(a.bit_identical(&a.clone()));
        assert!(!a.bit_identical(&t(&[-0.0, 1.0], &[2])));
        assert!(!a.bit_identical(&t(&[0.0, 1.0], &[2, 1])));
    }

    #[test]
    fn permute_4d_roundtrip() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[2, 3, 4, 5], &mut rng);
        let p = a.permute(&[0, 2, 3, 1]);
        assert_eq!(p.shape().dims(), &[2, 4, 5, 3]);
        let back = p.permute(&[0, 3, 1, 2]);
        assert!(back.allclose(&a, 0.0));
        assert_eq!(p.get(&[1, 2, 3, 1]), a.get(&[1, 1, 2, 3]));
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 5.0], &[2]);
        assert!(a.add(&b).allclose(&t(&[4.0, 7.0], &[2]), 0.0));
        assert!(a.sub(&b).allclose(&t(&[-2.0, -3.0], &[2]), 0.0));
        assert!(a.mul(&b).allclose(&t(&[3.0, 10.0], &[2]), 0.0));
        assert!(b.div(&a).allclose(&t(&[3.0, 2.5], &[2]), 0.0));
        assert!(a.neg().allclose(&t(&[-1.0, -2.0], &[2]), 0.0));
        assert!(a.scale(2.0).allclose(&t(&[2.0, 4.0], &[2]), 0.0));
        assert!(a.add_scalar(1.0).allclose(&t(&[2.0, 3.0], &[2]), 0.0));
    }

    #[test]
    #[should_panic(expected = "zip shape mismatch")]
    fn elementwise_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = t(&[1.0, 2.0], &[2]);
        a.add_assign(&t(&[0.5, 0.5], &[2]));
        a.add_assign(&t(&[0.5, 0.5], &[2]));
        assert!(a.allclose(&t(&[2.0, 3.0], &[2]), 0.0));
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert!(c.allclose(&t(&[58.0, 64.0, 139.0, 154.0], &[2, 2]), 1e-5));
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn(&[4, 4], &mut rng);
        assert!(a.matmul(&Tensor::eye(4)).allclose(&a, 1e-6));
        assert!(Tensor::eye(4).matmul(&a).allclose(&a, 1e-6));
    }

    #[test]
    fn matmul_trans_variants_agree() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn(&[3, 5], &mut rng);
        let b = Tensor::randn(&[5, 4], &mut rng);
        let c = a.matmul(&b);
        // selfᵀ @ other with self = aᵀ
        let at = a.transpose2();
        assert!(at.matmul_transa(&b).allclose(&c, 1e-5));
        // self @ otherᵀ with other = bᵀ
        let bt = b.transpose2();
        assert!(a.matmul_transb(&bt).allclose(&c, 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn dot_and_norm() {
        let a = t(&[3.0, 4.0], &[2]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.frob_norm(), 5.0);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean() - 3.5).abs() < 1e-6);
        assert_eq!(a.max(), 6.0);
        assert_eq!(a.min(), 1.0);
        let s0 = a.sum_axis(0);
        assert!(s0.allclose(&t(&[5.0, 7.0, 9.0], &[3]), 1e-6));
        let s1 = a.sum_axis(1);
        assert!(s1.allclose(&t(&[6.0, 15.0], &[2]), 1e-6));
        let m1 = a.mean_axis(1);
        assert!(m1.allclose(&t(&[2.0, 5.0], &[2]), 1e-6));
    }

    #[test]
    fn sum_axis_middle() {
        let a = Tensor::from_fn(&[2, 3, 2], |i| i as f32);
        let s = a.sum_axis(1);
        assert_eq!(s.shape().dims(), &[2, 2]);
        // slice [0,:,0] = 0,2,4 -> 6 ; [0,:,1] = 1,3,5 -> 9
        assert!(s.allclose(&t(&[6.0, 9.0, 24.0, 27.0], &[2, 2]), 1e-6));
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let a = t(&[0.1, 0.9, 0.0, 0.6, 0.2, 0.2], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Tensor::zeros(&[2]);
        assert!(!a.has_non_finite());
        a.set(&[1], f32::NAN);
        assert!(a.has_non_finite());
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0], &[1, 2]);
        let c0 = Tensor::concat(&[&a, &b], 0);
        assert!(c0.allclose(&t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]), 0.0));
        let d = t(&[7.0, 8.0], &[2, 1]);
        let c1 = Tensor::concat(&[&a, &d], 1);
        assert!(c1.allclose(&t(&[1.0, 2.0, 7.0, 3.0, 4.0, 8.0], &[2, 3]), 0.0));
    }

    #[test]
    fn slice_axis_inverse_of_concat() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert!(c.slice_axis(1, 0, 2).allclose(&a, 0.0));
        assert!(c.slice_axis(1, 2, 4).allclose(&b, 0.0));
    }

    #[test]
    fn select_rows_gathers() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = a.select_rows(&[2, 0, 2]);
        assert!(g.allclose(&t(&[5.0, 6.0, 1.0, 2.0, 5.0, 6.0], &[3, 2]), 0.0));
    }

    #[test]
    fn pad_and_crop_roundtrip() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(&[1, 2, 3, 3], &mut rng);
        let p = a.pad_spatial(2);
        assert_eq!(p.shape().dims(), &[1, 2, 7, 7]);
        assert_eq!(p.get(&[0, 0, 0, 0]), 0.0);
        let c = p.crop_spatial(2, 2, 3, 3);
        assert!(c.allclose(&a, 0.0));
    }

    #[test]
    fn flip_horizontal_is_involution() {
        let mut rng = Rng::seed_from(6);
        let a = Tensor::randn(&[2, 3, 4, 5], &mut rng);
        let f = a.flip_horizontal();
        assert_eq!(f.get(&[0, 0, 0, 0]), a.get(&[0, 0, 0, 4]));
        assert!(f.flip_horizontal().allclose(&a, 0.0));
    }

    #[test]
    fn channel_broadcasts() {
        let a = Tensor::ones(&[1, 2, 2, 2]);
        let bias = t(&[1.0, -1.0], &[2]);
        let ab = a.add_channel(&bias);
        assert_eq!(ab.get(&[0, 0, 1, 1]), 2.0);
        assert_eq!(ab.get(&[0, 1, 0, 0]), 0.0);
        let ms = a.mul_channel(&t(&[2.0, 3.0], &[2]));
        assert_eq!(ms.get(&[0, 0, 0, 0]), 2.0);
        assert_eq!(ms.get(&[0, 1, 1, 0]), 3.0);
    }

    #[test]
    fn add_row_broadcasts() {
        let a = Tensor::zeros(&[2, 3]);
        let b = a.add_row(&t(&[1.0, 2.0, 3.0], &[3]));
        assert!(b.allclose(&t(&[1.0, 2.0, 3.0, 1.0, 2.0, 3.0], &[2, 3]), 0.0));
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Tensor::zeros(&[2, 2]);
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn pooled_roundtrip_recycles_and_zeroes() {
        let pool = BufferPool::new();
        let mut a = Tensor::from_pooled(&pool, &[2, 3]);
        assert!(a.allclose(&Tensor::zeros(&[2, 3]), 0.0));
        a.data_mut().fill(9.0);
        a.into_pool(&pool);
        // warm: same storage comes back, zeroed again by from_pooled
        let b = Tensor::from_pooled(&pool, &[2, 3]);
        assert!(b.allclose(&Tensor::zeros(&[2, 3]), 0.0));
        assert_eq!(pool.stats().hits, 2, "data + dims buffers both recycled");
        // uninit variant exposes the stale contents
        b.into_pool(&pool);
        pool.clear();
        pool.give_f32(vec![5.0; 6]);
        let c = Tensor::from_pooled_uninit(&pool, &[6]);
        assert_eq!(c.data(), &[5.0; 6]);
    }

    #[test]
    fn refit_reuses_storage_and_changes_shape() {
        let mut a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        a.refit(&[2, 2]); // same shape: nothing changes
        assert_eq!(a.data(), &[1.0, 2.0, 3.0, 4.0]);
        a.refit(&[3]); // shrink: contents unspecified, length right
        assert_eq!(a.shape().dims(), &[3]);
        assert_eq!(a.numel(), 3);
        a.refit(&[2, 3]); // grow
        assert_eq!(a.numel(), 6);
    }

    #[test]
    fn zip_inplace_matches_zip() {
        let mut rng = Rng::seed_from(7);
        let a = Tensor::randn(&[5, 7], &mut rng);
        let b = Tensor::randn(&[5, 7], &mut rng);
        let expect = a.zip(&b, |x, y| x * y + 1.0);
        let mut got = a.clone();
        got.zip_inplace(&b, |x, y| x * y + 1.0);
        assert!(got.bit_identical(&expect));
    }

    #[test]
    fn axpy_matches_scale_add() {
        let mut rng = Rng::seed_from(8);
        let a = Tensor::randn(&[4, 4], &mut rng);
        let x = Tensor::randn(&[4, 4], &mut rng);
        let expect = a.zip(&x, |av, xv| av + 2.5 * xv);
        let mut got = a.clone();
        got.axpy(2.5, &x);
        assert!(got.bit_identical(&expect));
    }

    #[test]
    fn permute_into_matches_permute() {
        let mut rng = Rng::seed_from(9);
        let a = Tensor::randn(&[2, 3, 4, 5], &mut rng);
        let expect = a.permute(&[0, 3, 1, 2]);
        let mut dst = vec![f32::NAN; a.numel()];
        a.permute_into(&[0, 3, 1, 2], &mut dst);
        assert_eq!(dst, expect.data());
    }

    #[test]
    fn sum_axis_into_matches_sum_axis() {
        let a = Tensor::from_fn(&[3, 4, 2], |i| i as f32);
        for axis in 0..3 {
            let expect = a.sum_axis(axis);
            let mut dst = vec![f32::NAN; expect.numel()];
            a.sum_axis_into(axis, &mut dst);
            assert_eq!(dst, expect.data(), "axis {axis}");
        }
    }
}
