//! The versioned checkpoint container: a safetensors-style binary format
//! for named tensor collections.
//!
//! # Wire format (versions 1 and 2)
//!
//! ```text
//! byte 0       8       12      16        24
//!      ┌───────┬───────┬───────┬─────────┬────────────┬─ pad ─┬─────────┐
//!      │ magic │ ver   │ crc32 │ hdr_len │ JSON header│  0…0  │  blobs  │
//!      │QNCKPT │ u32 LE│ u32 LE│ u64 LE  │ UTF-8      │       │ f32 LE  │
//!      └───────┴───────┴───────┴─────────┴────────────┴───────┴─────────┘
//!                                                             ▲ 64-byte
//!                                                               aligned
//! ```
//!
//! - **magic** is the 8 bytes `b"QNCKPT\0\0"`.
//! - **crc32** (IEEE, polynomial `0xEDB88320`) covers every byte from
//!   offset 16 to the end of the file — header length, header, padding and
//!   blobs — so truncation and bit rot are caught before parsing.
//! - The **header** is a JSON object
//!   `{"meta":{…},"tensors":[{"name","dtype","shape","offset","len"},…]}`;
//!   `offset` is in bytes **relative to the start of the data section**
//!   (which begins at the first 64-byte boundary at or after the header)
//!   and is itself a multiple of 64, so every blob is 64-byte aligned in
//!   the file and any aligned mapping of it.
//! - **Blobs** are raw little-endian values of the entry's dtype,
//!   concatenated in header order with zero padding between them.
//!
//! # Version 2: per-tensor dtypes
//!
//! Version 1 holds only `"dtype":"f32"` entries. Version 2 keeps the
//! byte layout and adds two dtypes for the quantized inference tier
//! ([`crate::quant`]): `"f16"` (little-endian IEEE binary16 bits, read
//! back via [`Checkpoint::tensor`] which widens to f32 exactly) and
//! `"i8"` (raw int8 codes, read via [`Checkpoint::i8_slice`]; the
//! per-channel scales travel as an ordinary f32 sibling tensor). `len`
//! stays the **element** count for every dtype.
//!
//! [`CheckpointWriter`] negotiates the version automatically: a file
//! whose tensors are all f32 is written as **version 1, byte-for-byte
//! identical** to what pre-quantization builds produced, so old readers
//! keep working and old files keep hashing the same; any f16/i8 entry
//! bumps the file to version 2. Readers accept both.
//!
//! Readers validate everything — magic, version, checksum, header syntax,
//! offsets, lengths, alignment — and return
//! [`TensorError::InvalidCheckpoint`] / [`TensorError::VersionMismatch`]
//! with byte-offset context instead of panicking; the
//! `checkpoint_validation` test suite fuzzes truncations and corruptions
//! against this contract.
//!
//! # Example
//!
//! ```
//! use qn_tensor::{Checkpoint, CheckpointWriter, Tensor};
//!
//! # fn main() -> Result<(), qn_tensor::TensorError> {
//! let mut w = CheckpointWriter::new();
//! w.add_meta("epoch", "3");
//! w.add("layer.weight", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?);
//! let bytes = w.to_bytes()?;
//!
//! let ck = Checkpoint::from_bytes(bytes)?;
//! assert_eq!(ck.meta("epoch"), Some("3"));
//! let t = ck.tensor("layer.weight")?;          // copying read
//! let m = ck.tensor_mapped("layer.weight")?;   // zero-copy window
//! assert!(t.bit_identical(&m));
//! assert!(m.is_mapped());
//! # Ok(())
//! # }
//! ```

use crate::mmap::Mmap;
use crate::{Shape, Storage, Tensor, TensorError};
use std::path::Path;
use std::sync::Arc;

/// First 8 bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"QNCKPT\0\0";

/// Highest container version this build reads. The writer emits the
/// lowest version that can represent the file: 1 for all-f32, 2 once any
/// f16/i8 entry is present (see the module docs).
pub const CHECKPOINT_VERSION: u32 = 2;

/// The legacy all-f32 container version.
pub const CHECKPOINT_VERSION_F32: u32 = 1;

/// Alignment of every tensor blob, in bytes (cache-line / SIMD friendly,
/// and comfortably above `f32`'s requirement for mapped loading).
pub const BLOB_ALIGN: usize = 64;

const FIXED_HEADER_LEN: usize = 24;

/// Element type of one checkpoint blob (version 2 containers; version 1
/// is implicitly all-[`DType::F32`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// 32-bit IEEE float, little-endian — the training dtype.
    F32,
    /// 16-bit IEEE binary16 bits, widened to f32 on read (exact).
    F16,
    /// Signed 8-bit quantized codes; scales travel separately.
    I8,
}

impl DType {
    /// Bytes per element (4 / 2 / 1).
    pub fn elem_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
            DType::I8 => 1,
        }
    }

    /// The header spelling (`"f32"` / `"f16"` / `"i8"`).
    pub fn as_str(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::I8 => "i8",
        }
    }

    fn parse(s: &str) -> Option<DType> {
        match s {
            "f32" => Some(DType::F32),
            "f16" => Some(DType::F16),
            "i8" => Some(DType::I8),
            _ => None,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One named tensor recorded in a checkpoint header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorEntry {
    /// Dotted parameter path, e.g. `block2.conv1.weight`.
    pub name: String,
    /// Element type of the blob.
    pub dtype: DType,
    /// Dimension sizes.
    pub shape: Vec<usize>,
    /// **Absolute** byte offset of the blob in the file (the header's
    /// data-section-relative offset plus the data-section base).
    pub offset: usize,
    /// Element count (always the product of `shape`), **not** bytes.
    pub len: usize,
}

// ---------------------------------------------------------------- writer --

/// One pending blob in a [`CheckpointWriter`].
#[derive(Debug)]
enum Blob {
    F32(Tensor),
    F16 { bits: Vec<u16>, shape: Vec<usize> },
    I8 { codes: Vec<i8>, shape: Vec<usize> },
}

impl Blob {
    fn dtype(&self) -> DType {
        match self {
            Blob::F32(_) => DType::F32,
            Blob::F16 { .. } => DType::F16,
            Blob::I8 { .. } => DType::I8,
        }
    }

    fn dims(&self) -> &[usize] {
        match self {
            Blob::F32(t) => t.shape().dims(),
            Blob::F16 { shape, .. } | Blob::I8 { shape, .. } => shape,
        }
    }

    fn numel(&self) -> usize {
        match self {
            Blob::F32(t) => t.numel(),
            Blob::F16 { bits, .. } => bits.len(),
            Blob::I8 { codes, .. } => codes.len(),
        }
    }
}

/// Builds a checkpoint: collect named tensors and metadata, then serialize
/// with [`CheckpointWriter::to_bytes`] or [`CheckpointWriter::write_to`].
#[derive(Debug, Default)]
pub struct CheckpointWriter {
    meta: Vec<(String, String)>,
    tensors: Vec<(String, Blob)>,
}

impl CheckpointWriter {
    /// An empty checkpoint.
    pub fn new() -> Self {
        CheckpointWriter::default()
    }

    /// Records a string metadata pair (training step, RNG state, …).
    /// Later values win when a key repeats.
    pub fn add_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value.into();
        } else {
            self.meta.push((key, value.into()));
        }
    }

    /// Records a named f32 tensor. Names must be unique; duplicates are
    /// reported by [`CheckpointWriter::to_bytes`].
    pub fn add(&mut self, name: impl Into<String>, tensor: Tensor) {
        self.tensors.push((name.into(), Blob::F32(tensor)));
    }

    /// Records a named tensor stored as binary16 (round-to-nearest-even
    /// per element, see [`crate::quant::f32_to_f16_bits`]). Reading it
    /// back widens to f32 exactly, so the round-trip loses only the f16
    /// rounding done here. Forces the file to version 2.
    pub fn add_f16(&mut self, name: impl Into<String>, tensor: &Tensor) {
        self.tensors.push((
            name.into(),
            Blob::F16 {
                bits: crate::quant::encode_f16(tensor.data()),
                shape: tensor.shape().dims().to_vec(),
            },
        ));
    }

    /// Records a named int8 blob (quantized codes; store the per-channel
    /// scales as an ordinary f32 sibling tensor). Forces the file to
    /// version 2.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len()` is not the product of `dims`.
    pub fn add_i8(&mut self, name: impl Into<String>, codes: Vec<i8>, dims: &[usize]) {
        let numel: usize = dims.iter().product();
        assert_eq!(
            codes.len(),
            numel,
            "add_i8: {} codes cannot fill shape {dims:?}",
            codes.len()
        );
        self.tensors.push((
            name.into(),
            Blob::I8 {
                codes,
                shape: dims.to_vec(),
            },
        ));
    }

    /// Number of tensors recorded so far.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// `true` if no tensors were recorded.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Serializes the checkpoint into one byte buffer (see the
    /// [module docs](self) for the layout).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] if two tensors share a
    /// name.
    pub fn to_bytes(&self) -> Result<Vec<u8>, TensorError> {
        for (i, (name, _)) in self.tensors.iter().enumerate() {
            if self.tensors[..i].iter().any(|(n, _)| n == name) {
                return Err(TensorError::InvalidCheckpoint {
                    offset: 0,
                    detail: format!("duplicate tensor name '{name}'"),
                });
            }
        }
        // data-section-relative blob offsets, each 64-byte aligned
        let mut header = String::from("{\"meta\":{");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                header.push(',');
            }
            push_json_string(&mut header, k);
            header.push(':');
            push_json_string(&mut header, v);
        }
        header.push_str("},\"tensors\":[");
        let mut rel = 0usize;
        for (i, (name, b)) in self.tensors.iter().enumerate() {
            if i > 0 {
                header.push(',');
            }
            header.push_str("{\"name\":");
            push_json_string(&mut header, name);
            // for f32 this emits the exact version-1 byte sequence — the
            // all-f32 byte-identity guarantee depends on it
            header.push_str(",\"dtype\":\"");
            header.push_str(b.dtype().as_str());
            header.push_str("\",\"shape\":[");
            for (d, dim) in b.dims().iter().enumerate() {
                if d > 0 {
                    header.push(',');
                }
                header.push_str(&dim.to_string());
            }
            header.push_str(&format!("],\"offset\":{rel},\"len\":{}}}", b.numel()));
            rel = align_up(rel + b.numel() * b.dtype().elem_bytes(), BLOB_ALIGN);
        }
        header.push_str("]}");

        let version = if self.tensors.iter().all(|(_, b)| b.dtype() == DType::F32) {
            CHECKPOINT_VERSION_F32
        } else {
            CHECKPOINT_VERSION
        };
        let data_start = align_up(FIXED_HEADER_LEN + header.len(), BLOB_ALIGN);
        let mut out = Vec::with_capacity(data_start + rel);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]); // crc32, patched below
        out.extend_from_slice(&(header.len() as u64).to_le_bytes());
        out.extend_from_slice(header.as_bytes());
        out.resize(data_start, 0);
        for (_, b) in &self.tensors {
            match b {
                Blob::F32(t) => extend_f32_le(&mut out, t.data()),
                Blob::F16 { bits, .. } => {
                    for h in bits {
                        out.extend_from_slice(&h.to_le_bytes());
                    }
                }
                Blob::I8 { codes, .. } => {
                    out.extend(codes.iter().map(|&c| c as u8));
                }
            }
            out.resize(align_up(out.len(), BLOB_ALIGN), 0);
        }
        let crc = crc32(&out[16..]);
        out[12..16].copy_from_slice(&crc.to_le_bytes());
        Ok(out)
    }

    /// Serializes and writes the checkpoint to `path` (via a `.tmp`
    /// sibling renamed into place, so a crash mid-write never leaves a
    /// half-written file at `path` — the property the train-loop
    /// "save every N steps" path depends on).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] on duplicate tensor
    /// names or if the file cannot be written.
    pub fn write_to(&self, path: &Path) -> Result<(), TensorError> {
        let bytes = self.to_bytes()?;
        let err = |e: std::io::Error| TensorError::InvalidCheckpoint {
            offset: 0,
            detail: format!("cannot write {}: {e}", path.display()),
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(err)?;
        std::fs::rename(&tmp, path).map_err(err)
    }
}

fn align_up(n: usize, align: usize) -> usize {
    n.div_ceil(align) * align
}

/// Appends `s` as a JSON string literal, escaping quotes, backslashes and
/// control characters.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a slice of `f32` as little-endian bytes (a straight memcpy on
/// little-endian hosts).
fn extend_f32_le(out: &mut Vec<u8>, data: &[f32]) {
    if cfg!(target_endian = "little") {
        // SAFETY: reinterpreting f32 as bytes is always valid; on a
        // little-endian host the in-memory order is the wire order.
        let bytes =
            unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), data.len() * 4) };
        out.extend_from_slice(bytes);
    } else {
        for v in data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

// ---------------------------------------------------------------- reader --

/// A parsed, validated checkpoint backed by an [`Mmap`].
///
/// [`Checkpoint::tensor`] copies a blob into owned storage;
/// [`Checkpoint::tensor_mapped`] hands out a zero-copy window (the tensor
/// keeps the mapping alive through its `Arc`). See the [module docs](self)
/// for the format.
#[derive(Debug)]
pub struct Checkpoint {
    map: Arc<Mmap>,
    version: u32,
    meta: Vec<(String, String)>,
    entries: Vec<TensorEntry>,
}

impl Checkpoint {
    /// Opens and validates the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidCheckpoint`] for unreadable, malformed,
    /// truncated or corrupt files; [`TensorError::VersionMismatch`] for a
    /// version this build does not read.
    pub fn open(path: &Path) -> Result<Checkpoint, TensorError> {
        Checkpoint::from_mmap(Arc::new(Mmap::open(path)?))
    }

    /// Validates an in-memory byte buffer as a checkpoint (fuzz/test entry
    /// point; errors as in [`Checkpoint::open`]).
    pub fn from_bytes(bytes: impl AsRef<[u8]>) -> Result<Checkpoint, TensorError> {
        Checkpoint::from_mmap(Arc::new(Mmap::from_bytes(bytes)))
    }

    /// Validates an existing mapping as a checkpoint (errors as in
    /// [`Checkpoint::open`]).
    pub fn from_mmap(map: Arc<Mmap>) -> Result<Checkpoint, TensorError> {
        let bytes = map.as_bytes();
        let fail = |offset: usize, detail: String| TensorError::InvalidCheckpoint {
            offset: offset as u64,
            detail,
        };
        if bytes.len() < FIXED_HEADER_LEN {
            return Err(fail(
                bytes.len(),
                format!(
                    "file is {} bytes, shorter than the {FIXED_HEADER_LEN}-byte fixed header",
                    bytes.len()
                ),
            ));
        }
        if bytes[..8] != CHECKPOINT_MAGIC {
            return Err(fail(0, format!("bad magic {:02x?}", &bytes[..8])));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version == 0 || version > CHECKPOINT_VERSION {
            return Err(TensorError::VersionMismatch {
                found: version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let actual_crc = crc32(&bytes[16..]);
        if stored_crc != actual_crc {
            return Err(fail(
                12,
                format!("checksum mismatch: header says {stored_crc:#010x}, file hashes to {actual_crc:#010x}"),
            ));
        }
        let header_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let header_end = usize::try_from(header_len)
            .ok()
            .and_then(|h| h.checked_add(FIXED_HEADER_LEN))
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| {
                fail(
                    16,
                    format!(
                        "header length {header_len} runs past the {}-byte file",
                        bytes.len()
                    ),
                )
            })?;
        let header = std::str::from_utf8(&bytes[FIXED_HEADER_LEN..header_end]).map_err(|e| {
            fail(
                FIXED_HEADER_LEN + e.valid_up_to(),
                "header is not UTF-8".into(),
            )
        })?;
        let (meta, raw) = parse_header(header, FIXED_HEADER_LEN)?;
        let data_start = align_up(header_end, BLOB_ALIGN);
        let mut entries = Vec::with_capacity(raw.len());
        for e in raw {
            let numel = e
                .shape
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .ok_or_else(|| {
                    fail(
                        FIXED_HEADER_LEN,
                        format!("shape {:?} of '{}' overflows", e.shape, e.name),
                    )
                })?;
            if numel != e.len {
                return Err(fail(
                    FIXED_HEADER_LEN,
                    format!(
                        "tensor '{}' declares len {} but shape {:?} has {numel} elements",
                        e.name, e.len, e.shape
                    ),
                ));
            }
            if version < CHECKPOINT_VERSION && e.dtype != DType::F32 {
                return Err(fail(
                    FIXED_HEADER_LEN,
                    format!(
                        "tensor '{}' has dtype {} but the file declares version {version} \
                         (non-f32 dtypes require version {CHECKPOINT_VERSION})",
                        e.name, e.dtype
                    ),
                ));
            }
            let offset = e
                .offset
                .checked_add(data_start)
                .filter(|&o| o % e.dtype.elem_bytes() == 0)
                .ok_or_else(|| {
                    fail(
                        FIXED_HEADER_LEN,
                        format!("tensor '{}' has a misaligned or overflowing offset", e.name),
                    )
                })?;
            // bounds-check the window now so later reads cannot fail
            let nbytes = numel.checked_mul(e.dtype.elem_bytes()).ok_or_else(|| {
                fail(
                    FIXED_HEADER_LEN,
                    format!("tensor '{}' byte length overflows", e.name),
                )
            })?;
            map.byte_slice(offset, nbytes).map_err(|err| match err {
                TensorError::InvalidCheckpoint { offset, detail } => {
                    TensorError::InvalidCheckpoint {
                        offset,
                        detail: format!("tensor '{}': {detail}", e.name),
                    }
                }
                other => other,
            })?;
            if entries.iter().any(|p: &TensorEntry| p.name == e.name) {
                return Err(fail(
                    FIXED_HEADER_LEN,
                    format!("duplicate tensor name '{}'", e.name),
                ));
            }
            entries.push(TensorEntry {
                name: e.name,
                dtype: e.dtype,
                shape: e.shape,
                offset,
                len: numel,
            });
        }
        Ok(Checkpoint {
            map,
            version,
            meta,
            entries,
        })
    }

    /// The container version stored in the file.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Looks up a metadata value by key.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All metadata pairs, in file order.
    pub fn meta_all(&self) -> &[(String, String)] {
        &self.meta
    }

    /// All tensor entries, in file order.
    pub fn entries(&self) -> &[TensorEntry] {
        &self.entries
    }

    /// Looks up one tensor's entry by name.
    pub fn entry(&self, name: &str) -> Option<&TensorEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The mapping backing this checkpoint.
    pub fn mmap(&self) -> &Arc<Mmap> {
        &self.map
    }

    /// Reads a tensor by name, **copying** the blob into owned storage.
    /// f16 entries are widened to f32 (exact per element).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] if no tensor has that
    /// name, or if the entry is `i8` — quantized codes have no canonical
    /// f32 value without their scales; read them with
    /// [`Checkpoint::i8_slice`].
    pub fn tensor(&self, name: &str) -> Result<Tensor, TensorError> {
        let e = self.require(name)?;
        match e.dtype {
            DType::F32 => {
                let data = self
                    .map
                    .f32_slice(e.offset, e.len)
                    .expect("window validated in from_mmap");
                Tensor::from_vec(data.to_vec(), &e.shape)
            }
            DType::F16 => {
                let bytes = self
                    .map
                    .byte_slice(e.offset, e.len * 2)
                    .expect("window validated in from_mmap");
                let data = bytes
                    .chunks_exact(2)
                    .map(|p| crate::quant::f16_bits_to_f32(u16::from_le_bytes([p[0], p[1]])))
                    .collect();
                Tensor::from_vec(data, &e.shape)
            }
            DType::I8 => Err(TensorError::InvalidCheckpoint {
                offset: e.offset as u64,
                detail: format!(
                    "tensor '{name}' is i8; read the codes with i8_slice() and apply \
                     the stored scales"
                ),
            }),
        }
    }

    /// Reads a tensor by name as a **zero-copy** window borrowing this
    /// checkpoint's mapping (`tensor.is_mapped()` will be `true`; the
    /// mapping stays alive as long as any such tensor does). Bit-identical
    /// to [`Checkpoint::tensor`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] if no tensor has that
    /// name or if the entry is not f32 (f16/i8 blobs cannot be windowed
    /// as `&[f32]`; use [`Checkpoint::tensor`] / [`Checkpoint::i8_slice`]).
    pub fn tensor_mapped(&self, name: &str) -> Result<Tensor, TensorError> {
        let e = self.require(name)?;
        if e.dtype != DType::F32 {
            return Err(TensorError::InvalidCheckpoint {
                offset: e.offset as u64,
                detail: format!(
                    "tensor '{name}' is {}; zero-copy mapping requires f32",
                    e.dtype
                ),
            });
        }
        Tensor::from_mapped(Arc::clone(&self.map), e.offset, &e.shape)
    }

    /// Borrows the raw int8 codes of an `i8` entry, zero-copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] if no tensor has that
    /// name or the entry is not `i8`.
    pub fn i8_slice(&self, name: &str) -> Result<&[i8], TensorError> {
        let e = self.require(name)?;
        if e.dtype != DType::I8 {
            return Err(TensorError::InvalidCheckpoint {
                offset: e.offset as u64,
                detail: format!("tensor '{name}' is {}, not i8", e.dtype),
            });
        }
        let bytes = self
            .map
            .byte_slice(e.offset, e.len)
            .expect("window validated in from_mmap");
        // SAFETY: i8 and u8 share size, alignment and validity; the
        // window was bounds-checked in from_mmap.
        Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<i8>(), bytes.len()) })
    }

    fn require(&self, name: &str) -> Result<&TensorEntry, TensorError> {
        self.entry(name)
            .ok_or_else(|| TensorError::InvalidCheckpoint {
                offset: FIXED_HEADER_LEN as u64,
                detail: format!("no tensor named '{name}' in the checkpoint"),
            })
    }
}

// --------------------------------------------------------- header parser --

/// A header entry as parsed (offset still data-section relative).
struct RawEntry {
    name: String,
    dtype: DType,
    shape: Vec<usize>,
    offset: usize,
    len: usize,
}

/// The `"meta"` key/value pairs of a parsed header.
type MetaPairs = Vec<(String, String)>;

/// Parses the JSON-ish header. `base` is the header's byte offset in the
/// file, so error offsets point into the file, not the substring.
fn parse_header(header: &str, base: usize) -> Result<(MetaPairs, Vec<RawEntry>), TensorError> {
    let mut p = Parser {
        bytes: header.as_bytes(),
        pos: 0,
        base,
    };
    let mut meta = Vec::new();
    let mut tensors = Vec::new();
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "meta" => {
                p.expect(b'{')?;
                loop {
                    p.skip_ws();
                    if p.eat(b'}') {
                        break;
                    }
                    let k = p.string()?;
                    p.expect(b':')?;
                    let v = p.string()?;
                    meta.push((k, v));
                    p.skip_ws();
                    if !p.eat(b',') {
                        p.expect(b'}')?;
                        break;
                    }
                }
            }
            "tensors" => {
                p.expect(b'[')?;
                loop {
                    p.skip_ws();
                    if p.eat(b']') {
                        break;
                    }
                    tensors.push(p.tensor_entry()?);
                    p.skip_ws();
                    if !p.eat(b',') {
                        p.expect(b']')?;
                        break;
                    }
                }
            }
            _ => p.skip_value()?, // unknown top-level keys are tolerated
        }
        p.skip_ws();
        if !p.eat(b',') {
            p.expect(b'}')?;
            break;
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after the header object"));
    }
    Ok((meta, tensors))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> TensorError {
        TensorError::InvalidCheckpoint {
            offset: (self.base + self.pos) as u64,
            detail: detail.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TensorError> {
        self.skip_ws();
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found {}",
                b as char,
                self.peek()
                    .map_or("end of header".to_string(), |c| format!("'{}'", c as char))
            )))
        }
    }

    fn string(&mut self) -> Result<String, TensorError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8 is passed through (header was
                    // validated as UTF-8 before parsing)
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("validated UTF-8"),
                    );
                }
            }
        }
    }

    fn uint(&mut self) -> Result<usize, TensorError> {
        self.skip_ws();
        let start = self.pos;
        let mut value: usize = 0;
        while let Some(d @ b'0'..=b'9') = self.peek() {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add((d - b'0') as usize))
                .ok_or_else(|| self.err("integer overflows usize"))?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a non-negative integer"));
        }
        Ok(value)
    }

    fn tensor_entry(&mut self) -> Result<RawEntry, TensorError> {
        self.expect(b'{')?;
        let (mut name, mut shape, mut offset, mut len, mut dtype) = (None, None, None, None, None);
        loop {
            self.skip_ws();
            if self.eat(b'}') {
                break;
            }
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "name" => name = Some(self.string()?),
                "dtype" => dtype = Some(self.string()?),
                "offset" => offset = Some(self.uint()?),
                "len" => len = Some(self.uint()?),
                "shape" => {
                    self.expect(b'[')?;
                    let mut dims = Vec::new();
                    loop {
                        self.skip_ws();
                        if self.eat(b']') {
                            break;
                        }
                        dims.push(self.uint()?);
                        self.skip_ws();
                        if !self.eat(b',') {
                            self.expect(b']')?;
                            break;
                        }
                    }
                    shape = Some(dims);
                }
                _ => self.skip_value()?,
            }
            self.skip_ws();
            if !self.eat(b',') {
                self.expect(b'}')?;
                break;
            }
        }
        let dtype = match dtype.as_deref() {
            Some(s) => {
                DType::parse(s).ok_or_else(|| self.err(format!("unsupported dtype '{s}'")))?
            }
            None => return Err(self.err("tensor entry is missing 'dtype'")),
        };
        match (name, shape, offset, len) {
            (Some(name), Some(shape), Some(offset), Some(len)) => Ok(RawEntry {
                name,
                dtype,
                shape,
                offset,
                len,
            }),
            _ => Err(self.err("tensor entry is missing one of name/shape/offset/len")),
        }
    }

    /// Skips one JSON value of any kind (tolerating unknown keys written
    /// by future minor revisions).
    fn skip_value(&mut self) -> Result<(), TensorError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string().map(|_| ()),
            Some(b'0'..=b'9') => self.uint().map(|_| ()),
            Some(b'{') | Some(b'[') => {
                let (open, close) = if self.peek() == Some(b'{') {
                    (b'{', b'}')
                } else {
                    (b'[', b']')
                };
                self.pos += 1;
                let mut depth = 1usize;
                while depth > 0 {
                    self.skip_ws();
                    match self.peek() {
                        None => return Err(self.err("unterminated value")),
                        Some(b'"') => {
                            self.string()?;
                        }
                        Some(c) if c == open => {
                            depth += 1;
                            self.pos += 1;
                        }
                        Some(c) if c == close => {
                            depth -= 1;
                            self.pos += 1;
                        }
                        Some(_) => self.pos += 1,
                    }
                }
                Ok(())
            }
            Some(_) => {
                // bare tokens: true / false / null / signed numbers
                while let Some(c) = self.peek() {
                    if matches!(c, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r') {
                        break;
                    }
                    self.pos += 1;
                }
                Ok(())
            }
            None => Err(self.err("expected a value")),
        }
    }
}

// ------------------------------------------------------------------ crc --

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// helper used by Checkpoint::tensor_mapped via Tensor::from_mapped; kept
// here so the Storage invariant (validated window) has a single owner
impl Tensor {
    /// Builds a tensor whose storage **borrows** `map` starting `offset`
    /// bytes in — the zero-copy loading primitive behind
    /// [`Checkpoint::tensor_mapped`]. The window is validated now, so
    /// later reads cannot fail; writes copy-on-write (see
    /// [`Storage`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCheckpoint`] if the window is
    /// misaligned or out of bounds, or [`TensorError::LengthMismatch`]
    /// never (the length is derived from `dims`).
    pub fn from_mapped(
        map: Arc<Mmap>,
        offset: usize,
        dims: &[usize],
    ) -> Result<Tensor, TensorError> {
        let numel = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| TensorError::InvalidCheckpoint {
                offset: offset as u64,
                detail: format!("shape {dims:?} overflows"),
            })?;
        map.f32_slice(offset, numel)?;
        Ok(Tensor::from_storage(
            Storage::Mapped {
                map,
                offset,
                len: numel,
            },
            Shape::new(dims),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointWriter {
        let mut w = CheckpointWriter::new();
        w.add_meta("epoch", "2");
        w.add_meta("note", "weird \"quoted\" \\ value\n");
        w.add(
            "a.weight",
            Tensor::from_vec(vec![1.0, -2.5, 3.25], &[3]).unwrap(),
        );
        w.add(
            "b.bias",
            Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap(),
        );
        w
    }

    #[test]
    fn roundtrip_copy_and_mapped() {
        let bytes = sample().to_bytes().unwrap();
        let ck = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ck.version(), CHECKPOINT_VERSION_F32, "all-f32 stays v1");
        assert_eq!(ck.meta("epoch"), Some("2"));
        assert_eq!(ck.meta("note"), Some("weird \"quoted\" \\ value\n"));
        assert_eq!(ck.entries().len(), 2);
        let a = ck.tensor("a.weight").unwrap();
        assert_eq!(a.data(), &[1.0, -2.5, 3.25]);
        let am = ck.tensor_mapped("a.weight").unwrap();
        assert!(am.is_mapped());
        assert!(a.bit_identical(&am));
        let b = ck.tensor_mapped("b.bias").unwrap();
        assert_eq!(b.shape().dims(), &[2, 3]);
        assert_eq!(b.get(&[1, 2]), 5.0);
    }

    #[test]
    fn blobs_are_64_byte_aligned() {
        let bytes = sample().to_bytes().unwrap();
        let ck = Checkpoint::from_bytes(&bytes).unwrap();
        for e in ck.entries() {
            assert_eq!(e.offset % BLOB_ALIGN, 0, "{}", e.name);
        }
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join("qn_ckpt_file_roundtrip.qnckpt");
        sample().write_to(&path).unwrap();
        let ck = Checkpoint::open(&path).unwrap();
        assert_eq!(ck.tensor("a.weight").unwrap().numel(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_tensor_is_an_error() {
        let ck = Checkpoint::from_bytes(sample().to_bytes().unwrap()).unwrap();
        assert!(matches!(
            ck.tensor("nope"),
            Err(TensorError::InvalidCheckpoint { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected_on_write() {
        let mut w = CheckpointWriter::new();
        w.add("x", Tensor::zeros(&[1]));
        w.add("x", Tensor::zeros(&[1]));
        assert!(w.to_bytes().is_err());
    }

    #[test]
    fn version_mismatch_is_its_own_error() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        // re-seal the checksum so the version check is what fires
        let crc = crc32(&bytes[16..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Checkpoint::from_bytes(&bytes).unwrap_err(),
            TensorError::VersionMismatch {
                found: 9,
                supported: CHECKPOINT_VERSION
            }
        );
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let mut bytes = sample().to_bytes().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, TensorError::InvalidCheckpoint { offset: 12, .. }),
            "{err}"
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // the classic zlib test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let bytes = CheckpointWriter::new().to_bytes().unwrap();
        let ck = Checkpoint::from_bytes(&bytes).unwrap();
        assert!(ck.entries().is_empty());
    }

    #[test]
    fn f16_entry_bumps_version_and_roundtrips_exactly() {
        let t = Tensor::from_vec(vec![1.0, -0.5, 3.25, 1.0e-5], &[2, 2]).unwrap();
        let mut w = CheckpointWriter::new();
        w.add_f16("half.weight", &t);
        let ck = Checkpoint::from_bytes(w.to_bytes().unwrap()).unwrap();
        assert_eq!(ck.version(), CHECKPOINT_VERSION);
        assert_eq!(ck.entry("half.weight").unwrap().dtype, DType::F16);
        let back = ck.tensor("half.weight").unwrap();
        assert_eq!(back.shape().dims(), &[2, 2]);
        // decode(encode(x)) must equal the f16-rounded value bit-for-bit
        for (a, b) in t.data().iter().zip(back.data()) {
            let expect = crate::quant::f16_bits_to_f32(crate::quant::f32_to_f16_bits(*a));
            assert_eq!(b.to_bits(), expect.to_bits());
        }
        // but a zero-copy f32 window over f16 bits must refuse
        assert!(ck.tensor_mapped("half.weight").is_err());
    }

    #[test]
    fn i8_entry_roundtrips_through_i8_slice() {
        let codes = vec![-127i8, -1, 0, 1, 127, 64];
        let mut w = CheckpointWriter::new();
        w.add_i8("q.weight", codes.clone(), &[2, 3]);
        w.add("q.scales", Tensor::from_vec(vec![0.5, 0.25], &[2]).unwrap());
        let ck = Checkpoint::from_bytes(w.to_bytes().unwrap()).unwrap();
        assert_eq!(ck.version(), CHECKPOINT_VERSION);
        assert_eq!(ck.i8_slice("q.weight").unwrap(), &codes[..]);
        assert_eq!(ck.entry("q.weight").unwrap().shape, vec![2, 3]);
        // the f32 sibling loads normally; dtype accessors cross-check
        assert_eq!(ck.tensor("q.scales").unwrap().data(), &[0.5, 0.25]);
        assert!(ck.tensor("q.weight").is_err(), "i8 has no f32 reading");
        assert!(ck.i8_slice("q.scales").is_err(), "f32 is not i8");
    }

    #[test]
    fn version_1_files_may_not_carry_quantized_dtypes() {
        // hand-downgrade a v2 file's version field: the reader must reject
        // the f16 entry rather than misinterpret the blob
        let mut w = CheckpointWriter::new();
        w.add_f16("h", &Tensor::ones(&[4]));
        let mut bytes = w.to_bytes().unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let crc = crc32(&bytes[16..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(format!("{err}").contains("version"), "got: {err}");
    }
}
