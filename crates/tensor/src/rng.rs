use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Deterministic random number generator used across the workspace.
///
/// Wraps [`rand::rngs::StdRng`] with a fixed-seed constructor so experiments
/// are reproducible run to run. Every dataset generator, weight
/// initializer and shuffling operation in `quadranet` draws from this type.
///
/// # Example
///
/// ```
/// use qn_tensor::Rng;
///
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Rng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform requires lo < hi, got [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        // Box–Muller keeps us independent of rand_distr.
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.inner.gen_range(0.0f32..1.0) < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Splits off an independent generator (for per-worker determinism).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.inner.gen::<u64>())
    }

    /// Snapshot of the generator's exact stream position, for
    /// checkpointing. Feeding it back to [`Rng::from_state`] yields a
    /// generator that continues the stream bit-for-bit — the basis of the
    /// train-loop resume guarantee in `qn-experiments`.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Rebuilds a generator from a [`Rng::state`] snapshot.
    pub fn from_state(state: [u64; 4]) -> Rng {
        Rng {
            inner: StdRng::from_state(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..32 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..16).all(|_| a.normal() == b.normal());
        assert!(!same);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = Rng::seed_from(9);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(3);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = Rng::seed_from(21);
        for _ in 0..7 {
            a.normal();
        }
        let snap = a.state();
        let tail: Vec<u32> = (0..64).map(|_| a.normal().to_bits()).collect();
        let mut b = Rng::from_state(snap);
        let resumed: Vec<u32> = (0..64).map(|_| b.normal().to_bits()).collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = Rng::seed_from(77);
        let mut c = a.fork();
        assert_ne!(a.normal(), c.normal());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::seed_from(0).below(0);
    }
}
