//! Bit-equality of the packed GEMM core against the retained seed kernels
//! (`qn_tensor::reference`) — the executable contract of the PR that
//! collapsed the six matmul kernels into one core:
//!
//! - random shapes, including degenerate dims (`m`/`k`/`n` of zero),
//! - every transpose-flag combination (stride-swapped views, incl. Aᵀ·Bᵀ,
//!   which no seed kernel even offered),
//! - zero-heavy A (engages the finiteness-guarded skip machinery) and
//!   non-finite B rows (disables it),
//! - sizes below and above both the packing and the parallel thresholds,
//! - capped-to-one-thread vs. free thread count.

use proptest::prelude::*;
use qn_tensor::{gemm, reference, MatMut, MatRef, Tensor};

/// Bit-identical for every non-NaN value, positional NaN-for-NaN otherwise.
///
/// NaN *payloads/signs* are outside the determinism contract: `f32`
/// addition is commutative, so the compiler may emit either operand order,
/// and when both operands are NaN the hardware keeps whichever comes first.
/// The seed kernels never pinned payloads either — PR 3's contract is that
/// NaN-ness propagates, which this still checks per element.
fn bit_identical_nan_aware(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data().iter())
            .all(|(x, y)| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()))
}

fn vals(numel: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, numel)
}

/// Builds a `rows × cols` tensor from the prefix of `data`, zeroing roughly
/// `zero_pct`% of the entries (deterministically, via a multiplicative
/// hash) so the zero-skip machinery gets exercised.
fn build(data: &[f32], rows: usize, cols: usize, zero_pct: u32) -> Tensor {
    let v: Vec<f32> = data[..rows * cols]
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            if (i as u32).wrapping_mul(2654435761) % 100 < zero_pct {
                0.0
            } else {
                x
            }
        })
        .collect();
    Tensor::from_vec(v, &[rows, cols]).expect("test tensor")
}

/// Checks all three public entry points against the seed kernels, plus the
/// double-transpose view combination straight through `gemm`.
fn assert_all_variants(a: &Tensor, b: &Tensor) -> Result<(), TestCaseError> {
    // a: [m, k], b: [k, n]. On finite data `bit_identical_nan_aware` is
    // exactly bit equality (no NaN can arise); with injected non-finites it
    // additionally accepts positional NaN-for-NaN (payloads are unpinned).
    let m = a.dims2().0;
    let n = b.dims2().1;
    prop_assert!(bit_identical_nan_aware(
        &a.matmul(b),
        &reference::matmul(a, b)
    ));

    // transa: store aᵀ as [k, m], multiply back
    let at = a.transpose2();
    prop_assert!(bit_identical_nan_aware(
        &at.matmul_transa(b),
        &reference::matmul_transa(&at, b)
    ));

    // transb: store bᵀ as [n, k], multiply back
    let bt = b.transpose2();
    prop_assert!(bit_identical_nan_aware(
        &a.matmul_transb(&bt),
        &reference::matmul_transb(a, &bt)
    ));

    // both transposed: gemm(aᵀ-view of at, bᵀ-view of bt) == a @ b
    let mut out = vec![0.0f32; m * n];
    gemm(
        MatMut::new(&mut out, m, n),
        at.mat().transpose(),
        bt.mat().transpose(),
    );
    let direct = Tensor::from_vec(out, &[m, n]).expect("gemm output");
    prop_assert!(bit_identical_nan_aware(&direct, &reference::matmul(a, b)));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Small and degenerate shapes (incl. m/k/n = 0) stay on the strided
    /// fallback; k = 0 must zero-fill like the seed's empty accumulation.
    #[test]
    fn small_and_degenerate_shapes_match_seed(
        m in 0usize..7, k in 0usize..7, n in 0usize..7,
        a in vals(6 * 6), b in vals(6 * 6), zpct in 0u32..80
    ) {
        let ta = build(&a, m, k, zpct);
        let tb = build(&b, k, n, 0);
        assert_all_variants(&ta, &tb)?;
    }

    /// Shapes crossing the packing threshold (register-tiled path), with
    /// zero-heavy A so the block skip engages.
    #[test]
    fn packed_path_matches_seed(
        m in 4usize..33, k in 8usize..33, n in 8usize..33,
        a in vals(32 * 32), b in vals(32 * 32), zpct in 0u32..90
    ) {
        let ta = build(&a, m, k, zpct);
        let tb = build(&b, k, n, zpct / 2);
        assert_all_variants(&ta, &tb)?;
    }

    /// Non-finite rows of B must disable the skip in both implementations:
    /// 0 × NaN = NaN propagates identically.
    #[test]
    fn non_finite_rows_match_seed(
        m in 4usize..17, k in 4usize..17, n in 8usize..17,
        a in vals(16 * 16), b in vals(16 * 16),
        zpct in 20u32..90, nan_at in 0usize..256, inf_at in 0usize..256
    ) {
        let ta = build(&a, m, k, zpct);
        let mut bv = b[..k * n].to_vec();
        let len = bv.len();
        bv[nan_at % len] = f32::NAN;
        bv[inf_at % len] = f32::INFINITY;
        let tb = Tensor::from_vec(bv, &[k, n]).expect("test tensor");
        assert_all_variants(&ta, &tb)?;
    }

    /// Above the parallel threshold the row-band split must not change a
    /// bit: capped to one thread vs. free thread count vs. the sequential
    /// seed kernel all agree.
    #[test]
    fn thread_count_never_changes_bits(
        a in vals(48 * 40), b in vals(40 * 44), zpct in 0u32..60
    ) {
        let ta = build(&a, 48, 40, zpct);
        let tb = build(&b, 40, 44, 0);
        let free = ta.matmul(&tb);
        let capped = qn_parallel::with_max_threads(1, || ta.matmul(&tb));
        prop_assert!(free.bit_identical(&capped));
        prop_assert!(free.bit_identical(&reference::matmul(&ta, &tb)));
        let free_tb = ta.matmul_transb(&tb.transpose2());
        let capped_tb =
            qn_parallel::with_max_threads(1, || ta.matmul_transb(&tb.transpose2()));
        prop_assert!(free_tb.bit_identical(&capped_tb));
    }

    /// `dot` is the 1 × k · k × 1 case of the core and must equal the
    /// sequential fold it replaced.
    #[test]
    fn dot_matches_sequential_fold(a in vals(257), b in vals(257)) {
        let ta = Tensor::from_vec(a.clone(), &[257]).expect("test tensor");
        let tb = Tensor::from_vec(b.clone(), &[257]).expect("test tensor");
        let fold: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        prop_assert!(ta.dot(&tb).to_bits() == fold.to_bits());
    }
}

/// One non-property pin: a `MatRef` batch subslice + stride-swap transpose
/// (the exact pattern `bmm` and the fused conv2d use) equals the seed
/// kernel on the materialized slice.
#[test]
fn batch_subslice_views_match_seed() {
    let mut rng = qn_tensor::Rng::seed_from(7);
    let a = Tensor::randn(&[3, 12, 10], &mut rng); // [N, M, K]
    let b = Tensor::randn(&[3, 10, 14], &mut rng); // [N, K, P]
    for ni in 0..3 {
        let av = MatRef::new(&a.data()[ni * 120..(ni + 1) * 120], 12, 10);
        let bv = MatRef::new(&b.data()[ni * 140..(ni + 1) * 140], 10, 14);
        let mut out = vec![0.0f32; 12 * 14];
        gemm(
            MatMut::new(&mut out, 12, 14),
            av,
            bv.transpose().transpose(),
        );
        let ai = a.slice_axis(0, ni, ni + 1).reshape(&[12, 10]).unwrap();
        let bi = b.slice_axis(0, ni, ni + 1).reshape(&[10, 14]).unwrap();
        let expect = reference::matmul(&ai, &bi);
        assert_eq!(out.as_slice(), expect.data());
    }
}
