//! Property-based tests of tensor algebra laws.

use proptest::prelude::*;
use qn_tensor::{col2im, im2col, Conv2dSpec, Rng, Tensor};

fn tensor_strategy(numel: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, numel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn addition_commutes(a in tensor_strategy(12), b in tensor_strategy(12)) {
        let ta = Tensor::from_vec(a, &[3, 4]).unwrap();
        let tb = Tensor::from_vec(b, &[3, 4]).unwrap();
        prop_assert!(ta.add(&tb).allclose(&tb.add(&ta), 1e-6));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(6), b in tensor_strategy(8), c in tensor_strategy(8)
    ) {
        let ta = Tensor::from_vec(a, &[3, 2]).unwrap();
        let tb = Tensor::from_vec(b, &[2, 4]).unwrap();
        let tc = Tensor::from_vec(c, &[2, 4]).unwrap();
        let lhs = ta.matmul(&tb.add(&tc));
        let rhs = ta.matmul(&tb).add(&ta.matmul(&tc));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn matmul_associates(a in tensor_strategy(4), b in tensor_strategy(6), c in tensor_strategy(6)) {
        let ta = Tensor::from_vec(a, &[2, 2]).unwrap();
        let tb = Tensor::from_vec(b, &[2, 3]).unwrap();
        let tc = Tensor::from_vec(c, &[3, 2]).unwrap();
        let lhs = ta.matmul(&tb).matmul(&tc);
        let rhs = ta.matmul(&tb.matmul(&tc));
        prop_assert!(lhs.allclose(&rhs, 1e-2));
    }

    #[test]
    fn transpose_is_involution(a in tensor_strategy(15)) {
        let t = Tensor::from_vec(a, &[3, 5]).unwrap();
        prop_assert!(t.transpose2().transpose2().allclose(&t, 0.0));
    }

    #[test]
    fn transpose_reverses_matmul(a in tensor_strategy(6), b in tensor_strategy(8)) {
        let ta = Tensor::from_vec(a, &[3, 2]).unwrap();
        let tb = Tensor::from_vec(b, &[2, 4]).unwrap();
        let lhs = ta.matmul(&tb).transpose2();
        let rhs = tb.transpose2().matmul(&ta.transpose2());
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn concat_then_slice_roundtrips(a in tensor_strategy(6), b in tensor_strategy(9)) {
        let ta = Tensor::from_vec(a, &[3, 2]).unwrap();
        let tb = Tensor::from_vec(b, &[3, 3]).unwrap();
        let c = Tensor::concat(&[&ta, &tb], 1);
        prop_assert!(c.slice_axis(1, 0, 2).allclose(&ta, 0.0));
        prop_assert!(c.slice_axis(1, 2, 5).allclose(&tb, 0.0));
    }

    #[test]
    fn sum_axis_agrees_with_total(a in tensor_strategy(24)) {
        let t = Tensor::from_vec(a, &[2, 3, 4]).unwrap();
        for axis in 0..3 {
            let partial = t.sum_axis(axis).sum();
            prop_assert!((partial - t.sum()).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let spec = Conv2dSpec::new(3, 1, 1);
        let dims = (1usize, 2usize, 5usize, 5usize);
        let x = Tensor::randn(&[dims.0, dims.1, dims.2, dims.3], &mut rng);
        let cols = im2col(&x, spec);
        let y = Tensor::randn(cols.shape().dims(), &mut rng);
        let lhs = cols.dot(&y);
        let rhs = x.dot(&col2im(&y, spec, dims));
        prop_assert!((lhs - rhs).abs() <= 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn frobenius_triangle_inequality(a in tensor_strategy(10), b in tensor_strategy(10)) {
        let ta = Tensor::from_vec(a, &[10]).unwrap();
        let tb = Tensor::from_vec(b, &[10]).unwrap();
        prop_assert!(ta.add(&tb).frob_norm() <= ta.frob_norm() + tb.frob_norm() + 1e-4);
    }

    #[test]
    fn flip_preserves_channel_sums(a in tensor_strategy(2 * 3 * 4 * 4)) {
        let t = Tensor::from_vec(a, &[2, 3, 4, 4]).unwrap();
        let f = t.flip_horizontal();
        prop_assert!((f.sum() - t.sum()).abs() < 1e-3);
        prop_assert!(f.flip_horizontal().allclose(&t, 0.0));
    }
}
