//! Fuzz-style negative tests for the checkpoint container: every malformed
//! input must surface as a [`TensorError`], never a panic, and never a
//! silently-wrong parse. [`Checkpoint::from_bytes`] is the fuzz entry point
//! — it runs the identical validation path as [`Checkpoint::open`].

use qn_tensor::checkpoint::{crc32, BLOB_ALIGN, CHECKPOINT_MAGIC};
use qn_tensor::{
    Checkpoint, CheckpointWriter, Rng, Tensor, TensorError, CHECKPOINT_VERSION,
    CHECKPOINT_VERSION_F32,
};

/// A small but fully-featured valid file: meta plus two oddly-sized
/// tensors (so there is alignment padding between blobs).
fn valid_bytes() -> Vec<u8> {
    let mut w = CheckpointWriter::new();
    w.add_meta("kind", "fuzz-target");
    w.add("a.weight", Tensor::from_fn(&[3, 5], |i| i as f32));
    w.add("a.bias", Tensor::from_fn(&[3], |i| -(i as f32)));
    w.to_bytes().expect("serialize")
}

/// Builds a file around an arbitrary header byte string, with correct
/// magic/version/crc/header_len framing — isolates header-content
/// validation from framing validation.
fn craft(header: &[u8], data: &[f32]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(&(header.len() as u64).to_le_bytes());
    out.extend_from_slice(header);
    out.resize(out.len().div_ceil(BLOB_ALIGN) * BLOB_ALIGN, 0);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&out[16..]);
    out[12..16].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Header JSON describing one 4-element tensor at data offset 0.
fn one_tensor_header(fields: &str) -> String {
    format!("{{\"meta\":{{}},\"tensors\":[{{{fields}}}]}}")
}

/// A valid version-2 file: an f16 tensor, an i8 blob and an f32 scale
/// vector (every dtype the container knows).
fn valid_v2_bytes() -> Vec<u8> {
    let mut w = CheckpointWriter::new();
    w.add_meta("kind", "fuzz-target-v2");
    w.add_f16("h.weight", &Tensor::from_fn(&[3, 5], |i| i as f32 * 0.25));
    w.add_i8(
        "q.weight",
        (0..12).map(|i| (i - 6) as i8).collect(),
        &[3, 4],
    );
    w.add("q.scales", Tensor::from_fn(&[3], |i| 0.01 + i as f32));
    w.to_bytes().expect("serialize v2")
}

#[test]
fn the_fuzz_target_baseline_parses() {
    let ckpt = Checkpoint::from_bytes(valid_bytes()).expect("valid file");
    assert_eq!(ckpt.version(), CHECKPOINT_VERSION_F32);
    assert_eq!(ckpt.meta("kind"), Some("fuzz-target"));
    assert_eq!(ckpt.entries().len(), 2);
    let t = ckpt.tensor("a.weight").expect("tensor");
    assert_eq!(t.shape().dims(), &[3, 5]);
    assert_eq!(t.data()[7], 7.0);
}

#[test]
fn every_truncation_is_an_error() {
    let bytes = valid_bytes();
    for len in 0..bytes.len() {
        let res = Checkpoint::from_bytes(&bytes[..len]);
        assert!(res.is_err(), "truncation to {len}/{} parsed", bytes.len());
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    let bytes = valid_bytes();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            let res = Checkpoint::from_bytes(&corrupt);
            assert!(res.is_err(), "flip of byte {byte} bit {bit} undetected");
        }
    }
}

#[test]
fn every_truncation_of_a_v2_file_is_an_error() {
    let bytes = valid_v2_bytes();
    assert_eq!(
        Checkpoint::from_bytes(&bytes).expect("valid v2").version(),
        CHECKPOINT_VERSION
    );
    for len in 0..bytes.len() {
        let res = Checkpoint::from_bytes(&bytes[..len]);
        assert!(
            res.is_err(),
            "v2 truncation to {len}/{} parsed",
            bytes.len()
        );
    }
}

#[test]
fn every_single_bit_flip_of_a_v2_file_is_detected() {
    let bytes = valid_v2_bytes();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            let res = Checkpoint::from_bytes(&corrupt);
            assert!(res.is_err(), "v2 flip of byte {byte} bit {bit} undetected");
        }
    }
}

#[test]
fn random_mutations_of_a_v2_file_never_panic() {
    // crc re-sealed after each mutation so the structural validators —
    // dtype names, dtype-aware alignment and bounds — get exercised
    let bytes = valid_v2_bytes();
    let mut rng = Rng::seed_from(0x18B1);
    for _ in 0..512 {
        let mut corrupt = bytes.clone();
        for _ in 0..1 + rng.below(4) {
            let at = rng.below(corrupt.len());
            corrupt[at] = rng.below(256) as u8;
        }
        let crc = crc32(&corrupt[16..]);
        corrupt[12..16].copy_from_slice(&crc.to_le_bytes());
        if let Ok(ck) = Checkpoint::from_bytes(&corrupt) {
            // readable files must also read without panicking
            let _ = ck.tensor("h.weight");
            let _ = ck.i8_slice("q.weight");
            let _ = ck.tensor("q.scales");
        }
    }
}

#[test]
fn all_f32_files_stay_version_1_and_roundtrip_bit_exactly() {
    // the pre-quantization format promise: a writer holding only f32
    // tensors emits a version-1 file whose tensors read back untouched
    let bytes = valid_bytes();
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        CHECKPOINT_VERSION_F32,
        "all-f32 file must carry the version-1 tag on the wire"
    );
    let ck = Checkpoint::from_bytes(&bytes).unwrap();
    let orig = Tensor::from_fn(&[3, 5], |i| i as f32);
    assert!(ck.tensor("a.weight").unwrap().bit_identical(&orig));
    assert!(ck.tensor_mapped("a.weight").unwrap().bit_identical(&orig));
    // and serializing the identical content twice is deterministic
    assert_eq!(bytes, valid_bytes());
}

#[test]
fn appended_garbage_fails_the_checksum() {
    let mut bytes = valid_bytes();
    bytes.push(0xAB);
    assert!(matches!(
        Checkpoint::from_bytes(&bytes),
        Err(TensorError::InvalidCheckpoint { .. })
    ));
}

#[test]
fn bad_magic_is_rejected() {
    for magic in [&[0u8; 8], b"SAFETENS", b"QNCKPT\x01\0", b"qnckpt\0\0"] {
        let mut bytes = valid_bytes();
        bytes[..8].copy_from_slice(magic);
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(
            format!("{err}").contains("magic"),
            "wrong error for magic {magic:02x?}: {err}"
        );
    }
}

#[test]
fn unsupported_versions_are_rejected_before_any_parsing() {
    // version is checked before the crc, so no re-hashing is needed here
    for version in [0u32, CHECKPOINT_VERSION + 1, u32::MAX] {
        let mut bytes = valid_bytes();
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        match Checkpoint::from_bytes(&bytes) {
            Err(TensorError::VersionMismatch { found, supported }) => {
                assert_eq!(found, version);
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("version {version} gave {other:?}"),
        }
    }
}

#[test]
fn header_length_overruns_are_rejected() {
    for header_len in [u64::MAX, u64::MAX - 23, 1 << 40, 100_000] {
        let mut bytes = valid_bytes();
        bytes[16..24].copy_from_slice(&header_len.to_le_bytes());
        let crc = crc32(&bytes[16..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(
            format!("{err}").contains("header length"),
            "header_len {header_len} gave: {err}"
        );
    }
}

#[test]
fn non_utf8_header_is_rejected() {
    let err = Checkpoint::from_bytes(craft(&[0xFF, 0xFE, b'{', b'}'], &[])).unwrap_err();
    assert!(format!("{err}").contains("UTF-8"), "got: {err}");
}

#[test]
fn malformed_header_json_is_rejected() {
    for header in [
        "",
        "not json at all",
        "{",
        "{}trailing",
        "{\"meta\":{",
        "{\"meta\":{\"k\":}}",
        "{\"meta\":{\"unterminated",
        "{\"tensors\":[{]}",
        "{\"tensors\":[{\"name\":\"a\",\"dtype\":\"f32\",\"shape\":[1e3],\"offset\":0,\"len\":1}]}",
        "{\"meta\":{\"k\":\"bad \\q escape\"}}",
        "{\"meta\":{\"k\":\"bad \\uZZZZ escape\"}}",
    ] {
        let res = Checkpoint::from_bytes(craft(header.as_bytes(), &[]));
        assert!(res.is_err(), "header {header:?} parsed");
    }
}

#[test]
fn incomplete_tensor_entries_are_rejected() {
    for fields in [
        "",
        "\"name\":\"a\"",
        "\"name\":\"a\",\"dtype\":\"f32\",\"shape\":[4],\"offset\":0",
        "\"name\":\"a\",\"dtype\":\"f32\",\"offset\":0,\"len\":4",
        "\"name\":\"a\",\"shape\":[4],\"offset\":0,\"len\":4",
    ] {
        let header = one_tensor_header(fields);
        let res = Checkpoint::from_bytes(craft(header.as_bytes(), &[0.0; 4]));
        assert!(res.is_err(), "entry {{{fields}}} parsed");
    }
}

#[test]
fn wrong_dtype_is_rejected() {
    let header =
        one_tensor_header("\"name\":\"a\",\"dtype\":\"f64\",\"shape\":[4],\"offset\":0,\"len\":4");
    let err = Checkpoint::from_bytes(craft(header.as_bytes(), &[0.0; 4])).unwrap_err();
    assert!(format!("{err}").contains("dtype"), "got: {err}");
}

#[test]
fn shape_len_disagreement_is_rejected() {
    let header = one_tensor_header(
        "\"name\":\"a\",\"dtype\":\"f32\",\"shape\":[2,2],\"offset\":0,\"len\":3",
    );
    let err = Checkpoint::from_bytes(craft(header.as_bytes(), &[0.0; 4])).unwrap_err();
    assert!(format!("{err}").contains("elements"), "got: {err}");
}

#[test]
fn overflowing_shapes_and_offsets_are_rejected() {
    let huge = usize::MAX;
    for fields in [
        // shape product overflows usize
        format!("\"name\":\"a\",\"dtype\":\"f32\",\"shape\":[{huge},16],\"offset\":0,\"len\":1"),
        // literal too large for usize
        format!("\"name\":\"a\",\"dtype\":\"f32\",\"shape\":[{huge}9],\"offset\":0,\"len\":1"),
        // offset + data_start overflows
        format!("\"name\":\"a\",\"dtype\":\"f32\",\"shape\":[1],\"offset\":{huge},\"len\":1"),
        // misaligned offset
        "\"name\":\"a\",\"dtype\":\"f32\",\"shape\":[1],\"offset\":2,\"len\":1".to_string(),
    ] {
        let header = one_tensor_header(&fields);
        let res = Checkpoint::from_bytes(craft(header.as_bytes(), &[0.0; 4]));
        assert!(res.is_err(), "entry {{{fields}}} parsed");
    }
}

#[test]
fn blobs_past_the_end_of_file_are_rejected_at_parse_time() {
    // len 64 declared, only 4 floats present: the bounds check must fire in
    // from_bytes, not later in tensor()/tensor_mapped()
    let header = one_tensor_header(
        "\"name\":\"a\",\"dtype\":\"f32\",\"shape\":[64],\"offset\":0,\"len\":64",
    );
    let err = Checkpoint::from_bytes(craft(header.as_bytes(), &[0.0; 4])).unwrap_err();
    assert!(format!("{err}").contains("'a'"), "got: {err}");
}

#[test]
fn duplicate_tensor_names_are_rejected() {
    let entry = "{\"name\":\"a\",\"dtype\":\"f32\",\"shape\":[1],\"offset\":0,\"len\":1}";
    let header = format!("{{\"meta\":{{}},\"tensors\":[{entry},{entry}]}}");
    let err = Checkpoint::from_bytes(craft(header.as_bytes(), &[0.0; 4])).unwrap_err();
    assert!(format!("{err}").contains("duplicate"), "got: {err}");
}

#[test]
fn unknown_header_keys_are_tolerated() {
    // forward-compat: extra keys (of every JSON value kind) skip cleanly
    let header = "{\"meta\":{},\"future\":{\"x\":[1,{\"y\":\"z\"}],\"b\":true},\"tensors\":[],\
\"v\":null}";
    let ckpt = Checkpoint::from_bytes(craft(header.as_bytes(), &[])).expect("tolerant parse");
    assert!(ckpt.entries().is_empty());
}

#[test]
fn random_garbage_never_parses_and_never_panics() {
    let mut rng = Rng::seed_from(0xF422);
    for round in 0..512 {
        let len = rng.below(600);
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let res = Checkpoint::from_bytes(&bytes);
        assert!(res.is_err(), "garbage round {round} ({len} bytes) parsed");
    }
}

#[test]
fn random_mutations_of_a_valid_file_never_panic() {
    // unlike the exhaustive bit-flip sweep this also patches the crc, so
    // the structural validators behind it get exercised
    let bytes = valid_bytes();
    let mut rng = Rng::seed_from(0xC4C);
    for _ in 0..512 {
        let mut corrupt = bytes.clone();
        for _ in 0..1 + rng.below(4) {
            let at = rng.below(corrupt.len());
            corrupt[at] = rng.below(256) as u8;
        }
        let crc = crc32(&corrupt[16..]);
        corrupt[12..16].copy_from_slice(&crc.to_le_bytes());
        // outcome may be Ok (mutation hit padding or a blob byte) or Err
        // (mutation hit structure) — it must simply never panic
        let _ = Checkpoint::from_bytes(&corrupt);
    }
}
