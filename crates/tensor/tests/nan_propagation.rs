//! Regression tests for the zero-skip matmul bug: a `0.0` coefficient used
//! to skip its RHS row unconditionally, so `0 × NaN` silently produced
//! `0.0` instead of propagating the NaN — divergence could hide inside any
//! product with structural zeros (ReLU outputs, zero-padded im2col rows).
//!
//! All three matmul variants now route through the shared packed GEMM core
//! (`qn_tensor::gemm`), where the zero skip is finiteness-guarded once, at
//! the B-packing step — IEEE-754-exact: these tests pin the propagation
//! behaviour for all three entry points across that refactor.

use qn_tensor::Tensor;

fn t(data: &[f32], dims: &[usize]) -> Tensor {
    Tensor::from_vec(data.to_vec(), dims).expect("test tensor")
}

#[test]
fn matmul_zero_times_nan_is_nan() {
    // a = [[0.0]], b = [[NaN]]: IEEE-754 says 0 × NaN = NaN.
    let a = t(&[0.0], &[1, 1]);
    let b = t(&[f32::NAN], &[1, 1]);
    assert!(a.matmul(&b).data()[0].is_nan(), "0 × NaN must be NaN");
}

#[test]
fn matmul_zero_times_infinity_is_nan() {
    let a = t(&[0.0], &[1, 1]);
    for inf in [f32::INFINITY, f32::NEG_INFINITY] {
        let b = t(&[inf], &[1, 1]);
        assert!(a.matmul(&b).data()[0].is_nan(), "0 × ∞ must be NaN");
    }
}

#[test]
fn matmul_nan_propagates_only_through_its_column() {
    // a = [[0, 1]], b = [[NaN, 7], [2, 3]]: row 0 of b carries a NaN in
    // column 0 only, and its coefficient is 0. The NaN must reach out[0,0]
    // (0 × NaN) while out[0,1] stays finite (0 × 7 + 1 × 3 = 3).
    let a = t(&[0.0, 1.0], &[1, 2]);
    let b = t(&[f32::NAN, 7.0, 2.0, 3.0], &[2, 2]);
    let c = a.matmul(&b);
    assert!(c.data()[0].is_nan(), "NaN column must contaminate");
    assert_eq!(c.data()[1], 3.0, "finite column must stay exact");
}

#[test]
fn matmul_zero_skip_still_exact_on_finite_rows() {
    // b row 0 = [5, 6] is finite (zero coefficients may skip it); b row 1 =
    // [NaN, 8] is not (its zero coefficients must still multiply through).
    let a = t(&[0.0, 1.0, 0.0, 0.0], &[2, 2]);
    let b = t(&[5.0, 6.0, f32::NAN, 8.0], &[2, 2]);
    let c = a.matmul(&b);
    assert!(c.get(&[0, 0]).is_nan()); // 0·5 + 1·NaN
    assert_eq!(c.get(&[0, 1]), 8.0); // 0·6 + 1·8 — NaN sits in column 0 only
    assert!(c.get(&[1, 0]).is_nan()); // 0·5 (skipped) + 0·NaN
    assert_eq!(c.get(&[1, 1]), 0.0); // 0·6 (skipped) + 0·8
}

#[test]
fn matmul_transa_zero_times_nan_is_nan() {
    // selfᵀ @ other with self = [[0]], other = [[NaN]].
    let a = t(&[0.0], &[1, 1]);
    let b = t(&[f32::NAN], &[1, 1]);
    assert!(a.matmul_transa(&b).data()[0].is_nan());
    let binf = t(&[f32::INFINITY], &[1, 1]);
    assert!(a.matmul_transa(&binf).data()[0].is_nan());
}

#[test]
fn matmul_transa_nan_row_reaches_zero_coefficient() {
    // self is [K=2, M=2]; self[1][0] = 0 pairs with other row 1 = [NaN, 4].
    let a = t(&[1.0, 2.0, 0.0, 3.0], &[2, 2]);
    let b = t(&[1.0, 1.0, f32::NAN, 4.0], &[2, 2]);
    let c = a.matmul_transa(&b);
    // out[0][0] = 1·1 + 0·NaN -> NaN; out[0][1] = 1·1 + 0·4 = 1.
    assert!(c.get(&[0, 0]).is_nan());
    assert_eq!(c.get(&[0, 1]), 1.0);
    // column 1 of self is dense, so NaN propagates normally there too.
    assert!(c.get(&[1, 0]).is_nan());
}

#[test]
fn matmul_transb_zero_times_nan_is_nan() {
    let a = t(&[0.0], &[1, 1]);
    let b = t(&[f32::NAN], &[1, 1]);
    assert!(a.matmul_transb(&b).data()[0].is_nan());
    let binf = t(&[f32::NEG_INFINITY], &[1, 1]);
    assert!(a.matmul_transb(&binf).data()[0].is_nan());
}

#[test]
fn matmul_transb_mixed_zero_and_nan() {
    // a = [[0, 2]], bᵀ rows: [NaN, 1] and [3, 4].
    // out[0][0] = 0·NaN + 2·1 -> NaN; out[0][1] = 0·3 + 2·4 = 8.
    let a = t(&[0.0, 2.0], &[1, 2]);
    let b = t(&[f32::NAN, 1.0, 3.0, 4.0], &[2, 2]);
    let c = a.matmul_transb(&b);
    assert!(c.data()[0].is_nan());
    assert_eq!(c.data()[1], 8.0);
}

#[test]
fn zero_width_rhs_with_zero_coefficients_yields_empty_product() {
    // Regression: the finiteness mask must cover all K rows even when the
    // RHS has zero columns (no data), instead of indexing out of bounds.
    let a = t(&[0.0, 1.0], &[1, 2]);
    let b = Tensor::zeros(&[2, 0]);
    assert_eq!(a.matmul(&b).shape().dims(), &[1, 0]);
    let at = t(&[0.0, 1.0], &[2, 1]);
    assert_eq!(at.matmul_transa(&b).shape().dims(), &[1, 0]);
}

#[test]
fn sparse_products_unchanged_for_finite_inputs() {
    // The corrected skip must not change any finite result: compare a
    // zero-heavy product against the dense definition.
    let a = t(&[0.0, 1.5, 0.0, 0.0, -2.0, 0.0], &[2, 3]);
    let b = t(&[1.0, 2.0, 0.0, -1.0, 3.0, 0.5], &[3, 2]);
    let c = a.matmul(&b);
    let mut expect = vec![0.0f32; 4];
    for i in 0..2 {
        for j in 0..2 {
            for p in 0..3 {
                expect[i * 2 + j] += a.get(&[i, p]) * b.get(&[p, j]);
            }
        }
    }
    assert_eq!(c.data(), expect.as_slice());
}
