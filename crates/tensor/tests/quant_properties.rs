//! Property suites for the int8 quantization tier:
//!
//! - quantize→dequantize error is bounded by half a quantization step per
//!   element (per-channel symmetric absmax: step = channel absmax / 127),
//! - `gemm_i8` is **bit-identical** to its sequential scalar reference at
//!   every dispatch level reachable on this host, for both the packed
//!   (plain row-major B) and pack-free (transposed weight view) paths,
//! - f16 round-trips keep half-precision accuracy and survive a second
//!   encode bit-exactly.
//!
//! `force_level` is process-global, so level-sweeping cases serialize on
//! one mutex (the test harness runs cases on threads).

use proptest::prelude::*;
use qn_tensor::{
    decode_f16, encode_f16, f16_bits_to_f32, f32_to_f16_bits, gemm_i8, gemm_i8_reference, MatMut,
    MatRefI8, QTensor, Tensor,
};
use std::sync::Mutex;

static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn for_each_level(
    mut f: impl FnMut(qn_simd::SimdLevel) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    let _g = LEVEL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let prev = qn_simd::SimdLevel::active();
    let mut result = Ok(());
    for level in qn_simd::available_levels() {
        qn_simd::force_level(level);
        result = f(level);
        if result.is_err() {
            break;
        }
    }
    qn_simd::force_level(prev);
    result
}

fn vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-4.0f32..4.0, n)
}

fn codes(n: usize) -> impl Strategy<Value = Vec<i8>> {
    prop::collection::vec(-128i8..127, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Per-channel absmax quantization keeps every element within half a
    /// step of the original: `|deq − orig| ≤ scale/2`, `scale = absmax/127`
    /// per row. Also pins the invariants the bound rests on: codes stay in
    /// `[−127, 127]` and each row's scale is its absmax over 127.
    #[test]
    fn quantize_dequantize_error_is_half_step(
        rows in 1usize..8, cols in 1usize..33, data in vals(8 * 32)
    ) {
        let data = &data[..rows * cols];
        let q = QTensor::quantize_rows(data, rows, cols);
        prop_assert_eq!(q.rows(), rows);
        prop_assert_eq!(q.cols(), cols);
        prop_assert!(q.data().iter().all(|&c| (-127..=127).contains(&(c as i32))));
        let deq = q.dequantize();
        for i in 0..rows {
            let row = &data[i * cols..(i + 1) * cols];
            let absmax = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = q.scales()[i];
            if absmax == 0.0 {
                prop_assert_eq!(scale, 0.0, "all-zero row must get scale 0");
            } else {
                prop_assert!((scale - absmax / 127.0).abs() <= absmax * 1e-6);
            }
            // half-step bound, with a sliver of slack for the two float
            // roundings (×inv_scale then ×scale)
            let bound = scale * 0.5 + absmax * 1e-5;
            for (j, &x) in row.iter().enumerate() {
                let err = (deq.data()[i * cols + j] - x).abs();
                prop_assert!(
                    err <= bound,
                    "row {i} col {j}: |{} - {x}| = {err} > {bound}",
                    deq.data()[i * cols + j]
                );
            }
        }
    }

    /// Storage accounting behind the ≥3.5× memory claim: int8 codes + one
    /// f32 scale per row, vs 4 bytes per element.
    #[test]
    fn weight_bytes_count_codes_plus_scales(rows in 1usize..8, cols in 1usize..33) {
        let data = vec![1.0f32; rows * cols];
        let q = QTensor::quantize_rows(&data, rows, cols);
        prop_assert_eq!(q.weight_bytes(), rows * cols + rows * 4);
        prop_assert_eq!(q.f32_bytes(), rows * cols * 4);
    }

    /// `gemm_i8` against the sequential scalar reference, bit-exact at
    /// every dispatch level, on the **packed** path (plain row-major B is
    /// not column-contiguous, so the kernel packs Bᵀ first).
    #[test]
    fn gemm_i8_matches_reference_at_every_level(
        m in 0usize..6, k in 0usize..24, n in 0usize..6,
        a in codes(6 * 24), b in codes(24 * 6),
        sa in vals(6), sb in vals(6)
    ) {
        let av = MatRefI8::new(&a[..m * k], m, k);
        let bv = MatRefI8::new(&b[..k * n], k, n);
        let mut expect = vec![0.0f32; m * n];
        gemm_i8_reference(&mut expect, av, bv, &sa[..m], &sb[..n]);
        for_each_level(|level| {
            let mut got = vec![f32::NAN; m * n];
            gemm_i8(MatMut::new(&mut got, m, n), av, bv, &sa[..m], &sb[..n]);
            for (g, e) in got.iter().zip(&expect) {
                prop_assert_eq!(g.to_bits(), e.to_bits(), "gemm_i8 @ {:?}", level);
            }
            Ok(())
        })?;
    }

    /// The pack-free weight path — `B = Wᵀ` as a stride-swapped view of a
    /// row-major `[n, k]` weight — gives the same bits as the packed path
    /// and the reference, at every level.
    #[test]
    fn gemm_i8_transposed_weight_view_is_bit_exact(
        m in 1usize..6, k in 1usize..24, n in 1usize..6,
        a in codes(6 * 24), w in codes(6 * 24),
        sa in vals(6), sb in vals(6)
    ) {
        let av = MatRefI8::new(&a[..m * k], m, k);
        let bt = MatRefI8::new(&w[..n * k], n, k).transpose(); // [k, n], col-contiguous
        let mut expect = vec![0.0f32; m * n];
        gemm_i8_reference(&mut expect, av, bt, &sa[..m], &sb[..n]);
        for_each_level(|level| {
            let mut got = vec![f32::NAN; m * n];
            gemm_i8(MatMut::new(&mut got, m, n), av, bt, &sa[..m], &sb[..n]);
            for (g, e) in got.iter().zip(&expect) {
                prop_assert_eq!(g.to_bits(), e.to_bits(), "gemm_i8ᵀ @ {:?}", level);
            }
            Ok(())
        })?;
    }

    /// A strided output (row_stride > n) only writes inside each row's
    /// first `n` lanes — the gutter survives untouched.
    #[test]
    fn gemm_i8_respects_output_row_stride(
        m in 1usize..5, k in 1usize..16, n in 1usize..5, pad in 1usize..4,
        a in codes(5 * 16), b in codes(16 * 5), sa in vals(5), sb in vals(5)
    ) {
        let av = MatRefI8::new(&a[..m * k], m, k);
        let bv = MatRefI8::new(&b[..k * n], k, n);
        let stride = n + pad;
        let mut out = vec![7.5f32; (m - 1) * stride + n + pad];
        gemm_i8(
            MatMut::with_row_stride(&mut out, m, n, stride),
            av, bv, &sa[..m], &sb[..n],
        );
        let mut expect = vec![0.0f32; m * n];
        gemm_i8_reference(&mut expect, av, bv, &sa[..m], &sb[..n]);
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(out[i * stride + j].to_bits(), expect[i * n + j].to_bits());
            }
            for g in n..(n + pad).min(out.len() - i * stride) {
                prop_assert_eq!(out[i * stride + g], 7.5, "gutter clobbered at ({i}, {g})");
            }
        }
    }

    /// f16 round-trip: half-precision accuracy for the normal range and
    /// **idempotence** — re-encoding the decoded value is bit-exact, so a
    /// checkpoint save→load→save cycle cannot drift.
    #[test]
    fn f16_roundtrip_is_accurate_and_idempotent(x in -4.0f32..4.0) {
        let bits = f32_to_f16_bits(x);
        let back = f16_bits_to_f32(bits);
        // half-ulp of f16 in [2, 4) is 2⁻¹⁰·2 ≈ 1.96e-3 relative; smaller
        // magnitudes only get finer. 6.1e-5 covers the subnormal floor.
        prop_assert!(
            (back - x).abs() <= x.abs() * 9.8e-4 + 6.1e-5,
            "f16 roundtrip {x} -> {back}"
        );
        prop_assert_eq!(f32_to_f16_bits(back), bits, "re-encode must be stable");
    }

    /// The slice encoders agree with the scalar converters elementwise.
    #[test]
    fn f16_slice_codec_matches_scalar(src in vals(37)) {
        let enc = encode_f16(&src);
        for (e, &x) in enc.iter().zip(&src) {
            prop_assert_eq!(*e, f32_to_f16_bits(x));
        }
        let dec = decode_f16(&enc);
        for (d, e) in dec.iter().zip(&enc) {
            prop_assert_eq!(d.to_bits(), f16_bits_to_f32(*e).to_bits());
        }
    }

    /// Quantizing via the `Tensor` entry point agrees with the raw-slice
    /// one (same codes, same scales) for any 2-D shape.
    #[test]
    fn qtensor_tensor_and_slice_entry_points_agree(
        rows in 1usize..6, cols in 1usize..17, data in vals(6 * 16)
    ) {
        let data = &data[..rows * cols];
        let t = Tensor::from_vec(data.to_vec(), &[rows, cols]).expect("shape");
        let qa = QTensor::quantize(&t);
        let qb = QTensor::quantize_rows(data, rows, cols);
        prop_assert_eq!(qa.data(), qb.data());
        prop_assert_eq!(qa.scales(), qb.scales());
    }
}
