//! The `Fast` kernel profile's GEMM contract, exercised at every reachable
//! dispatch level (own integration binary: `force_profile`/`force_level`
//! are process-global, so these tests serialize on one mutex and restore
//! state before releasing it).
//!
//! - `Exact` (the default) must stay bit-identical to the seed kernels at
//!   **any** forced SIMD level — the vector micro-kernel is never entered.
//! - `Fast` diverges from `Exact` only by FMA fusing (per-lane k-chains
//!   stay strictly sequential), so outputs stay within a tight relative
//!   tolerance of the reference at every level, and at the scalar level
//!   (where `mul_add` is the only change) the bound is tightest.
//! - Small/skinny products ride the strided fallback under both profiles
//!   and must remain bit-exact even under `Fast`.
//! - Row-band parallelism never changes bits within a profile.

use qn_tensor::{reference, Rng, Tensor};
use std::sync::Mutex;

static STATE_LOCK: Mutex<()> = Mutex::new(());

fn with_profile_level<R>(
    profile: qn_simd::KernelProfile,
    level: qn_simd::SimdLevel,
    f: impl FnOnce() -> R,
) -> R {
    let prev_p = qn_simd::force_profile(profile);
    let prev_l = qn_simd::force_level(level);
    let r = f();
    qn_simd::force_level(prev_l);
    qn_simd::force_profile(prev_p);
    r
}

/// ResNet-20 im2col-shaped product (`matmul_transb`) plus a plain square
/// matmul, per closure.
fn products(rng: &mut Rng) -> Vec<(Tensor, Tensor, bool)> {
    vec![
        // stage-2 im2col shape (crosses packing + parallel thresholds)
        (
            Tensor::randn(&[256, 288], rng),
            Tensor::randn(&[32, 288], rng),
            true,
        ),
        // square attention-like product
        (
            Tensor::randn(&[64, 64], rng),
            Tensor::randn(&[64, 64], rng),
            false,
        ),
    ]
}

fn run(a: &Tensor, b: &Tensor, transb: bool) -> Tensor {
    if transb {
        a.matmul_transb(b)
    } else {
        a.matmul(b)
    }
}

fn seed(a: &Tensor, b: &Tensor, transb: bool) -> Tensor {
    if transb {
        reference::matmul_transb(a, b)
    } else {
        reference::matmul(a, b)
    }
}

#[test]
fn exact_profile_is_bit_identical_at_every_level() {
    let _g = STATE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut rng = Rng::seed_from(41);
    for (a, b, transb) in products(&mut rng) {
        let expect = seed(&a, &b, transb);
        for level in qn_simd::available_levels() {
            let got =
                with_profile_level(qn_simd::KernelProfile::Exact, level, || run(&a, &b, transb));
            assert!(
                got.bit_identical(&expect),
                "Exact profile must not depend on the SIMD level ({level:?})"
            );
        }
    }
}

#[test]
fn fast_profile_stays_within_tolerance_at_every_level() {
    let _g = STATE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut rng = Rng::seed_from(42);
    for (a, b, transb) in products(&mut rng) {
        let expect = seed(&a, &b, transb);
        for level in qn_simd::available_levels() {
            let got =
                with_profile_level(qn_simd::KernelProfile::Fast, level, || run(&a, &b, transb));
            for (g, e) in got.data().iter().zip(expect.data()) {
                assert!(
                    (g - e).abs() <= 1e-4 * (1.0 + e.abs()),
                    "Fast({level:?}) drifted beyond the tolerance tier: {g} vs {e}"
                );
            }
        }
    }
}

#[test]
fn fast_profile_fallback_products_stay_bit_exact() {
    let _g = STATE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut rng = Rng::seed_from(43);
    // below the packing threshold: both profiles take the strided fallback
    let a = Tensor::randn(&[3, 9], &mut rng);
    let b = Tensor::randn(&[9, 5], &mut rng);
    let expect = reference::matmul(&a, &b);
    for level in qn_simd::available_levels() {
        let got = with_profile_level(qn_simd::KernelProfile::Fast, level, || a.matmul(&b));
        assert!(
            got.bit_identical(&expect),
            "small products must be identical across profiles ({level:?})"
        );
    }
}

#[test]
fn fast_profile_is_thread_count_invariant() {
    let _g = STATE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut rng = Rng::seed_from(44);
    let a = Tensor::randn(&[192, 160], &mut rng);
    let b = Tensor::randn(&[160, 96], &mut rng);
    let level = qn_simd::SimdLevel::active();
    let (free, capped) = with_profile_level(qn_simd::KernelProfile::Fast, level, || {
        (
            a.matmul(&b),
            qn_parallel::with_max_threads(1, || a.matmul(&b)),
        )
    });
    assert!(
        free.bit_identical(&capped),
        "row-band split must not change bits under Fast"
    );
}
