//! Regression tests: non-finite values must propagate through the matmul
//! ops of **both** execution contexts (taped [`Graph`] and tape-free
//! [`EagerExec`]), now that the zero-skip fast path is finiteness-guarded.

use qn_autograd::{EagerExec, Exec, Graph, Var};
use qn_tensor::Tensor;

fn t(data: &[f32], dims: &[usize]) -> Tensor {
    Tensor::from_vec(data.to_vec(), dims).expect("test tensor")
}

/// Runs `f` on both contexts and returns both outputs.
fn both(f: impl Fn(&mut dyn Exec) -> Var) -> (Tensor, Tensor) {
    let mut g = Graph::new();
    let tv = f(&mut g);
    let mut e = EagerExec::new();
    let ev = f(&mut e);
    (g.value(tv).clone(), e.value(ev).clone())
}

#[test]
fn matmul_propagates_nan_in_both_contexts() {
    let a = t(&[0.0, 1.0], &[1, 2]);
    let b = t(&[f32::NAN, 7.0, 2.0, 3.0], &[2, 2]);
    let (taped, eager) = both(|cx| {
        let av = cx.leaf(a.clone());
        let bv = cx.leaf(b.clone());
        cx.matmul(av, bv)
    });
    for out in [&taped, &eager] {
        assert!(out.data()[0].is_nan(), "0 × NaN must be NaN");
        assert_eq!(out.data()[1], 3.0, "finite column must stay exact");
    }
}

#[test]
fn matmul_propagates_infinity_in_both_contexts() {
    let a = t(&[0.0], &[1, 1]);
    let b = t(&[f32::INFINITY], &[1, 1]);
    let (taped, eager) = both(|cx| {
        let av = cx.leaf(a.clone());
        let bv = cx.leaf(b.clone());
        cx.matmul(av, bv)
    });
    assert!(taped.data()[0].is_nan(), "0 × ∞ must be NaN");
    assert!(eager.data()[0].is_nan(), "0 × ∞ must be NaN");
}

#[test]
fn matmul_transb_propagates_nan_in_both_contexts() {
    let a = t(&[0.0, 2.0], &[1, 2]);
    let b = t(&[f32::NAN, 1.0, 3.0, 4.0], &[2, 2]);
    let (taped, eager) = both(|cx| {
        let av = cx.leaf(a.clone());
        let bv = cx.leaf(b.clone());
        cx.matmul_transb(av, bv)
    });
    for out in [&taped, &eager] {
        assert!(out.data()[0].is_nan());
        assert_eq!(out.data()[1], 8.0);
    }
}

#[test]
fn bmm_propagates_nan_in_both_contexts() {
    // batch 0: 0 × NaN; batch 1: finite sanity value.
    let a = t(&[0.0, 2.0], &[2, 1, 1]);
    let b = t(&[f32::NAN, 3.0], &[2, 1, 1]);
    let (taped, eager) = both(|cx| {
        let av = cx.leaf(a.clone());
        let bv = cx.leaf(b.clone());
        cx.bmm(av, bv)
    });
    for out in [&taped, &eager] {
        assert!(out.data()[0].is_nan(), "bmm must not swallow 0 × NaN");
        assert_eq!(out.data()[1], 6.0);
    }
}

#[test]
fn backward_through_matmul_propagates_nan() {
    // The backward pass runs matmul_transa/matmul_transb: a NaN in the
    // upstream value must reach the gradients instead of being zero-masked.
    let mut g = Graph::new();
    let a = g.leaf(t(&[0.0, 1.0], &[1, 2]));
    let b = g.leaf(t(&[f32::NAN, 2.0], &[2, 1]));
    let y = g.matmul(a, b); // [1, 1] = 0·NaN + 1·2 -> NaN
    let s = g.sum_all(y);
    g.backward(s);
    let da = g.grad(a).expect("grad reaches a");
    assert!(
        da.data().iter().any(|v| v.is_nan()),
        "dA = g @ Bᵀ must carry the NaN"
    );
}
