//! Regression tests: non-finite values must propagate through the matmul
//! ops of **both** execution contexts (taped [`Graph`] and tape-free
//! [`EagerExec`]), now that the zero-skip fast path is finiteness-guarded.

use qn_autograd::{EagerExec, Exec, Graph, Var};
use qn_tensor::{Conv2dSpec, Tensor};

fn t(data: &[f32], dims: &[usize]) -> Tensor {
    Tensor::from_vec(data.to_vec(), dims).expect("test tensor")
}

/// Runs `f` on both contexts and returns both outputs.
fn both(f: impl Fn(&mut dyn Exec) -> Var) -> (Tensor, Tensor) {
    let mut g = Graph::new();
    let tv = f(&mut g);
    let mut e = EagerExec::new();
    let ev = f(&mut e);
    (g.value(tv).clone(), e.value(ev).clone())
}

#[test]
fn matmul_propagates_nan_in_both_contexts() {
    let a = t(&[0.0, 1.0], &[1, 2]);
    let b = t(&[f32::NAN, 7.0, 2.0, 3.0], &[2, 2]);
    let (taped, eager) = both(|cx| {
        let av = cx.leaf(a.clone());
        let bv = cx.leaf(b.clone());
        cx.matmul(av, bv)
    });
    for out in [&taped, &eager] {
        assert!(out.data()[0].is_nan(), "0 × NaN must be NaN");
        assert_eq!(out.data()[1], 3.0, "finite column must stay exact");
    }
}

#[test]
fn matmul_propagates_infinity_in_both_contexts() {
    let a = t(&[0.0], &[1, 1]);
    let b = t(&[f32::INFINITY], &[1, 1]);
    let (taped, eager) = both(|cx| {
        let av = cx.leaf(a.clone());
        let bv = cx.leaf(b.clone());
        cx.matmul(av, bv)
    });
    assert!(taped.data()[0].is_nan(), "0 × ∞ must be NaN");
    assert!(eager.data()[0].is_nan(), "0 × ∞ must be NaN");
}

#[test]
fn matmul_transb_propagates_nan_in_both_contexts() {
    let a = t(&[0.0, 2.0], &[1, 2]);
    let b = t(&[f32::NAN, 1.0, 3.0, 4.0], &[2, 2]);
    let (taped, eager) = both(|cx| {
        let av = cx.leaf(a.clone());
        let bv = cx.leaf(b.clone());
        cx.matmul_transb(av, bv)
    });
    for out in [&taped, &eager] {
        assert!(out.data()[0].is_nan());
        assert_eq!(out.data()[1], 8.0);
    }
}

#[test]
fn bmm_propagates_nan_in_both_contexts() {
    // batch 0: 0 × NaN; batch 1: finite sanity value.
    let a = t(&[0.0, 2.0], &[2, 1, 1]);
    let b = t(&[f32::NAN, 3.0], &[2, 1, 1]);
    let (taped, eager) = both(|cx| {
        let av = cx.leaf(a.clone());
        let bv = cx.leaf(b.clone());
        cx.bmm(av, bv)
    });
    for out in [&taped, &eager] {
        assert!(out.data()[0].is_nan(), "bmm must not swallow 0 × NaN");
        assert_eq!(out.data()[1], 6.0);
    }
}

#[test]
fn bmm_zero_skip_reinstated_stays_exact() {
    // PR 3 removed bmm's zero-coefficient skip outright; routing bmm
    // through the shared GEMM core brings it back finiteness-guarded. A
    // zero attention row over a *finite* value matrix must still produce
    // exact zeros, while a zero row over a non-finite one must go NaN.
    let a = t(&[0.0, 0.0, 1.0, 2.0], &[1, 2, 2]); // row 0 is all zeros
    let b_fin = t(&[3.0, 4.0, 5.0, 6.0], &[1, 2, 2]);
    let b_nan = t(&[f32::NAN, 4.0, 5.0, 6.0], &[1, 2, 2]);
    let (taped, eager) = both(|cx| {
        let av = cx.leaf(a.clone());
        let bv = cx.leaf(b_fin.clone());
        cx.bmm(av, bv)
    });
    for out in [&taped, &eager] {
        assert_eq!(&out.data()[..2], &[0.0, 0.0], "skipped zeros stay exact");
        assert_eq!(&out.data()[2..], &[13.0, 16.0]);
    }
    let (taped, eager) = both(|cx| {
        let av = cx.leaf(a.clone());
        let bv = cx.leaf(b_nan.clone());
        cx.bmm(av, bv)
    });
    for out in [&taped, &eager] {
        assert!(out.data()[0].is_nan(), "0 × NaN must survive the skip");
        assert_eq!(out.data()[1], 0.0, "NaN sits in column 0 only");
    }
}

#[test]
fn conv2d_propagates_nan_in_both_contexts() {
    // A NaN pixel with an all-zero filter: the im2col product is 0 × NaN,
    // which must contaminate the output positions whose patch covers the
    // pixel — in the taped pipeline and the fused eager kernel alike.
    let mut x = Tensor::zeros(&[1, 1, 4, 4]);
    x.set(&[0, 0, 0, 0], f32::NAN);
    let w = Tensor::zeros(&[1, 1, 3, 3]);
    let spec = Conv2dSpec::new(3, 1, 0);
    let (taped, eager) = both(|cx| {
        let xv = cx.leaf(x.clone());
        let wv = cx.leaf(w.clone());
        cx.conv2d(xv, wv, spec)
    });
    for out in [&taped, &eager] {
        assert!(out.data()[0].is_nan(), "patch covering the NaN pixel");
        assert_eq!(out.data()[3], 0.0, "patches past the pixel stay exact");
    }
}

#[test]
fn transa_in_backward_and_tensor_level() {
    // matmul_transa is not a forward Exec op; it runs inside every matmul
    // backward. Pin it at the Tensor level too, from this crate's contexts.
    let a = t(&[0.0, 1.0], &[2, 1]); // aᵀ = [0, 1]
    let b = t(&[f32::NAN, 2.0], &[2, 1]);
    assert!(a.matmul_transa(&b).data()[0].is_nan(), "0 × NaN via transa");
}

#[test]
fn backward_through_matmul_propagates_nan() {
    // The backward pass runs matmul_transa/matmul_transb: a NaN in the
    // upstream value must reach the gradients instead of being zero-masked.
    let mut g = Graph::new();
    let a = g.leaf(t(&[0.0, 1.0], &[1, 2]));
    let b = g.leaf(t(&[f32::NAN, 2.0], &[2, 1]));
    let y = g.matmul(a, b); // [1, 1] = 0·NaN + 1·2 -> NaN
    let s = g.sum_all(y);
    g.backward(s);
    let da = g.grad(a).expect("grad reaches a");
    assert!(
        da.data().iter().any(|v| v.is_nan()),
        "dA = g @ Bᵀ must carry the NaN"
    );
}
