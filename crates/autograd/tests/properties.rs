//! Property-based tests of the differentiation tape: linearity of the
//! backward pass and gradient checks of composed expressions.

use proptest::prelude::*;
use qn_autograd::{gradcheck, Graph};
use qn_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// d/dx of c·f(x) is c·(df/dx): scaling the loss scales every gradient.
    #[test]
    fn backward_is_linear_in_loss(values in prop::collection::vec(-2.0f32..2.0, 6), c in 0.5f32..3.0) {
        let x = Tensor::from_vec(values, &[2, 3]).unwrap();
        let grad_of = |scale: f32| -> Tensor {
            let mut g = Graph::new();
            let v = g.leaf(x.clone());
            let sq = g.square(v);
            let s = g.sum_all(sq);
            let s = g.scale(s, scale);
            g.backward(s);
            g.grad(v).unwrap().clone()
        };
        let g1 = grad_of(1.0);
        let gc = grad_of(c);
        prop_assert!(gc.allclose(&g1.scale(c), 1e-3));
    }

    /// Gradients of a composite expression pass a finite-difference check.
    #[test]
    fn composite_expression_gradcheck(values in prop::collection::vec(-1.5f32..1.5, 8)) {
        let x = Tensor::from_vec(values, &[2, 4]).unwrap();
        let ok = gradcheck(
            |g, v| {
                let t = g.tanh(v);
                let s = g.square(t);
                let m = g.mul(s, v);
                let r = g.reshape(m, &[4, 2]);
                let sm = g.softmax_last(r);
                g.sum_all(sm)
            },
            &x,
            1e-2,
            5e-2,
        );
        prop_assert!(ok);
    }

    /// Sum rule: grad(f + g) = grad(f) + grad(g).
    #[test]
    fn gradient_sum_rule(values in prop::collection::vec(-2.0f32..2.0, 4)) {
        let x = Tensor::from_vec(values, &[4]).unwrap();
        let grad_of = |which: u8| -> Tensor {
            let mut g = Graph::new();
            let v = g.leaf(x.clone());
            let a = g.square(v);
            let b = g.tanh(v);
            let out = match which {
                0 => a,
                1 => b,
                _ => g.add(a, b),
            };
            let s = g.sum_all(out);
            g.backward(s);
            g.grad(v).unwrap().clone()
        };
        let sum = grad_of(0).add(&grad_of(1));
        prop_assert!(grad_of(2).allclose(&sum, 1e-4));
    }

    /// Shape round-trips (reshape/permute) leave gradients numerically
    /// identical to the direct computation.
    #[test]
    fn shape_ops_are_gradient_transparent(values in prop::collection::vec(-2.0f32..2.0, 12)) {
        let x = Tensor::from_vec(values, &[3, 4]).unwrap();
        let direct = {
            let mut g = Graph::new();
            let v = g.leaf(x.clone());
            let sq = g.square(v);
            let s = g.sum_all(sq);
            g.backward(s);
            g.grad(v).unwrap().clone()
        };
        let via_shapes = {
            let mut g = Graph::new();
            let v = g.leaf(x.clone());
            let r = g.reshape(v, &[4, 3]);
            let p = g.permute(r, &[1, 0]);
            let sq = g.square(p);
            let s = g.sum_all(sq);
            g.backward(s);
            g.grad(v).unwrap().clone()
        };
        prop_assert!(direct.allclose(&via_shapes, 1e-5));
    }
}
