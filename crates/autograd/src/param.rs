use qn_tensor::{Tensor, TensorError};
use std::fmt;
use std::sync::{Arc, RwLock};

/// A trainable tensor with persistent gradient storage.
///
/// `Parameter` is a shared handle (`Arc<RwLock<…>>`): cloning it aliases the
/// same storage, which is how modules hand their weights both to the graph
/// (via [`crate::Graph::param`]) and to an optimizer. The handle is
/// `Send + Sync`, so one model can serve concurrent shards on the
/// `qn-parallel` pool (sharded `predict_batch`, data-parallel gradient
/// accumulation); accesses are short value/gradient copies, so the lock is
/// uncontended in steady state.
///
/// # Example
///
/// ```
/// use qn_autograd::Parameter;
/// use qn_tensor::Tensor;
///
/// let p = Parameter::new(Tensor::zeros(&[2, 2]));
/// assert_eq!(p.numel(), 4);
/// p.update(|value, _grad| value.map_inplace(|v| v + 1.0));
/// assert_eq!(p.value().sum(), 4.0);
/// ```
#[derive(Clone)]
pub struct Parameter {
    inner: Arc<RwLock<Inner>>,
    name: Arc<str>,
}

struct Inner {
    value: Tensor,
    grad: Tensor,
    /// Bumped on every value mutation; lets snapshot caches (the eager
    /// execution arena) detect staleness without comparing tensors.
    version: u64,
}

impl fmt::Debug for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.read();
        write!(
            f,
            "Parameter(name={:?}, shape={}, |g|={:.3e})",
            self.name,
            inner.value.shape(),
            inner.grad.frob_norm()
        )
    }
}

impl Parameter {
    /// Wraps a tensor as a trainable parameter with zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().dims());
        Parameter {
            inner: Arc::new(RwLock::new(Inner {
                value,
                grad,
                version: 0,
            })),
            name: Arc::from(""),
        }
    }

    /// Like [`Parameter::new`] but tagged with a diagnostic name.
    pub fn named(name: &str, value: Tensor) -> Self {
        let mut p = Parameter::new(value);
        p.name = Arc::from(name);
        p
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().expect("parameter lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().expect("parameter lock poisoned")
    }

    /// The diagnostic name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A snapshot copy of the current value.
    pub fn value(&self) -> Tensor {
        self.read().value.clone()
    }

    /// A snapshot copy of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.read().grad.clone()
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.read().value.numel()
    }

    /// `true` if the current value borrows a mapped checkpoint window
    /// (zero-copy loaded). Cheap — reads the storage tag under the lock
    /// without snapshotting the data, so introspection walks (registry
    /// `SlotInfo`, `/metrics` scrapes) don't copy weights.
    pub fn is_mapped(&self) -> bool {
        self.read().value.is_mapped()
    }

    /// Overwrites the value (used by initializers and spectral re-projection).
    ///
    /// # Panics
    ///
    /// Panics if the new value has a different shape.
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.write();
        assert_eq!(
            inner.value.shape(),
            value.shape(),
            "set_value shape mismatch"
        );
        inner.value = value;
        inner.version += 1;
    }

    /// Fallible [`Parameter::set_value`]: rejects a wrong-shape tensor with
    /// an error instead of panicking — the entry point checkpoint loading
    /// uses, where the shape comes from an untrusted file.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the new value's shape
    /// differs from the parameter's.
    pub fn try_set_value(&self, value: Tensor) -> Result<(), TensorError> {
        let mut inner = self.write();
        if inner.value.shape() != value.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: inner.value.shape().dims().to_vec(),
                actual: value.shape().dims().to_vec(),
            });
        }
        inner.value = value;
        inner.version += 1;
        Ok(())
    }

    /// Monotonic counter bumped on every value mutation
    /// ([`Parameter::set_value`] / [`Parameter::update`]) — snapshot caches
    /// (the eager execution arena) pair it with
    /// [`Parameter::same_storage`] identity to detect stale copies.
    pub fn version(&self) -> u64 {
        self.read().version
    }

    /// Adds `g` into the gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate_grad(&self, g: &Tensor) {
        self.write().grad.add_assign(g);
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&self) {
        let mut inner = self.write();
        inner.grad = Tensor::zeros(inner.value.shape().dims());
    }

    /// Applies an in-place update with access to value and gradient —
    /// the hook optimizers use.
    pub fn update(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let inner = &mut *self.write();
        f(&mut inner.value, &inner.grad);
        inner.version += 1;
    }

    /// `true` if two handles alias the same storage.
    pub fn same_storage(&self, other: &Parameter) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_aliases_storage() {
        let p = Parameter::new(Tensor::zeros(&[2]));
        let q = p.clone();
        assert!(p.same_storage(&q));
        q.update(|v, _| v.map_inplace(|_| 9.0));
        assert_eq!(p.value().data(), &[9.0, 9.0]);
    }

    #[test]
    fn grad_accumulates_and_zeroes() {
        let p = Parameter::new(Tensor::zeros(&[2]));
        let g = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        assert_eq!(p.grad().data(), &[2.0, 4.0]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn named_parameter_keeps_name() {
        let p = Parameter::named("conv1.weight", Tensor::zeros(&[1]));
        assert_eq!(p.name(), "conv1.weight");
        assert!(format!("{p:?}").contains("conv1.weight"));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_value_shape_mismatch_panics() {
        let p = Parameter::new(Tensor::zeros(&[2]));
        p.set_value(Tensor::zeros(&[3]));
    }
}
