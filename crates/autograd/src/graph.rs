use crate::Parameter;
use qn_tensor::{Rng, Tensor};

/// Handle to a node on a [`Graph`] tape.
///
/// `Var` is a cheap copyable index; all operations live on [`Graph`]
/// (`g.add(a, b)`, `g.matmul(a, b)`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var {
    pub(crate) id: usize,
}

pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

pub(crate) struct Node {
    pub value: Tensor,
    pub grad: Option<Tensor>,
    pub parents: Vec<usize>,
    pub backward: Option<BackwardFn>,
}

/// A single forward pass recorded as a differentiation tape.
///
/// Create one `Graph` per training step, feed inputs with [`Graph::leaf`]
/// and parameters with [`Graph::param`], build the computation through the
/// op methods, then call [`Graph::backward`] on a scalar output.
///
/// The graph carries a `training` flag (consulted by dropout and batch
/// norm) and its own [`Rng`] so stochastic layers are reproducible.
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    bindings: Vec<(usize, Parameter)>,
    training: bool,
    pub(crate) rng: Rng,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

impl Graph {
    /// Creates an inference-mode graph (training features disabled).
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            bindings: Vec::new(),
            training: false,
            rng: Rng::seed_from(0),
        }
    }

    /// Creates a training-mode graph with a seeded RNG for stochastic ops.
    pub fn training(seed: u64) -> Self {
        Graph {
            nodes: Vec::new(),
            bindings: Vec::new(),
            training: true,
            rng: Rng::seed_from(seed),
        }
    }

    /// Whether stochastic/normalization layers should use training behaviour.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a leaf holding `value` (an input or constant).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, vec![], None)
    }

    /// Records a leaf bound to a persistent [`Parameter`]; after
    /// [`Graph::backward`] the leaf's gradient is accumulated into the
    /// parameter's `.grad()` storage.
    pub fn param(&mut self, p: &Parameter) -> Var {
        let v = self.leaf(p.value());
        self.bindings.push((v.id, p.clone()));
        v
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.id].value
    }

    /// Gradient of a node, if backward has reached it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.id].grad.as_ref()
    }

    pub(crate) fn push(
        &mut self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
    ) -> Var {
        let id = self.nodes.len();
        self.nodes.push(Node {
            value,
            grad: None,
            parents,
            backward,
        });
        Var { id }
    }

    /// Runs reverse-mode differentiation from a scalar output, then flushes
    /// gradients into every bound [`Parameter`].
    ///
    /// # Panics
    ///
    /// Panics if `out` is not a single-element tensor.
    pub fn backward(&mut self, out: Var) {
        self.backward_sweep(out);
        for (id, p) in &self.bindings {
            if let Some(g) = &self.nodes[*id].grad {
                p.accumulate_grad(g);
            }
        }
    }

    /// Runs reverse-mode differentiation like [`Graph::backward`], but
    /// instead of flushing into the bound [`Parameter`]s, returns each
    /// binding's gradient as `(parameter, gradient)` pairs in binding
    /// order (a weight shared across several leaves yields one pair per
    /// leaf).
    ///
    /// This is the data-parallel training primitive: worker shards collect
    /// their gradients independently, and the caller accumulates them in a
    /// fixed shard order so the summation stays deterministic — flushing
    /// concurrently from several threads would make the floating-point
    /// accumulation order (and thus the result bits) depend on scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not a single-element tensor.
    pub fn backward_collect(&mut self, out: Var) -> Vec<(Parameter, Tensor)> {
        self.backward_sweep(out);
        self.bindings
            .iter()
            .filter_map(|(id, p)| self.nodes[*id].grad.clone().map(|g| (p.clone(), g)))
            .collect()
    }

    fn backward_sweep(&mut self, out: Var) {
        assert_eq!(
            self.nodes[out.id].value.numel(),
            1,
            "backward requires a scalar output, got shape {}",
            self.nodes[out.id].value.shape()
        );
        let seed = Tensor::ones(self.nodes[out.id].value.shape().dims());
        self.nodes[out.id].grad = Some(seed);
        for i in (0..=out.id).rev() {
            let grad = match &self.nodes[i].grad {
                Some(g) => g.clone(),
                None => continue,
            };
            let Some(bw) = self.nodes[i].backward.take() else {
                continue;
            };
            let parents = self.nodes[i].parents.clone();
            let pgrads = bw(&grad);
            assert_eq!(
                parents.len(),
                pgrads.len(),
                "backward fn returned {} grads for {} parents",
                pgrads.len(),
                parents.len()
            );
            for (&p, pg) in parents.iter().zip(pgrads) {
                match &mut self.nodes[p].grad {
                    Some(g) => g.add_assign(&pg),
                    slot @ None => *slot = Some(pg),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_value_roundtrip() {
        let mut g = Graph::new();
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let v = g.leaf(t.clone());
        assert!(g.value(v).allclose(&t, 0.0));
        assert!(g.grad(v).is_none());
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn backward_through_diamond_accumulates() {
        // y = x + x: dy/dx must be 2 (two paths)
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![5.0], &[1]).unwrap());
        let y = g.add(x, x);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().data(), &[2.0]);
    }

    #[test]
    fn param_binding_flushes_grad() {
        let p = Parameter::new(Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let mut g = Graph::new();
        let v = g.param(&p);
        let y = g.mul(v, v);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(p.grad().data(), &[4.0]); // d(x²)/dx = 2x = 4
    }

    #[test]
    fn param_used_twice_accumulates_once_per_use() {
        let p = Parameter::new(Tensor::from_vec(vec![3.0], &[1]).unwrap());
        let mut g = Graph::new();
        let a = g.param(&p);
        let b = g.param(&p); // weight sharing
        let y = g.mul(a, b); // x * x
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(p.grad().data(), &[6.0]);
    }

    #[test]
    #[should_panic(expected = "scalar output")]
    fn backward_non_scalar_panics() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2]));
        g.backward(x);
    }

    #[test]
    fn training_flag() {
        assert!(!Graph::new().is_training());
        assert!(Graph::training(0).is_training());
    }
}
