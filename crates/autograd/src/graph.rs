use crate::Parameter;
use qn_tensor::{BufferPool, Rng, Tensor};
use std::sync::Arc;

/// Handle to a node on a [`Graph`] tape.
///
/// `Var` is a cheap copyable index; all operations live on [`Graph`]
/// (`g.add(a, b)`, `g.matmul(a, b)`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var {
    pub(crate) id: usize,
}

/// Backward functions run **once**, consuming the node's upstream gradient
/// by value — so derivatives that only rescale or mask the gradient (the
/// activation family) rewrite it in place via `zip_inplace` instead of
/// allocating a fresh mask tensor.
pub(crate) type BackwardFn = Box<dyn FnOnce(Tensor) -> Vec<Tensor>>;

pub(crate) struct Node {
    /// Forward value. `None` once reclaimed into the attached buffer pool
    /// (only ever happens for ops pushed as *ephemeral*, during a pooled
    /// backward sweep).
    pub value: Option<Tensor>,
    pub grad: Option<Tensor>,
    pub parents: Vec<usize>,
    pub backward: Option<BackwardFn>,
    /// Whether the stored `value` must survive the backward sweep. `true`
    /// (the conservative default of [`Graph::push`]) for leaves, parameter
    /// bindings and any op that does not explicitly opt out;
    /// [`Graph::push_ephemeral`] marks ops whose backward closure captures
    /// everything it needs, letting a pooled sweep recycle the activation.
    pub keep_value: bool,
}

/// A single forward pass recorded as a differentiation tape.
///
/// Create one `Graph` per training step, feed inputs with [`Graph::leaf`]
/// and parameters with [`Graph::param`], build the computation through the
/// op methods, then call [`Graph::backward`] on a scalar output.
///
/// The graph carries a `training` flag (consulted by dropout and batch
/// norm) and its own [`Rng`] so stochastic layers are reproducible.
///
/// # Buffer recycling
///
/// With a [`BufferPool`] attached ([`Graph::set_pool`] /
/// [`Graph::training_pooled`]), the backward sweep returns to the pool:
/// each intermediate activation whose op declared its value *not* needed by
/// the backward pass (per-op saved-for-backward declarations — every
/// built-in op's closure captures its own operands, so all of them opt in;
/// the conservative default for new ops is to keep), and each distributed
/// gradient buffer once accumulated. Step `N+1`'s pooled consumers (the
/// GEMM packing scratch, `EagerExec` arenas, `Tensor::from_pooled` call
/// sites) then reuse step `N`'s buffers instead of hitting the allocator.
/// After a pooled backward, [`Graph::value`] of a reclaimed intermediate
/// panics — read intermediate values before calling `backward`, or leave
/// the pool unattached (the default, which reclaims nothing).
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    bindings: Vec<(usize, Parameter)>,
    training: bool,
    pool: Option<Arc<BufferPool>>,
    pub(crate) rng: Rng,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

impl Graph {
    /// Creates an inference-mode graph (training features disabled).
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            bindings: Vec::new(),
            training: false,
            pool: None,
            rng: Rng::seed_from(0),
        }
    }

    /// Creates a training-mode graph with a seeded RNG for stochastic ops.
    pub fn training(seed: u64) -> Self {
        Graph {
            nodes: Vec::new(),
            bindings: Vec::new(),
            training: true,
            pool: None,
            rng: Rng::seed_from(seed),
        }
    }

    /// Creates a training-mode graph whose backward sweep recycles
    /// intermediate buffers into `pool` (see the type-level docs).
    pub fn training_pooled(seed: u64, pool: Arc<BufferPool>) -> Self {
        let mut g = Graph::training(seed);
        g.pool = Some(pool);
        g
    }

    /// Attaches a buffer pool: the backward sweep will reclaim ephemeral
    /// activation values and spent gradient buffers into it (see the
    /// type-level docs). Without a pool (the default), nothing is
    /// reclaimed and every value stays readable after `backward`.
    pub fn set_pool(&mut self, pool: Arc<BufferPool>) {
        self.pool = Some(pool);
    }

    /// Consumes the graph, returning **every** remaining tensor buffer —
    /// node values, gradients — to `pool`. Call at the end of a training
    /// step so the next step's pooled allocations reuse this step's
    /// storage.
    pub fn recycle_into(self, pool: &BufferPool) {
        for node in self.nodes {
            if let Some(v) = node.value {
                v.into_pool(pool);
            }
            if let Some(g) = node.grad {
                g.into_pool(pool);
            }
        }
    }

    /// Whether stochastic/normalization layers should use training behaviour.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a leaf holding `value` (an input or constant).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, vec![], None)
    }

    /// Records a leaf bound to a persistent [`Parameter`]; after
    /// [`Graph::backward`] the leaf's gradient is accumulated into the
    /// parameter's `.grad()` storage.
    pub fn param(&mut self, p: &Parameter) -> Var {
        let v = self.leaf(p.value());
        self.bindings.push((v.id, p.clone()));
        v
    }

    /// Value of a node.
    ///
    /// # Panics
    ///
    /// Panics if the value was reclaimed into an attached buffer pool by a
    /// pooled backward sweep (see the type-level docs).
    pub fn value(&self, v: Var) -> &Tensor {
        self.nodes[v.id]
            .value
            .as_ref()
            .expect("node value was reclaimed into the buffer pool during backward")
    }

    /// Gradient of a node, if backward has reached it. After the sweep,
    /// gradients remain available for **leaves** (inputs and parameter
    /// bindings); an intermediate op's gradient is consumed by its own
    /// backward function.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.id].grad.as_ref()
    }

    /// Records a node whose `value` is kept through a pooled backward sweep
    /// — the conservative default for ops that do not declare otherwise.
    pub(crate) fn push(
        &mut self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
    ) -> Var {
        self.push_node(value, parents, backward, true)
    }

    /// Records a node declaring that its stored `value` is **not** read by
    /// its backward function (the closure captures everything it needs), so
    /// a pooled sweep may recycle the activation buffer.
    pub(crate) fn push_ephemeral(
        &mut self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
    ) -> Var {
        self.push_node(value, parents, backward, false)
    }

    fn push_node(
        &mut self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
        keep_value: bool,
    ) -> Var {
        let id = self.nodes.len();
        self.nodes.push(Node {
            value: Some(value),
            grad: None,
            parents,
            backward,
            keep_value,
        });
        Var { id }
    }

    /// Runs reverse-mode differentiation from a scalar output, then flushes
    /// gradients into every bound [`Parameter`].
    ///
    /// # Panics
    ///
    /// Panics if `out` is not a single-element tensor.
    pub fn backward(&mut self, out: Var) {
        self.backward_sweep(out);
        for (id, p) in &self.bindings {
            if let Some(g) = &self.nodes[*id].grad {
                p.accumulate_grad(g);
            }
        }
    }

    /// Runs reverse-mode differentiation like [`Graph::backward`], but
    /// instead of flushing into the bound [`Parameter`]s, returns each
    /// binding's gradient as `(parameter, gradient)` pairs in binding
    /// order (a weight shared across several leaves yields one pair per
    /// leaf).
    ///
    /// This is the data-parallel training primitive: worker shards collect
    /// their gradients independently, and the caller accumulates them in a
    /// fixed shard order so the summation stays deterministic — flushing
    /// concurrently from several threads would make the floating-point
    /// accumulation order (and thus the result bits) depend on scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not a single-element tensor.
    pub fn backward_collect(&mut self, out: Var) -> Vec<(Parameter, Tensor)> {
        self.backward_sweep(out);
        self.bindings
            .iter()
            .filter_map(|(id, p)| self.nodes[*id].grad.clone().map(|g| (p.clone(), g)))
            .collect()
    }

    fn backward_sweep(&mut self, out: Var) {
        let out_value = self.value(out);
        assert_eq!(
            out_value.numel(),
            1,
            "backward requires a scalar output, got shape {}",
            out_value.shape()
        );
        let seed = Tensor::ones(out_value.shape().dims());
        self.nodes[out.id].grad = Some(seed);
        let pool = self.pool.clone();
        for i in (0..=out.id).rev() {
            if self.nodes[i].grad.is_none() {
                continue; // gradient never reached this node
            }
            let Some(bw) = self.nodes[i].backward.take() else {
                continue; // leaf: keep the grad for the user / bindings
            };
            // The backward fn consumes the upstream gradient by value: no
            // defensive clone, and in-place derivatives can reuse it.
            let grad = self.nodes[i].grad.take().expect("checked above");
            let parents = std::mem::take(&mut self.nodes[i].parents);
            let pgrads = bw(grad);
            assert_eq!(
                parents.len(),
                pgrads.len(),
                "backward fn returned {} grads for {} parents",
                pgrads.len(),
                parents.len()
            );
            for (&p, pg) in parents.iter().zip(pgrads) {
                match &mut self.nodes[p].grad {
                    Some(g) => {
                        g.add_assign(&pg);
                        // accumulated: the distributed buffer is spent
                        if let Some(pool) = &pool {
                            pg.into_pool(pool);
                        }
                    }
                    slot @ None => *slot = Some(pg),
                }
            }
            // Saved-for-backward declarations: ops pushed as ephemeral told
            // us their value is dead once their backward fn ran, so a
            // pooled sweep reclaims the activation (the sweep root's value
            // is the loss the caller reads — always kept).
            if let Some(pool) = &pool {
                if i != out.id && !self.nodes[i].keep_value {
                    if let Some(v) = self.nodes[i].value.take() {
                        v.into_pool(pool);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_value_roundtrip() {
        let mut g = Graph::new();
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let v = g.leaf(t.clone());
        assert!(g.value(v).allclose(&t, 0.0));
        assert!(g.grad(v).is_none());
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn backward_through_diamond_accumulates() {
        // y = x + x: dy/dx must be 2 (two paths)
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![5.0], &[1]).unwrap());
        let y = g.add(x, x);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(g.grad(x).unwrap().data(), &[2.0]);
    }

    #[test]
    fn param_binding_flushes_grad() {
        let p = Parameter::new(Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let mut g = Graph::new();
        let v = g.param(&p);
        let y = g.mul(v, v);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(p.grad().data(), &[4.0]); // d(x²)/dx = 2x = 4
    }

    #[test]
    fn param_used_twice_accumulates_once_per_use() {
        let p = Parameter::new(Tensor::from_vec(vec![3.0], &[1]).unwrap());
        let mut g = Graph::new();
        let a = g.param(&p);
        let b = g.param(&p); // weight sharing
        let y = g.mul(a, b); // x * x
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(p.grad().data(), &[6.0]);
    }

    #[test]
    #[should_panic(expected = "scalar output")]
    fn backward_non_scalar_panics() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2]));
        g.backward(x);
    }

    #[test]
    fn training_flag() {
        assert!(!Graph::new().is_training());
        assert!(Graph::training(0).is_training());
    }
}
