//! # qn-autograd
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`qn_tensor::Tensor`].
//!
//! A [`Graph`] records one forward pass as a flat tape of nodes; calling
//! [`Graph::backward`] on a scalar output propagates gradients to every
//! contributing node, including [`Parameter`] leaves whose gradients are
//! flushed back into persistent storage so an optimizer can consume them.
//!
//! Execution is **dual-mode**: the [`Exec`] trait abstracts over the op
//! set, implemented by both [`Graph`] (taped, differentiable) and
//! [`EagerExec`] (tape-free, allocation-light — the inference path).
//! Forward code written against `&mut dyn Exec` runs identically on
//! either context.
//!
//! The op set is exactly what the quadratic-neuron paper's models need:
//! dense and im2col convolution primitives, broadcast arithmetic, batched
//! matmul and softmax for attention, fused batch/layer norm, the elementwise
//! powers used by quadratic and kervolutional neurons, and a fused
//! softmax-cross-entropy loss.
//!
//! # Example
//!
//! ```
//! use qn_autograd::Graph;
//! use qn_tensor::Tensor;
//!
//! # fn main() -> Result<(), qn_tensor::TensorError> {
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![3.0], &[1])?);
//! let y = g.mul(x, x);            // y = x²
//! let loss = g.sum_all(y);
//! g.backward(loss);
//! assert_eq!(g.grad(x).unwrap().data(), &[6.0]); // dy/dx = 2x
//! # Ok(())
//! # }
//! ```

pub(crate) use qn_parallel::PAR_MIN_ELEMS;

mod convops;
mod exec;
mod gradcheck;
mod graph;
mod matops;
mod nnops;
mod ops;
mod param;

pub use exec::{ChainStage, EagerExec, Exec};
pub use gradcheck::{gradcheck, gradcheck_multi};
pub use graph::{Graph, Var};
pub use param::Parameter;
