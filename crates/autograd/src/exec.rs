//! Dual-mode execution: the [`Exec`] context abstraction and the tape-free
//! [`EagerExec`] arena.
//!
//! Every layer's forward pass is written once against [`Exec`]. Running it
//! on a [`Graph`] records the differentiation tape (training); running it on
//! an [`EagerExec`] evaluates the same arithmetic eagerly with **no** tape
//! nodes, no backward closures and none of the operand clones the tape
//! retains for the backward pass (inference/serving).
//!
//! [`Var`] handles are indices into whichever context produced them; a `Var`
//! from one context is meaningless in another.
//!
//! # Example
//!
//! ```
//! use qn_autograd::{EagerExec, Exec, Graph};
//! use qn_tensor::Tensor;
//!
//! # fn main() -> Result<(), qn_tensor::TensorError> {
//! let x = Tensor::from_vec(vec![1.0, -2.0], &[2])?;
//! // taped
//! let mut g = Graph::new();
//! let v = g.leaf(x.clone());
//! let y = g.relu(v);
//! // tape-free
//! let mut e = EagerExec::new();
//! let v2 = e.leaf(x);
//! let y2 = e.relu(v2);
//! assert!(g.value(y).allclose(e.value(y2), 0.0));
//! # Ok(())
//! # }
//! ```

use crate::graph::{Graph, Var};
use crate::nnops::{layer_norm_infer_into, softmax_rows_inplace};
use crate::ops::bcast_lead;
use crate::Parameter;
use crate::PAR_MIN_ELEMS;
use qn_tensor::{
    avg_pool2d_into, elemwise, gemm, gemm_batched, im2col_into, max_pool2d_into, BufferPool,
    Conv2dSpec, MatMut, MatRef, PoolSpec, Tensor, TensorError,
};
use std::sync::Arc;

/// One stage of a fused elementwise pipeline over a `[B, C, H, W]`
/// activation — see [`Exec::elemwise_chain`].
///
/// Each stage is exactly one of the workspace's elementwise primitives,
/// with the **same per-element scalar expression**, so a fused chain is
/// bit-identical to running the stages as separate ops.
#[derive(Clone, Copy)]
pub enum ChainStage<'a> {
    /// `v += bias[c]` — a per-channel bias ([`Exec::add_channel`]). The
    /// `Var` must be a `[C]` tensor.
    AddChannel(Var),
    /// `v *= scale[c]` — a per-channel scale ([`Exec::mul_channel`]).
    MulChannel(Var),
    /// Inference batch normalization
    /// `v = (v - mean[c]) · 1/√(var[c] + eps) · gamma[c] + beta[c]`
    /// ([`Exec::batch_norm2d`] with running statistics). Inference-only:
    /// the default decomposition panics if the context is in training mode
    /// (training must go through the layer so running stats update).
    NormChannel {
        /// Per-channel scale parameter (`[C]`).
        gamma: Var,
        /// Per-channel shift parameter (`[C]`).
        beta: Var,
        /// Running mean (`[C]`).
        mean: &'a Tensor,
        /// Running variance (`[C]`).
        var: &'a Tensor,
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// `v = max(v, 0)` ([`Exec::relu`]).
    Relu,
    /// `v += residual[i]` — an elementwise residual add ([`Exec::add`]).
    /// The `Var` must have the same shape as the chain input.
    AddResidual(Var),
}

/// Execution context for a forward pass: either the differentiation tape
/// ([`Graph`]) or the allocation-light eager arena ([`EagerExec`]).
///
/// The op set mirrors [`Graph`]'s inherent forward ops one-to-one; both
/// implementations produce bitwise-identical values (the equivalence
/// property suites in `qn-nn` and `qn-core` assert this for every layer and
/// neuron family). Ops panic on shape mismatch exactly like their taped
/// counterparts — see each [`Graph`] method for the per-op contract.
///
/// Loss functions (`softmax_cross_entropy*`) and [`Graph::backward`] remain
/// tape-only: they exist to produce gradients.
pub trait Exec {
    /// Registers an input/constant tensor, returning its handle.
    fn leaf(&mut self, t: Tensor) -> Var;

    /// Registers a parameter's current value. On a [`Graph`] the leaf is
    /// bound so `backward` flushes its gradient; eagerly it is just a value.
    fn param(&mut self, p: &Parameter) -> Var;

    /// Value of a node.
    fn value(&self, v: Var) -> &Tensor;

    /// Whether stochastic/normalization layers should use training
    /// behaviour. Always `false` for [`EagerExec`].
    fn is_training(&self) -> bool;

    /// Elementwise sum of two same-shape nodes.
    fn add(&mut self, a: Var, b: Var) -> Var;
    /// Elementwise difference `a - b`.
    fn sub(&mut self, a: Var, b: Var) -> Var;
    /// Elementwise (Hadamard) product.
    fn mul(&mut self, a: Var, b: Var) -> Var;
    /// Multiplies every element by a constant.
    fn scale(&mut self, a: Var, s: f32) -> Var;
    /// Adds a constant to every element.
    fn add_scalar(&mut self, a: Var, s: f32) -> Var;
    /// Elementwise negation.
    fn neg(&mut self, a: Var) -> Var {
        self.scale(a, -1.0)
    }
    /// Elementwise square.
    fn square(&mut self, a: Var) -> Var;
    /// Elementwise integer power `xᵖ` (`p >= 1`).
    fn powi(&mut self, a: Var, p: i32) -> Var;
    /// Rectified linear unit.
    fn relu(&mut self, a: Var) -> Var;
    /// Hyperbolic tangent.
    fn tanh(&mut self, a: Var) -> Var;
    /// Logistic sigmoid.
    fn sigmoid(&mut self, a: Var) -> Var;

    /// Adds `b` (a trailing-suffix shape of `a`) broadcast over leading dims.
    fn add_bcast(&mut self, a: Var, b: Var) -> Var;
    /// Multiplies by `b` broadcast over leading dims (suffix rule).
    fn mul_bcast(&mut self, a: Var, b: Var) -> Var;
    /// Adds a per-channel bias `[C]` to a `[B, C, H, W]` activation.
    fn add_channel(&mut self, a: Var, bias: Var) -> Var;
    /// Multiplies a `[B, C, H, W]` activation by a per-channel scale `[C]`.
    fn mul_channel(&mut self, a: Var, scale: Var) -> Var;

    /// Reshapes to `dims` (element count must match).
    fn reshape(&mut self, a: Var, dims: &[usize]) -> Var;
    /// Permutes axes.
    fn permute(&mut self, a: Var, axes: &[usize]) -> Var;
    /// Concatenates nodes along `axis`.
    fn concat(&mut self, parts: &[Var], axis: usize) -> Var;
    /// Copies the half-open `[start, end)` range of `axis`.
    fn slice_axis(&mut self, a: Var, axis: usize, start: usize, end: usize) -> Var;

    /// Sum of all elements, as a `[1]` tensor.
    fn sum_all(&mut self, a: Var) -> Var;
    /// Mean of all elements, as a `[1]` tensor.
    fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).numel() as f32;
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n)
    }
    /// Sums over `axis`, removing it.
    fn sum_axis(&mut self, a: Var, axis: usize) -> Var;
    /// Mean over `axis`, removing it.
    fn mean_axis(&mut self, a: Var, axis: usize) -> Var {
        let n = self.value(a).shape().dim(axis) as f32;
        let s = self.sum_axis(a, axis);
        self.scale(s, 1.0 / n)
    }

    /// Matrix product `a @ b` of `[M, K] × [K, N]`.
    fn matmul(&mut self, a: Var, b: Var) -> Var;
    /// Matrix product `a @ bᵀ` of `[M, K] × [N, K]ᵀ`.
    fn matmul_transb(&mut self, a: Var, b: Var) -> Var;
    /// Batched matrix product of `[N, M, K] × [N, K, P]`.
    fn bmm(&mut self, a: Var, b: Var) -> Var;

    /// Lowers `[B, C, H, W]` to patch rows `[B·OH·OW, C·K·K]`.
    fn im2col(&mut self, x: Var, spec: Conv2dSpec) -> Var;
    /// 2-D convolution of `[B, C, H, W]` with filters `[OC, C, K, K]`.
    fn conv2d(&mut self, x: Var, weight: Var, spec: Conv2dSpec) -> Var;
    /// Max pooling with a square window.
    fn max_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var;
    /// Average pooling with a square window.
    fn avg_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var;
    /// Global average pooling: `[B, C, H, W] -> [B, C]`.
    fn global_avg_pool(&mut self, x: Var) -> Var;

    /// Numerically-stable softmax over the last axis.
    fn softmax_last(&mut self, x: Var) -> Var;
    /// Layer normalization over the last axis with affine `gamma`/`beta`.
    fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var;
    /// Batch normalization over `[B, C, H, W]`. In training mode (tape only)
    /// returns the batch statistics for the caller's running-stat update; in
    /// inference mode normalizes with the provided running statistics and
    /// returns `None`.
    fn batch_norm2d(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> (Var, Option<(Tensor, Tensor)>);
    /// Embedding lookup: gathers rows of `weight` (`[V, D]`) by token id.
    fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var;
    /// Inverted dropout; identity in inference mode.
    fn dropout(&mut self, x: Var, p: f32) -> Var;

    // ----- fused composites -----------------------------------------------
    //
    // Composite ops with a default decomposition into the primitives above.
    // The tape uses the defaults (so gradients flow through the recorded
    // primitives); `EagerExec` overrides them with single-pass kernels that
    // skip the intermediate allocations. Both produce bitwise-identical
    // values.

    /// The quadratic energy `y₂[r, j] = Σᵢ λ[j, i] · f[r, j·k + i]²` of the
    /// paper's efficient neuron: `f` is `[rows, m·k]` (per-neuron feature
    /// groups of width `k`), `lambda` is `[m, k]`; returns `[rows, m]`.
    fn weighted_square_sum(&mut self, f: Var, lambda: Var, neurons: usize, k: usize) -> Var {
        let rows = self.value(f).shape().dim(0);
        let f3 = self.reshape(f, &[rows, neurons, k]);
        let fsq = self.square(f3);
        let weighted = self.mul_bcast(fsq, lambda);
        self.sum_axis(weighted, 2)
    }

    /// Interleaves scalar outputs `y` (`[rows, m]`) with their feature
    /// groups `f` (`[rows, m·k]`) neuron-major into `[rows, m·(k+1)]`:
    /// `[y₀, f₀…, y₁, f₁…, …]` — the paper's vectorized output layout.
    fn interleave_last(&mut self, y: Var, f: Var, k: usize) -> Var {
        let (rows, m) = self.value(y).dims2();
        let f3 = self.reshape(f, &[rows, m, k]);
        let y3 = self.reshape(y, &[rows, m, 1]);
        let out3 = self.concat(&[y3, f3], 2);
        self.reshape(out3, &[rows, m * (k + 1)])
    }

    /// Reinterprets patch-major rows `[B·OH·OW, C]` (the output of a dense
    /// layer applied to im2col patches) as a `[B, C, OH, OW]` feature map.
    fn rows_to_nchw(&mut self, v: Var, b: usize, oh: usize, ow: usize, c: usize) -> Var {
        let r = self.reshape(v, &[b, oh, ow, c]);
        self.permute(r, &[0, 3, 1, 2])
    }

    /// Fused elementwise pipeline over a `[B, C, H, W]` activation: applies
    /// the [`ChainStage`]s left to right. The default decomposes into the
    /// primitive ops (so the tape records every stage and gradients flow);
    /// `EagerExec` overrides it with a **single pass** over the activation —
    /// bias + norm + activation + residual in one sweep instead of one full
    /// memory pass per stage. Both produce bitwise-identical values because
    /// each element sees the same scalar expressions in the same order.
    ///
    /// # Panics
    ///
    /// Panics on stage shape mismatches (each stage's primitive contract
    /// applies), and if a [`ChainStage::NormChannel`] stage runs in a
    /// training-mode context (running statistics would silently not
    /// update — use the normalization layer's training path instead).
    fn elemwise_chain(&mut self, x: Var, stages: &[ChainStage<'_>]) -> Var {
        let mut v = x;
        for stage in stages {
            v = match *stage {
                ChainStage::AddChannel(bias) => self.add_channel(v, bias),
                ChainStage::MulChannel(scale) => self.mul_channel(v, scale),
                ChainStage::NormChannel {
                    gamma,
                    beta,
                    mean,
                    var,
                    eps,
                } => {
                    let (y, stats) = self.batch_norm2d(v, gamma, beta, mean, var, eps);
                    assert!(
                        stats.is_none(),
                        "elemwise_chain norm stages are inference-only"
                    );
                    y
                }
                ChainStage::Relu => self.relu(v),
                ChainStage::AddResidual(r) => self.add(v, r),
            };
        }
        v
    }
}

impl Exec for Graph {
    fn leaf(&mut self, t: Tensor) -> Var {
        Graph::leaf(self, t)
    }
    fn param(&mut self, p: &Parameter) -> Var {
        Graph::param(self, p)
    }
    fn value(&self, v: Var) -> &Tensor {
        Graph::value(self, v)
    }
    fn is_training(&self) -> bool {
        Graph::is_training(self)
    }
    fn add(&mut self, a: Var, b: Var) -> Var {
        Graph::add(self, a, b)
    }
    fn sub(&mut self, a: Var, b: Var) -> Var {
        Graph::sub(self, a, b)
    }
    fn mul(&mut self, a: Var, b: Var) -> Var {
        Graph::mul(self, a, b)
    }
    fn scale(&mut self, a: Var, s: f32) -> Var {
        Graph::scale(self, a, s)
    }
    fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        Graph::add_scalar(self, a, s)
    }
    fn neg(&mut self, a: Var) -> Var {
        Graph::neg(self, a)
    }
    fn square(&mut self, a: Var) -> Var {
        Graph::square(self, a)
    }
    fn powi(&mut self, a: Var, p: i32) -> Var {
        Graph::powi(self, a, p)
    }
    fn relu(&mut self, a: Var) -> Var {
        Graph::relu(self, a)
    }
    fn tanh(&mut self, a: Var) -> Var {
        Graph::tanh(self, a)
    }
    fn sigmoid(&mut self, a: Var) -> Var {
        Graph::sigmoid(self, a)
    }
    fn add_bcast(&mut self, a: Var, b: Var) -> Var {
        Graph::add_bcast(self, a, b)
    }
    fn mul_bcast(&mut self, a: Var, b: Var) -> Var {
        Graph::mul_bcast(self, a, b)
    }
    fn add_channel(&mut self, a: Var, bias: Var) -> Var {
        Graph::add_channel(self, a, bias)
    }
    fn mul_channel(&mut self, a: Var, scale: Var) -> Var {
        Graph::mul_channel(self, a, scale)
    }
    fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        Graph::reshape(self, a, dims)
    }
    fn permute(&mut self, a: Var, axes: &[usize]) -> Var {
        Graph::permute(self, a, axes)
    }
    fn concat(&mut self, parts: &[Var], axis: usize) -> Var {
        Graph::concat(self, parts, axis)
    }
    fn slice_axis(&mut self, a: Var, axis: usize, start: usize, end: usize) -> Var {
        Graph::slice_axis(self, a, axis, start, end)
    }
    fn sum_all(&mut self, a: Var) -> Var {
        Graph::sum_all(self, a)
    }
    fn mean_all(&mut self, a: Var) -> Var {
        Graph::mean_all(self, a)
    }
    fn sum_axis(&mut self, a: Var, axis: usize) -> Var {
        Graph::sum_axis(self, a, axis)
    }
    fn mean_axis(&mut self, a: Var, axis: usize) -> Var {
        Graph::mean_axis(self, a, axis)
    }
    fn matmul(&mut self, a: Var, b: Var) -> Var {
        Graph::matmul(self, a, b)
    }
    fn matmul_transb(&mut self, a: Var, b: Var) -> Var {
        Graph::matmul_transb(self, a, b)
    }
    fn bmm(&mut self, a: Var, b: Var) -> Var {
        Graph::bmm(self, a, b)
    }
    fn im2col(&mut self, x: Var, spec: Conv2dSpec) -> Var {
        Graph::im2col(self, x, spec)
    }
    fn conv2d(&mut self, x: Var, weight: Var, spec: Conv2dSpec) -> Var {
        Graph::conv2d(self, x, weight, spec)
    }
    fn max_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var {
        Graph::max_pool2d(self, x, spec)
    }
    fn avg_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var {
        Graph::avg_pool2d(self, x, spec)
    }
    fn global_avg_pool(&mut self, x: Var) -> Var {
        Graph::global_avg_pool(self, x)
    }
    fn softmax_last(&mut self, x: Var) -> Var {
        Graph::softmax_last(self, x)
    }
    fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        Graph::layer_norm(self, x, gamma, beta, eps)
    }
    fn batch_norm2d(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> (Var, Option<(Tensor, Tensor)>) {
        Graph::batch_norm2d(self, x, gamma, beta, running_mean, running_var, eps)
    }
    fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var {
        Graph::embedding(self, weight, ids)
    }
    fn dropout(&mut self, x: Var, p: f32) -> Var {
        Graph::dropout(self, x, p)
    }
}

/// Tape-free eager execution arena for inference.
///
/// Holds only the computed activation tensors — no gradients, parents or
/// backward closures — and recycles **everything** across requests:
///
/// - **Slot recycling (high-water-mark arena):** [`EagerExec::reset`] does
///   not drop the computed tensors; it rewinds a cursor. The next pass
///   refits each slot's buffer in place, so a steady-state serving loop
///   that repeats the same op sequence (the common case: one model, one
///   request shape) performs **zero heap allocations** — the `alloc` bench
///   in `qn-bench` proves this with a counting allocator.
/// - **Pooled scratch:** kernel workspace that is not an activation (the
///   im2col patch matrix inside the fused `conv2d`, per-channel `1/σ`
///   vectors in batch norm) is drawn from — and returned to — the arena's
///   [`BufferPool`] ([`EagerExec::with_pool`]; `new` uses the global pool).
/// - **Parameter snapshots** are recycled across resets exactly as before:
///   `param` moves a weight tensor out of an internal cache instead of
///   cloning the parameter storage, and `reset` moves it back. The cache is
///   keyed by parameter storage identity (holding the [`Parameter`] handle,
///   so identity cannot be recycled) and invalidated by
///   [`Parameter::version`], so a weight update between requests triggers
///   exactly one fresh snapshot.
///
/// Recycled buffers carry stale contents; every op fully overwrites (or
/// zero-fills) its output, and the `pool_equivalence` property suite
/// asserts pooled execution is bit-identical to fresh-allocation execution
/// even when the pool is pre-poisoned with NaN garbage.
///
/// Always in inference mode: dropout is the identity and batch norm uses
/// running statistics.
pub struct EagerExec {
    /// Arena slots. `values[..live]` are this pass's nodes; slots past
    /// `live` are spare tensors from the previous pass awaiting refit.
    /// `None` marks a slot whose tensor was moved out (`take`, or a
    /// parameter snapshot reclaimed by `reset`).
    values: Vec<Option<Tensor>>,
    /// Number of live nodes in the current pass.
    live: usize,
    /// Scratch-buffer pool (see the type-level docs).
    pool: Arc<BufferPool>,
    /// `(parameter handle, version, snapshot)` of parameters not currently
    /// in the arena. Holding the handle keeps the storage alive, so
    /// identity can never be recycled to a different parameter (no
    /// pointer-reuse aliasing). Linear scan: models hold tens of
    /// parameters, not thousands.
    param_cache: Vec<(Parameter, u64, Tensor)>,
    /// `(arena slot, parameter handle, version)` of parameters pushed
    /// since the last reset, so their snapshots can be reclaimed.
    param_slots: Vec<(usize, Parameter, u64)>,
}

impl Default for EagerExec {
    fn default() -> Self {
        EagerExec::new()
    }
}

/// Reads a live arena value (the immutable prefix returned by `out_slot`).
fn live_val(head: &[Option<Tensor>], v: Var) -> &Tensor {
    head.get(v.id)
        .and_then(|slot| slot.as_ref())
        .expect("var is not live in this arena")
}

/// Refits a (possibly spare) slot to `dims`, reusing its buffer and shape
/// when they match; contents are unspecified and must be fully overwritten.
fn refit_slot<'s>(slot: &'s mut Option<Tensor>, dims: &[usize]) -> &'s mut Tensor {
    match slot {
        Some(t) => {
            t.refit(dims);
            t
        }
        None => {
            *slot = Some(Tensor::zeros(dims));
            slot.as_mut().expect("just set")
        }
    }
}

impl EagerExec {
    /// Creates an empty arena backed by the global [`BufferPool`].
    pub fn new() -> Self {
        EagerExec::with_pool(Arc::clone(BufferPool::global()))
    }

    /// Creates an empty arena drawing kernel scratch from `pool` — used by
    /// `InferenceSession` to give every session (and every batch-shard
    /// worker) its own isolated pool.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        EagerExec {
            values: Vec::new(),
            live: 0,
            pool,
            param_cache: Vec::new(),
            param_slots: Vec::new(),
        }
    }

    /// The pool this arena recycles kernel scratch through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Rewinds the arena while keeping every slot's tensor for in-place
    /// reuse by the next pass; parameter snapshots move back into the
    /// recycle cache.
    pub fn reset(&mut self) {
        for (slot, param, version) in self.param_slots.drain(..) {
            if let Some(t) = self.values[slot].take() {
                self.param_cache.push((param, version, t));
            }
        }
        self.live = 0;
    }

    /// Number of live values in the current pass.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if the arena holds no live values.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes the value of `v` from the arena, transferring ownership to
    /// the caller (the slot refills on the next pass). Used by serving code
    /// to extract the output without a final copy; note that a serving loop
    /// gets a cheaper steady state by *copying* the output into a pooled
    /// tensor instead, which keeps the slot's buffer in the arena.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not live in this arena.
    pub fn take(&mut self, v: Var) -> Tensor {
        assert!(v.id < self.live, "var is not live in this arena");
        // if the caller extracts a parameter leaf, it must not be recycled
        self.param_slots.retain(|(slot, _, _)| *slot != v.id);
        self.values[v.id].take().expect("value already taken")
    }

    /// Registers an input by **copying** it into a recycled slot — the
    /// allocation-free counterpart of `leaf(x.clone())`.
    pub fn leaf_view(&mut self, t: &Tensor) -> Var {
        let (_, slot) = self.out_slot();
        let out = refit_slot(slot, t.shape().dims());
        out.data_mut().copy_from_slice(t.data());
        self.commit()
    }

    /// Registers an input by copying it into a recycled slot under a
    /// different shape (same element count) — lets `predict` add a batch
    /// dimension without materializing an intermediate reshape.
    ///
    /// # Panics
    ///
    /// Panics if `dims` has a different element count than `t`, or
    /// `dims.len() > 16`.
    pub fn leaf_reshaped(&mut self, t: &Tensor, dims: &[usize]) -> Var {
        let numel: usize = dims.iter().product();
        assert_eq!(t.numel(), numel, "leaf_reshaped element count mismatch");
        let (_, slot) = self.out_slot();
        let out = refit_slot(slot, dims);
        out.data_mut().copy_from_slice(t.data());
        self.commit()
    }

    /// Registers rows `[lo, hi)` of `t`'s leading axis by copying them into
    /// a recycled slot — the allocation-free counterpart of
    /// `leaf(t.slice_axis(0, lo, hi))`, used by sharded batch inference.
    ///
    /// # Panics
    ///
    /// Panics if `t` is rank 0, the range is out of bounds or inverted, or
    /// the rank exceeds 16.
    pub fn leaf_slice0(&mut self, t: &Tensor, lo: usize, hi: usize) -> Var {
        let dims = t.shape().dims();
        assert!(!dims.is_empty(), "leaf_slice0 needs a leading axis");
        assert!(dims.len() <= 16, "leaf_slice0 supports rank <= 16");
        assert!(
            lo <= hi && hi <= dims[0],
            "slice [{lo}, {hi}) out of bounds for axis of size {}",
            dims[0]
        );
        let inner: usize = dims[1..].iter().product();
        let mut nd = [0usize; 16];
        nd[..dims.len()].copy_from_slice(dims);
        nd[0] = hi - lo;
        let (_, slot) = self.out_slot();
        let out = refit_slot(slot, &nd[..dims.len()]);
        out.data_mut()
            .copy_from_slice(&t.data()[lo * inner..hi * inner]);
        self.commit()
    }

    /// Moves an owned tensor into the next slot (dropping any spare buffer
    /// the slot held). The op implementations prefer `out_slot`/`commit`,
    /// which recycle instead.
    fn push(&mut self, value: Tensor) -> Var {
        if self.live == self.values.len() {
            self.values.push(Some(value));
        } else {
            self.values[self.live] = Some(value);
        }
        self.commit()
    }

    /// Splits the arena into the live prefix (op inputs) and the next
    /// output slot; `commit` afterwards makes the slot live.
    fn out_slot(&mut self) -> (&[Option<Tensor>], &mut Option<Tensor>) {
        if self.live == self.values.len() {
            self.values.push(None);
        }
        let (head, tail) = self.values.split_at_mut(self.live);
        (head, &mut tail[0])
    }

    fn commit(&mut self) -> Var {
        let id = self.live;
        self.live += 1;
        Var { id }
    }
}

impl Exec for EagerExec {
    fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t)
    }

    fn param(&mut self, p: &Parameter) -> Var {
        let version = p.version();
        let snapshot = match self
            .param_cache
            .iter()
            .position(|(cp, v, _)| cp.same_storage(p) && *v == version)
        {
            Some(i) => self.param_cache.swap_remove(i).2,
            None => {
                // drop only *stale* snapshots of this parameter; same-version
                // copies stay cached (weight sharing uses several per pass)
                self.param_cache
                    .retain(|(cp, v, _)| !cp.same_storage(p) || *v == version);
                p.value()
            }
        };
        let var = self.push(snapshot);
        self.param_slots.push((var.id, p.clone(), version));
        var
    }

    fn value(&self, v: Var) -> &Tensor {
        assert!(v.id < self.live, "var is not live in this arena");
        self.values[v.id].as_ref().expect("value was taken")
    }

    fn is_training(&self) -> bool {
        false
    }

    fn add(&mut self, a: Var, b: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let bv = live_val(head, b);
        assert_eq!(
            av.shape(),
            bv.shape(),
            "zip shape mismatch: {} vs {}",
            av.shape(),
            bv.shape()
        );
        let out = refit_slot(slot, av.shape().dims());
        elemwise::add_to(out.data_mut(), av.data(), bv.data());
        self.commit()
    }

    fn sub(&mut self, a: Var, b: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let bv = live_val(head, b);
        assert_eq!(
            av.shape(),
            bv.shape(),
            "zip shape mismatch: {} vs {}",
            av.shape(),
            bv.shape()
        );
        let out = refit_slot(slot, av.shape().dims());
        elemwise::sub_to(out.data_mut(), av.data(), bv.data());
        self.commit()
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let bv = live_val(head, b);
        assert_eq!(
            av.shape(),
            bv.shape(),
            "zip shape mismatch: {} vs {}",
            av.shape(),
            bv.shape()
        );
        let out = refit_slot(slot, av.shape().dims());
        elemwise::mul_to(out.data_mut(), av.data(), bv.data());
        self.commit()
    }

    fn scale(&mut self, a: Var, s: f32) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let out = refit_slot(slot, av.shape().dims());
        elemwise::scale_to(out.data_mut(), av.data(), s);
        self.commit()
    }

    fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let out = refit_slot(slot, av.shape().dims());
        elemwise::add_scalar_to(out.data_mut(), av.data(), s);
        self.commit()
    }

    fn square(&mut self, a: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let out = refit_slot(slot, av.shape().dims());
        elemwise::square_to(out.data_mut(), av.data());
        self.commit()
    }

    fn powi(&mut self, a: Var, p: i32) -> Var {
        assert!(p >= 1, "powi requires p >= 1, got {p}");
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let out = refit_slot(slot, av.shape().dims());
        elemwise::map_to(out.data_mut(), av.data(), move |x| x.powi(p));
        self.commit()
    }

    fn relu(&mut self, a: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let out = refit_slot(slot, av.shape().dims());
        elemwise::relu_to(out.data_mut(), av.data());
        self.commit()
    }

    fn tanh(&mut self, a: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let out = refit_slot(slot, av.shape().dims());
        elemwise::map_to(out.data_mut(), av.data(), |x| x.tanh());
        self.commit()
    }

    fn sigmoid(&mut self, a: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let out = refit_slot(slot, av.shape().dims());
        elemwise::sigmoid_to(out.data_mut(), av.data());
        self.commit()
    }

    fn add_bcast(&mut self, a: Var, b: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let bv = live_val(head, b);
        bcast_lead(av, bv);
        let out = refit_slot(slot, av.shape().dims());
        let od = out.data_mut();
        od.copy_from_slice(av.data());
        let bl = bv.numel();
        for chunk in od.chunks_mut(bl) {
            for (o, &x) in chunk.iter_mut().zip(bv.data()) {
                *o += x;
            }
        }
        self.commit()
    }

    fn mul_bcast(&mut self, a: Var, b: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let bv = live_val(head, b);
        bcast_lead(av, bv);
        let out = refit_slot(slot, av.shape().dims());
        let od = out.data_mut();
        od.copy_from_slice(av.data());
        let bl = bv.numel();
        for chunk in od.chunks_mut(bl) {
            for (o, &x) in chunk.iter_mut().zip(bv.data()) {
                *o *= x;
            }
        }
        self.commit()
    }

    fn add_channel(&mut self, a: Var, bias: Var) -> Var {
        let stages = [ChainStage::AddChannel(bias)];
        self.elemwise_chain(a, &stages)
    }

    fn mul_channel(&mut self, a: Var, scale: Var) -> Var {
        let stages = [ChainStage::MulChannel(scale)];
        self.elemwise_chain(a, &stages)
    }

    fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        if self.value(a).shape().dims() == dims {
            // shape is unchanged: reuse the node, no copy
            return a;
        }
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let numel: usize = dims.iter().product();
        if av.numel() != numel {
            panic!(
                "reshape: {}",
                TensorError::ReshapeMismatch {
                    from: av.shape().dims().to_vec(),
                    to: dims.to_vec(),
                }
            );
        }
        let out = refit_slot(slot, dims);
        out.data_mut().copy_from_slice(av.data());
        self.commit()
    }

    fn permute(&mut self, a: Var, axes: &[usize]) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let nd = av.ndim();
        assert_eq!(axes.len(), nd, "permute needs {nd} axes");
        assert!(nd <= 16, "permute supports rank <= 16");
        let old_dims = av.shape().dims();
        let mut new_dims = [0usize; 16];
        for (i, &ax) in axes.iter().enumerate() {
            assert!(ax < nd, "axes must be a permutation of 0..{nd}");
            new_dims[i] = old_dims[ax];
        }
        let out = refit_slot(slot, &new_dims[..nd]);
        av.permute_into(axes, out.data_mut());
        self.commit()
    }

    fn concat(&mut self, parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero vars");
        let (head, slot) = self.out_slot();
        let first = live_val(head, parts[0]);
        let nd = first.ndim();
        assert!(axis < nd, "axis {axis} out of range for rank {nd}");
        assert!(nd <= 16, "concat supports rank <= 16");
        let dims = first.shape().dims();
        let mut total_mid = 0usize;
        for p in parts {
            let pv = live_val(head, *p);
            assert_eq!(pv.ndim(), nd, "concat rank mismatch");
            for (a, &d) in dims.iter().enumerate() {
                if a != axis {
                    assert_eq!(pv.shape().dim(a), d, "concat dim {a} mismatch");
                }
            }
            total_mid += pv.shape().dim(axis);
        }
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out_dims = [0usize; 16];
        out_dims[..nd].copy_from_slice(dims);
        out_dims[axis] = total_mid;
        let out = refit_slot(slot, &out_dims[..nd]);
        let od = out.data_mut();
        for o in 0..outer {
            let mut mid_off = 0usize;
            for p in parts {
                let pv = live_val(head, *p);
                let mid = pv.shape().dim(axis);
                let src = &pv.data()[o * mid * inner..(o + 1) * mid * inner];
                let dst_base = (o * total_mid + mid_off) * inner;
                od[dst_base..dst_base + mid * inner].copy_from_slice(src);
                mid_off += mid;
            }
        }
        self.commit()
    }

    fn slice_axis(&mut self, a: Var, axis: usize, start: usize, end: usize) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let nd = av.ndim();
        assert!(axis < nd, "axis {axis} out of range for rank {nd}");
        assert!(nd <= 16, "slice_axis supports rank <= 16");
        let dims = av.shape().dims();
        assert!(
            start <= end && end <= dims[axis],
            "slice [{start}, {end}) out of bounds for axis of size {}",
            dims[axis]
        );
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mid = dims[axis];
        let new_mid = end - start;
        let mut out_dims = [0usize; 16];
        out_dims[..nd].copy_from_slice(dims);
        out_dims[axis] = new_mid;
        let out = refit_slot(slot, &out_dims[..nd]);
        let od = out.data_mut();
        for o in 0..outer {
            let src_base = (o * mid + start) * inner;
            let dst_base = o * new_mid * inner;
            od[dst_base..dst_base + new_mid * inner]
                .copy_from_slice(&av.data()[src_base..src_base + new_mid * inner]);
        }
        self.commit()
    }

    fn sum_all(&mut self, a: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let total: f32 = av.data().iter().sum();
        let out = refit_slot(slot, &[1]);
        out.data_mut()[0] = total;
        self.commit()
    }

    fn sum_axis(&mut self, a: Var, axis: usize) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let nd = av.ndim();
        assert!(axis < nd, "axis {axis} out of range for rank {nd}");
        assert!(nd <= 16, "sum_axis supports rank <= 16");
        let dims = av.shape().dims();
        let mut out_dims = [0usize; 16];
        let mut odn = 0usize;
        for (i, &d) in dims.iter().enumerate() {
            if i != axis {
                out_dims[odn] = d;
                odn += 1;
            }
        }
        if odn == 0 {
            out_dims[0] = 1;
            odn = 1;
        }
        let out = refit_slot(slot, &out_dims[..odn]);
        av.sum_axis_into(axis, out.data_mut());
        self.commit()
    }

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let bv = live_val(head, b);
        assert_eq!(av.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(bv.ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = av.dims2();
        let (k2, n) = bv.dims2();
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        let out = refit_slot(slot, &[m, n]);
        gemm(MatMut::new(out.data_mut(), m, n), av.mat(), bv.mat());
        self.commit()
    }

    fn matmul_transb(&mut self, a: Var, b: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let bv = live_val(head, b);
        assert_eq!(av.ndim(), 2, "matmul_transb lhs must be 2-D");
        assert_eq!(bv.ndim(), 2, "matmul_transb rhs must be 2-D");
        let (m, k) = av.dims2();
        let (n, k2) = bv.dims2();
        assert_eq!(k, k2, "matmul_transb trailing dims differ: {k} vs {k2}");
        let out = refit_slot(slot, &[m, n]);
        gemm(
            MatMut::new(out.data_mut(), m, n),
            av.mat(),
            bv.mat().transpose(),
        );
        self.commit()
    }

    fn bmm(&mut self, a: Var, b: Var) -> Var {
        let (head, slot) = self.out_slot();
        let av = live_val(head, a);
        let bv = live_val(head, b);
        let (n, m, _k, p) = crate::matops::bmm_dims(av, bv);
        let out = refit_slot(slot, &[n, m, p]);
        crate::matops::bmm_forward_into(out.data_mut(), av, bv);
        self.commit()
    }

    fn im2col(&mut self, x: Var, spec: Conv2dSpec) -> Var {
        let (head, slot) = self.out_slot();
        let xv = live_val(head, x);
        let (b, c, h, w) = xv.dims4();
        let (oh, ow) = spec.output_hw(h, w);
        let patch = c * spec.kernel * spec.kernel;
        let out = refit_slot(slot, &[b * oh * ow, patch]);
        im2col_into(out.data_mut(), xv, spec);
        self.commit()
    }

    fn conv2d(&mut self, x: Var, weight: Var, spec: Conv2dSpec) -> Var {
        // Fused lowering through the shared GEMM core: per sample, the
        // output plane block `[OC, OH·OW]` is `W [OC, n] @ colsᵀ [n, OH·OW]`
        // with the im2col transpose as a zero-copy stride swap — the same
        // arithmetic as the taped im2col → matmul_transb → reshape → permute
        // pipeline (bit-identical), minus two full-tensor copies. The patch
        // matrix itself lives in pool-recycled scratch, so the steady state
        // allocates nothing.
        let pool = Arc::clone(&self.pool);
        let (head, slot) = self.out_slot();
        let xv = live_val(head, x);
        let wv = live_val(head, weight);
        let (b, c, h, w) = xv.dims4();
        let (oc, wc, kh, kw) = wv.dims4();
        assert_eq!(c, wc, "conv2d channel mismatch: input {c}, weight {wc}");
        assert_eq!(kh, spec.kernel, "conv2d kernel mismatch");
        assert_eq!(kw, spec.kernel, "conv2d kernel mismatch");
        let (oh, ow) = spec.output_hw(h, w);
        let n = c * kh * kw;
        let hw = oh * ow;
        // RAII handout: the patch matrix returns to the pool when `cols`
        // drops, panic paths included
        let mut cols = BufferPool::take_ref(&pool, b * hw * n);
        im2col_into(&mut cols, xv, spec);
        let out = refit_slot(slot, &[b, oc, oh, ow]);
        {
            let wdata = wv.data(); // [OC, n] row-major
            gemm_batched(
                out.data_mut(),
                b,
                oc,
                hw,
                n,
                |_| MatRef::new(wdata, oc, n),
                |bi| MatRef::new(&cols[bi * hw * n..(bi + 1) * hw * n], hw, n).transpose(),
            );
        }
        drop(cols);
        self.commit()
    }

    fn max_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var {
        // values-only kernel: inference never needs the argmax indices
        let (head, slot) = self.out_slot();
        let xv = live_val(head, x);
        let (b, c, h, w) = xv.dims4();
        let (oh, ow) = spec.output_hw(h, w);
        let out = refit_slot(slot, &[b, c, oh, ow]);
        max_pool2d_into(out.data_mut(), xv, spec);
        self.commit()
    }

    fn avg_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var {
        let (head, slot) = self.out_slot();
        let xv = live_val(head, x);
        let (b, c, h, w) = xv.dims4();
        let (oh, ow) = spec.output_hw(h, w);
        let out = refit_slot(slot, &[b, c, oh, ow]);
        avg_pool2d_into(out.data_mut(), xv, spec);
        self.commit()
    }

    fn global_avg_pool(&mut self, x: Var) -> Var {
        let (head, slot) = self.out_slot();
        let xv = live_val(head, x);
        let (b, c, h, w) = xv.dims4();
        assert_eq!(h, w, "global_avg_pool expects square feature maps");
        // single pass, same summation order as avg_pool2d over a full window
        let norm = 1.0 / (h * w) as f32;
        let data = xv.data();
        let out = refit_slot(slot, &[b, c]);
        qn_parallel::par_chunks_mut_min(out.data_mut(), c.max(1), PAR_MIN_ELEMS, |bi, orow| {
            for (ci, o) in orow.iter_mut().enumerate() {
                let base = (bi * c + ci) * h * w;
                let mut acc = 0.0f32;
                for &v in &data[base..base + h * w] {
                    acc += v;
                }
                *o = acc * norm;
            }
        });
        self.commit()
    }

    fn softmax_last(&mut self, x: Var) -> Var {
        let (head, slot) = self.out_slot();
        let xv = live_val(head, x);
        let last = xv.shape().dims().last().copied().unwrap_or(1);
        let out = refit_slot(slot, xv.shape().dims());
        let od = out.data_mut();
        od.copy_from_slice(xv.data());
        softmax_rows_inplace(od, last);
        self.commit()
    }

    fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        // shared inference kernel, with no x̂ / 1/σ capture (nothing to
        // backprop) and the output written straight into the recycled slot
        let (head, slot) = self.out_slot();
        let xv = live_val(head, x);
        let gv = live_val(head, gamma);
        let bv = live_val(head, beta);
        let out = refit_slot(slot, xv.shape().dims());
        layer_norm_infer_into(out.data_mut(), xv, gv, bv, eps);
        self.commit()
    }

    fn batch_norm2d(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> (Var, Option<(Tensor, Tensor)>) {
        // Inference-only: normalize with running statistics through the
        // fused chain (one pass, pooled 1/σ scratch, recycled output slot).
        let stages = [ChainStage::NormChannel {
            gamma,
            beta,
            mean: running_mean,
            var: running_var,
            eps,
        }];
        (self.elemwise_chain(x, &stages), None)
    }

    fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var {
        let (head, slot) = self.out_slot();
        let wv = live_val(head, weight);
        let (v, d) = wv.dims2();
        for &id in ids {
            assert!(id < v, "token id {id} out of range for vocab {v}");
        }
        let out = refit_slot(slot, &[ids.len(), d]);
        let od = out.data_mut();
        for (row, &id) in ids.iter().enumerate() {
            od[row * d..(row + 1) * d].copy_from_slice(&wv.data()[id * d..(id + 1) * d]);
        }
        self.commit()
    }

    fn dropout(&mut self, x: Var, p: f32) -> Var {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0, 1), got {p}"
        );
        // inference mode: identity (no new node needed)
        x
    }

    fn weighted_square_sum(&mut self, f: Var, lambda: Var, neurons: usize, k: usize) -> Var {
        // single pass over f: same per-term expression and summation order as
        // the default square → mul_bcast → sum_axis decomposition
        let (head, slot) = self.out_slot();
        let fv = live_val(head, f);
        let lv = live_val(head, lambda);
        let (rows, mk) = fv.dims2();
        assert_eq!(mk, neurons * k, "feature width {mk} != {neurons}·{k}");
        assert_eq!(lv.numel(), neurons * k, "lambda size mismatch");
        let fd = fv.data();
        let ld = lv.data();
        let out = refit_slot(slot, &[rows, neurons]);
        let fast = qn_simd::KernelProfile::active() == qn_simd::KernelProfile::Fast;
        qn_parallel::par_chunks_mut_min(
            out.data_mut(),
            neurons.max(1),
            PAR_MIN_ELEMS,
            |r, orow| {
                if fast {
                    qn_simd::weighted_square_row(orow, &fd[r * mk..(r + 1) * mk], ld, k);
                    return;
                }
                for (j, o) in orow.iter_mut().enumerate() {
                    let base = r * mk + j * k;
                    let mut acc = 0.0f32;
                    for i in 0..k {
                        let x = fd[base + i];
                        acc += x * x * ld[j * k + i];
                    }
                    *o = acc;
                }
            },
        );
        self.commit()
    }

    fn interleave_last(&mut self, y: Var, f: Var, k: usize) -> Var {
        let (head, slot) = self.out_slot();
        let yv = live_val(head, y);
        let fv = live_val(head, f);
        let (rows, m) = yv.dims2();
        assert_eq!(fv.numel(), rows * m * k, "feature size mismatch");
        let yd = yv.data();
        let fd = fv.data();
        let out = refit_slot(slot, &[rows, m * (k + 1)]);
        qn_parallel::par_chunks_mut_min(
            out.data_mut(),
            (m * (k + 1)).max(1),
            PAR_MIN_ELEMS,
            |r, orow| {
                for j in 0..m {
                    let dst = j * (k + 1);
                    orow[dst] = yd[r * m + j];
                    orow[dst + 1..dst + 1 + k]
                        .copy_from_slice(&fd[r * m * k + j * k..r * m * k + (j + 1) * k]);
                }
            },
        );
        self.commit()
    }

    fn rows_to_nchw(&mut self, v: Var, b: usize, oh: usize, ow: usize, c: usize) -> Var {
        let (head, slot) = self.out_slot();
        let vv = live_val(head, v);
        assert_eq!(vv.numel(), b * oh * ow * c, "rows_to_nchw size mismatch");
        let hw = oh * ow;
        let vd = vv.data();
        let out = refit_slot(slot, &[b, c, oh, ow]);
        qn_parallel::par_chunks_mut_min(
            out.data_mut(),
            (c * hw).max(1),
            PAR_MIN_ELEMS,
            |bi, oslab| {
                for pos in 0..hw {
                    let row = &vd[(bi * hw + pos) * c..(bi * hw + pos + 1) * c];
                    for (ci, &x) in row.iter().enumerate() {
                        oslab[ci * hw + pos] = x;
                    }
                }
            },
        );
        self.commit()
    }

    fn elemwise_chain(&mut self, x: Var, stages: &[ChainStage<'_>]) -> Var {
        /// Stage resolved to raw per-channel / per-element slices.
        enum Prep<'p> {
            Bias(&'p [f32]),
            Scale(&'p [f32]),
            Norm {
                mean: &'p [f32],
                inv: &'p [f32],
                gamma: &'p [f32],
                beta: &'p [f32],
            },
            Relu,
            Residual(&'p [f32]),
        }
        const MAX_STAGES: usize = 8;
        assert!(
            stages.len() <= MAX_STAGES,
            "elemwise_chain supports at most {MAX_STAGES} stages"
        );
        let pool = Arc::clone(&self.pool);
        // per-Norm-stage 1/σ scratch, drawn from the pool (hoisted per
        // channel exactly like the unfused batch-norm kernel)
        let mut inv_scratch: [Option<Vec<f32>>; MAX_STAGES] = Default::default();
        for (si, stage) in stages.iter().enumerate() {
            if let ChainStage::NormChannel { var, eps, .. } = stage {
                let mut inv = pool.take_f32(var.numel());
                for (o, &v) in inv.iter_mut().zip(var.data()) {
                    *o = 1.0 / (v + eps).sqrt();
                }
                inv_scratch[si] = Some(inv);
            }
        }
        let (head, slot) = self.out_slot();
        let xv = live_val(head, x);
        let (_b, c, h, w) = xv.dims4();
        let hw = h * w;
        let mut prep: [Option<Prep>; MAX_STAGES] = Default::default();
        for (si, stage) in stages.iter().enumerate() {
            prep[si] = Some(match *stage {
                ChainStage::AddChannel(bias) => {
                    let bv = live_val(head, bias);
                    assert_eq!(bv.ndim(), 1, "bias must be 1-D");
                    assert_eq!(bv.numel(), c, "bias width {} != {c}", bv.numel());
                    Prep::Bias(bv.data())
                }
                ChainStage::MulChannel(scale) => {
                    let sv = live_val(head, scale);
                    assert_eq!(sv.ndim(), 1, "scale must be 1-D");
                    assert_eq!(sv.numel(), c, "scale width {} != {c}", sv.numel());
                    Prep::Scale(sv.data())
                }
                ChainStage::NormChannel {
                    gamma, beta, mean, ..
                } => {
                    let gv = live_val(head, gamma);
                    let bv = live_val(head, beta);
                    assert_eq!(gv.numel(), c, "gamma width {} != {c}", gv.numel());
                    assert_eq!(bv.numel(), c, "beta width {} != {c}", bv.numel());
                    assert_eq!(mean.numel(), c, "mean width {} != {c}", mean.numel());
                    Prep::Norm {
                        mean: mean.data(),
                        inv: inv_scratch[si].as_deref().expect("computed above"),
                        gamma: gv.data(),
                        beta: bv.data(),
                    }
                }
                ChainStage::Relu => Prep::Relu,
                ChainStage::AddResidual(r) => {
                    let rv = live_val(head, r);
                    assert_eq!(
                        rv.shape(),
                        xv.shape(),
                        "zip shape mismatch: {} vs {}",
                        rv.shape(),
                        xv.shape()
                    );
                    Prep::Residual(rv.data())
                }
            });
        }
        let nst = stages.len();
        let xd = xv.data();
        let out = refit_slot(slot, xv.shape().dims());
        // Vector body for the `Fast` profile. Every stage is a plain
        // lane-wise add/sub/mul/max — no fusing, no reassociation — so each
        // lane computes the exact scalar expression and the vector path is
        // bit-identical to the scalar loop below (the only Fast/Exact
        // divergence in this op is none; Fast merely vectorizes).
        #[inline(always)]
        unsafe fn run_plane<S: qn_simd::arch::SimdF32>(
            oplane: &mut [f32],
            xd: &[f32],
            prep: &[Option<Prep<'_>>],
            ci: usize,
            base: usize,
        ) {
            let n = oplane.len();
            let mut j = 0;
            while j + S::LANES <= n {
                let mut v = S::load(&xd[base + j..]);
                for stage in prep.iter() {
                    match stage.as_ref().expect("prepared above") {
                        Prep::Bias(bs) => v = v.add(S::splat(bs[ci])),
                        Prep::Scale(ss) => v = v.mul(S::splat(ss[ci])),
                        Prep::Norm {
                            mean,
                            inv,
                            gamma,
                            beta,
                        } => {
                            v = v
                                .sub(S::splat(mean[ci]))
                                .mul(S::splat(inv[ci]))
                                .mul(S::splat(gamma[ci]))
                                .add(S::splat(beta[ci]))
                        }
                        Prep::Relu => v = v.max(S::zero()),
                        Prep::Residual(r) => v = v.add(S::load(&r[base + j..])),
                    }
                }
                v.store(&mut oplane[j..]);
                j += S::LANES;
            }
            // tail: the same expression one lane at a time
            for (jj, o) in oplane.iter_mut().enumerate().skip(j) {
                let mut v = xd[base + jj];
                for stage in prep.iter() {
                    match stage.as_ref().expect("prepared above") {
                        Prep::Bias(bs) => v += bs[ci],
                        Prep::Scale(ss) => v *= ss[ci],
                        Prep::Norm {
                            mean,
                            inv,
                            gamma,
                            beta,
                        } => v = (v - mean[ci]) * inv[ci] * gamma[ci] + beta[ci],
                        Prep::Relu => v = v.max(0.0),
                        Prep::Residual(r) => v += r[base + jj],
                    }
                }
                *o = v;
            }
        }
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2", enable = "fma")]
        unsafe fn run_plane_avx2(
            oplane: &mut [f32],
            xd: &[f32],
            prep: &[Option<Prep<'_>>],
            ci: usize,
            base: usize,
        ) {
            run_plane::<qn_simd::arch::Avx2F32>(oplane, xd, prep, ci, base)
        }
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "sse2")]
        unsafe fn run_plane_sse2(
            oplane: &mut [f32],
            xd: &[f32],
            prep: &[Option<Prep<'_>>],
            ci: usize,
            base: usize,
        ) {
            run_plane::<qn_simd::arch::Sse2F32>(oplane, xd, prep, ci, base)
        }
        let fast = match qn_simd::KernelProfile::active() {
            qn_simd::KernelProfile::Fast => Some(qn_simd::SimdLevel::active()),
            qn_simd::KernelProfile::Exact => None,
        };
        // one pass: per element, the stages apply in order with the exact
        // scalar expression of their unfused counterparts, so the fusion is
        // bit-identical to the decomposed pipeline. Parallel over disjoint
        // (batch, channel) planes like the unfused channel kernels.
        qn_parallel::par_chunks_mut_min(
            out.data_mut(),
            hw.max(1),
            PAR_MIN_ELEMS,
            |plane, oplane| {
                let ci = plane % c;
                let base = plane * hw;
                match fast {
                    // SAFETY: the dispatched level never exceeds the CPU's
                    // detected features (`SimdLevel::active` clamps), and
                    // every lane read stays inside `xd`/`r` because each
                    // `oplane` chunk maps to the same-length `[base..)`
                    // window of the equally-sized inputs.
                    #[cfg(target_arch = "x86_64")]
                    Some(qn_simd::SimdLevel::Avx2) => unsafe {
                        run_plane_avx2(oplane, xd, &prep[..nst], ci, base)
                    },
                    #[cfg(target_arch = "x86_64")]
                    Some(qn_simd::SimdLevel::Sse2) => unsafe {
                        run_plane_sse2(oplane, xd, &prep[..nst], ci, base)
                    },
                    // SAFETY: `ScalarF32` has no ISA requirement.
                    Some(_) => unsafe {
                        run_plane::<qn_simd::arch::ScalarF32>(oplane, xd, &prep[..nst], ci, base)
                    },
                    None => {
                        for (j, o) in oplane.iter_mut().enumerate() {
                            let mut v = xd[base + j];
                            for stage in prep[..nst].iter() {
                                match stage.as_ref().expect("prepared above") {
                                    Prep::Bias(bs) => v += bs[ci],
                                    Prep::Scale(ss) => v *= ss[ci],
                                    Prep::Norm {
                                        mean,
                                        inv,
                                        gamma,
                                        beta,
                                    } => v = (v - mean[ci]) * inv[ci] * gamma[ci] + beta[ci],
                                    Prep::Relu => v = v.max(0.0),
                                    Prep::Residual(r) => v += r[base + j],
                                }
                            }
                            *o = v;
                        }
                    }
                }
            },
        );
        let var = self.commit();
        for inv in inv_scratch.into_iter().flatten() {
            pool.give_f32(inv);
        }
        var
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_tensor::Rng;

    /// Runs `f` on both contexts and asserts identical outputs.
    fn both(f: impl Fn(&mut dyn Exec) -> Var) -> (Tensor, Tensor) {
        let mut g = Graph::new();
        let tv = f(&mut g);
        let mut e = EagerExec::new();
        let ev = f(&mut e);
        (g.value(tv).clone(), e.value(ev).clone())
    }

    #[test]
    fn elementwise_ops_match_tape() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[3, 4], &mut rng);
        for op in [
            |cx: &mut dyn Exec, v: Var| cx.relu(v),
            |cx: &mut dyn Exec, v: Var| cx.tanh(v),
            |cx: &mut dyn Exec, v: Var| cx.sigmoid(v),
            |cx: &mut dyn Exec, v: Var| cx.square(v),
            |cx: &mut dyn Exec, v: Var| cx.powi(v, 3),
            |cx: &mut dyn Exec, v: Var| cx.scale(v, -2.5),
            |cx: &mut dyn Exec, v: Var| cx.add_scalar(v, 0.7),
            |cx: &mut dyn Exec, v: Var| cx.neg(v),
        ] {
            let (t, e) = both(|cx| {
                let v = cx.leaf(x.clone());
                op(cx, v)
            });
            assert!(t.allclose(&e, 0.0));
        }
    }

    #[test]
    fn conv2d_matches_tape_exactly() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let w = Tensor::randn(&[5, 3, 3, 3], &mut rng);
        for spec in [Conv2dSpec::new(3, 1, 1), Conv2dSpec::new(3, 2, 0)] {
            let (t, e) = both(|cx| {
                let xv = cx.leaf(x.clone());
                let wv = cx.leaf(w.clone());
                cx.conv2d(xv, wv, spec)
            });
            assert_eq!(t.shape().dims(), e.shape().dims());
            assert!(t.allclose(&e, 0.0), "fused conv must be bitwise equal");
        }
    }

    #[test]
    fn norms_and_softmax_match_tape() {
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn(&[2, 4, 8], &mut rng).scale(3.0);
        let gamma = Tensor::rand_uniform(&[8], 0.5, 1.5, &mut rng);
        let beta = Tensor::randn(&[8], &mut rng);
        let (t, e) = both(|cx| {
            let xv = cx.leaf(x.clone());
            let gv = cx.leaf(gamma.clone());
            let bv = cx.leaf(beta.clone());
            cx.layer_norm(xv, gv, bv, 1e-5)
        });
        assert!(t.allclose(&e, 0.0));
        let (t, e) = both(|cx| {
            let xv = cx.leaf(x.clone());
            cx.softmax_last(xv)
        });
        assert!(t.allclose(&e, 0.0));
    }

    #[test]
    fn batch_norm_inference_matches_tape() {
        let mut rng = Rng::seed_from(4);
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        let gamma = Tensor::rand_uniform(&[3], 0.5, 1.5, &mut rng);
        let beta = Tensor::randn(&[3], &mut rng);
        let rm = Tensor::randn(&[3], &mut rng);
        let rv = Tensor::rand_uniform(&[3], 0.5, 2.0, &mut rng);
        let (t, e) = both(|cx| {
            let xv = cx.leaf(x.clone());
            let gv = cx.leaf(gamma.clone());
            let bv = cx.leaf(beta.clone());
            let (y, stats) = cx.batch_norm2d(xv, gv, bv, &rm, &rv, 1e-5);
            assert!(stats.is_none());
            y
        });
        assert!(t.allclose(&e, 0.0));
    }

    #[test]
    fn pooling_and_shape_ops_match_tape() {
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        for op in [
            |cx: &mut dyn Exec, v: Var| cx.max_pool2d(v, PoolSpec::new(2, 2)),
            |cx: &mut dyn Exec, v: Var| cx.avg_pool2d(v, PoolSpec::new(3, 3)),
            |cx: &mut dyn Exec, v: Var| cx.global_avg_pool(v),
            |cx: &mut dyn Exec, v: Var| cx.reshape(v, &[6, 36]),
            |cx: &mut dyn Exec, v: Var| cx.permute(v, &[0, 2, 3, 1]),
            |cx: &mut dyn Exec, v: Var| cx.slice_axis(v, 1, 1, 3),
            |cx: &mut dyn Exec, v: Var| cx.im2col(v, Conv2dSpec::new(3, 1, 1)),
            |cx: &mut dyn Exec, v: Var| cx.sum_axis(v, 2),
            |cx: &mut dyn Exec, v: Var| cx.mean_axis(v, 1),
            |cx: &mut dyn Exec, v: Var| cx.sum_all(v),
            |cx: &mut dyn Exec, v: Var| cx.mean_all(v),
        ] {
            let (t, e) = both(|cx| {
                let v = cx.leaf(x.clone());
                op(cx, v)
            });
            assert!(t.allclose(&e, 0.0));
        }
    }

    #[test]
    fn matmuls_and_bcast_match_tape() {
        let mut rng = Rng::seed_from(6);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 5], &mut rng);
        let bt = Tensor::randn(&[5, 4], &mut rng);
        let bias = Tensor::randn(&[4], &mut rng);
        let (t, e) = both(|cx| {
            let av = cx.leaf(a.clone());
            let bv = cx.leaf(b.clone());
            cx.matmul(av, bv)
        });
        assert!(t.allclose(&e, 0.0));
        let (t, e) = both(|cx| {
            let av = cx.leaf(a.clone());
            let bv = cx.leaf(bt.clone());
            cx.matmul_transb(av, bv)
        });
        assert!(t.allclose(&e, 0.0));
        type BcastOp = fn(&mut dyn Exec, Var, Var) -> Var;
        let bcast_ops: [BcastOp; 2] =
            [|cx, a, b| cx.add_bcast(a, b), |cx, a, b| cx.mul_bcast(a, b)];
        for op in bcast_ops {
            let (t, e) = both(|cx| {
                let av = cx.leaf(a.clone());
                let bv = cx.leaf(bias.clone());
                op(cx, av, bv)
            });
            assert!(t.allclose(&e, 0.0));
        }
        let a3 = Tensor::randn(&[2, 3, 4], &mut rng);
        let b3 = Tensor::randn(&[2, 4, 2], &mut rng);
        let (t, e) = both(|cx| {
            let av = cx.leaf(a3.clone());
            let bv = cx.leaf(b3.clone());
            cx.bmm(av, bv)
        });
        assert!(t.allclose(&e, 0.0));
    }

    #[test]
    fn eager_dropout_and_embedding() {
        let mut rng = Rng::seed_from(7);
        let mut e = EagerExec::new();
        let x = e.leaf(Tensor::randn(&[2, 2], &mut rng));
        let y = e.dropout(x, 0.5);
        assert_eq!(x, y, "eager dropout is the identity");
        let w = e.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let emb = e.embedding(w, &[1, 0]);
        assert_eq!(e.value(emb).data(), &[3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn reset_retains_capacity_and_take_moves() {
        let mut e = EagerExec::new();
        let v = e.leaf(Tensor::ones(&[4]));
        let w = e.relu(v);
        assert_eq!(e.len(), 2);
        let out = e.take(w);
        assert_eq!(out.data(), &[1.0, 1.0, 1.0, 1.0]);
        e.reset();
        assert!(e.is_empty());
        // arena is reusable after reset
        let v2 = e.leaf(Tensor::zeros(&[2]));
        assert_eq!(v2.id, 0);
    }

    #[test]
    fn eager_param_is_not_bound() {
        let p = Parameter::new(Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let mut e = EagerExec::new();
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[2.0]);
        assert!(!e.is_training());
    }

    #[test]
    fn eager_param_snapshots_recycle_and_invalidate() {
        let p = Parameter::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let mut e = EagerExec::new();
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[1.0, 2.0]);
        // recycled across reset: same value, no stale data
        e.reset();
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[1.0, 2.0]);
        // a weight update invalidates the cached snapshot
        e.reset();
        p.update(|value, _| value.map_inplace(|x| x + 10.0));
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[11.0, 12.0]);
        // weight sharing: the same parameter twice in one pass
        e.reset();
        let a = e.param(&p);
        let b = e.param(&p);
        assert_eq!(e.value(a).data(), &[11.0, 12.0]);
        assert_eq!(e.value(b).data(), &[11.0, 12.0]);
        e.reset();
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[11.0, 12.0]);
        // taking a param leaf out of the arena must not poison the cache
        let t = e.take(v);
        assert_eq!(t.data(), &[11.0, 12.0]);
        e.reset();
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "token id 9 out of range")]
    fn eager_embedding_bounds_checked() {
        let mut e = EagerExec::new();
        let w = e.leaf(Tensor::zeros(&[3, 2]));
        e.embedding(w, &[9]);
    }
}
