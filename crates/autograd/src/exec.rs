//! Dual-mode execution: the [`Exec`] context abstraction and the tape-free
//! [`EagerExec`] arena.
//!
//! Every layer's forward pass is written once against [`Exec`]. Running it
//! on a [`Graph`] records the differentiation tape (training); running it on
//! an [`EagerExec`] evaluates the same arithmetic eagerly with **no** tape
//! nodes, no backward closures and none of the operand clones the tape
//! retains for the backward pass (inference/serving).
//!
//! [`Var`] handles are indices into whichever context produced them; a `Var`
//! from one context is meaningless in another.
//!
//! # Example
//!
//! ```
//! use qn_autograd::{EagerExec, Exec, Graph};
//! use qn_tensor::Tensor;
//!
//! # fn main() -> Result<(), qn_tensor::TensorError> {
//! let x = Tensor::from_vec(vec![1.0, -2.0], &[2])?;
//! // taped
//! let mut g = Graph::new();
//! let v = g.leaf(x.clone());
//! let y = g.relu(v);
//! // tape-free
//! let mut e = EagerExec::new();
//! let v2 = e.leaf(x);
//! let y2 = e.relu(v2);
//! assert!(g.value(y).allclose(e.value(y2), 0.0));
//! # Ok(())
//! # }
//! ```

use crate::graph::{Graph, Var};
use crate::nnops::{batch_norm_apply, layer_norm_forward, softmax_last};
use crate::ops::{add_bcast_forward, mul_bcast_forward};
use crate::Parameter;
use crate::PAR_MIN_ELEMS;
use qn_tensor::{
    avg_pool2d, gemm_batched, im2col, max_pool2d, Conv2dSpec, MatRef, PoolSpec, Tensor,
};

/// Execution context for a forward pass: either the differentiation tape
/// ([`Graph`]) or the allocation-light eager arena ([`EagerExec`]).
///
/// The op set mirrors [`Graph`]'s inherent forward ops one-to-one; both
/// implementations produce bitwise-identical values (the equivalence
/// property suites in `qn-nn` and `qn-core` assert this for every layer and
/// neuron family). Ops panic on shape mismatch exactly like their taped
/// counterparts — see each [`Graph`] method for the per-op contract.
///
/// Loss functions (`softmax_cross_entropy*`) and [`Graph::backward`] remain
/// tape-only: they exist to produce gradients.
pub trait Exec {
    /// Registers an input/constant tensor, returning its handle.
    fn leaf(&mut self, t: Tensor) -> Var;

    /// Registers a parameter's current value. On a [`Graph`] the leaf is
    /// bound so `backward` flushes its gradient; eagerly it is just a value.
    fn param(&mut self, p: &Parameter) -> Var;

    /// Value of a node.
    fn value(&self, v: Var) -> &Tensor;

    /// Whether stochastic/normalization layers should use training
    /// behaviour. Always `false` for [`EagerExec`].
    fn is_training(&self) -> bool;

    /// Elementwise sum of two same-shape nodes.
    fn add(&mut self, a: Var, b: Var) -> Var;
    /// Elementwise difference `a - b`.
    fn sub(&mut self, a: Var, b: Var) -> Var;
    /// Elementwise (Hadamard) product.
    fn mul(&mut self, a: Var, b: Var) -> Var;
    /// Multiplies every element by a constant.
    fn scale(&mut self, a: Var, s: f32) -> Var;
    /// Adds a constant to every element.
    fn add_scalar(&mut self, a: Var, s: f32) -> Var;
    /// Elementwise negation.
    fn neg(&mut self, a: Var) -> Var {
        self.scale(a, -1.0)
    }
    /// Elementwise square.
    fn square(&mut self, a: Var) -> Var;
    /// Elementwise integer power `xᵖ` (`p >= 1`).
    fn powi(&mut self, a: Var, p: i32) -> Var;
    /// Rectified linear unit.
    fn relu(&mut self, a: Var) -> Var;
    /// Hyperbolic tangent.
    fn tanh(&mut self, a: Var) -> Var;
    /// Logistic sigmoid.
    fn sigmoid(&mut self, a: Var) -> Var;

    /// Adds `b` (a trailing-suffix shape of `a`) broadcast over leading dims.
    fn add_bcast(&mut self, a: Var, b: Var) -> Var;
    /// Multiplies by `b` broadcast over leading dims (suffix rule).
    fn mul_bcast(&mut self, a: Var, b: Var) -> Var;
    /// Adds a per-channel bias `[C]` to a `[B, C, H, W]` activation.
    fn add_channel(&mut self, a: Var, bias: Var) -> Var;
    /// Multiplies a `[B, C, H, W]` activation by a per-channel scale `[C]`.
    fn mul_channel(&mut self, a: Var, scale: Var) -> Var;

    /// Reshapes to `dims` (element count must match).
    fn reshape(&mut self, a: Var, dims: &[usize]) -> Var;
    /// Permutes axes.
    fn permute(&mut self, a: Var, axes: &[usize]) -> Var;
    /// Concatenates nodes along `axis`.
    fn concat(&mut self, parts: &[Var], axis: usize) -> Var;
    /// Copies the half-open `[start, end)` range of `axis`.
    fn slice_axis(&mut self, a: Var, axis: usize, start: usize, end: usize) -> Var;

    /// Sum of all elements, as a `[1]` tensor.
    fn sum_all(&mut self, a: Var) -> Var;
    /// Mean of all elements, as a `[1]` tensor.
    fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).numel() as f32;
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n)
    }
    /// Sums over `axis`, removing it.
    fn sum_axis(&mut self, a: Var, axis: usize) -> Var;
    /// Mean over `axis`, removing it.
    fn mean_axis(&mut self, a: Var, axis: usize) -> Var {
        let n = self.value(a).shape().dim(axis) as f32;
        let s = self.sum_axis(a, axis);
        self.scale(s, 1.0 / n)
    }

    /// Matrix product `a @ b` of `[M, K] × [K, N]`.
    fn matmul(&mut self, a: Var, b: Var) -> Var;
    /// Matrix product `a @ bᵀ` of `[M, K] × [N, K]ᵀ`.
    fn matmul_transb(&mut self, a: Var, b: Var) -> Var;
    /// Batched matrix product of `[N, M, K] × [N, K, P]`.
    fn bmm(&mut self, a: Var, b: Var) -> Var;

    /// Lowers `[B, C, H, W]` to patch rows `[B·OH·OW, C·K·K]`.
    fn im2col(&mut self, x: Var, spec: Conv2dSpec) -> Var;
    /// 2-D convolution of `[B, C, H, W]` with filters `[OC, C, K, K]`.
    fn conv2d(&mut self, x: Var, weight: Var, spec: Conv2dSpec) -> Var;
    /// Max pooling with a square window.
    fn max_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var;
    /// Average pooling with a square window.
    fn avg_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var;
    /// Global average pooling: `[B, C, H, W] -> [B, C]`.
    fn global_avg_pool(&mut self, x: Var) -> Var;

    /// Numerically-stable softmax over the last axis.
    fn softmax_last(&mut self, x: Var) -> Var;
    /// Layer normalization over the last axis with affine `gamma`/`beta`.
    fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var;
    /// Batch normalization over `[B, C, H, W]`. In training mode (tape only)
    /// returns the batch statistics for the caller's running-stat update; in
    /// inference mode normalizes with the provided running statistics and
    /// returns `None`.
    fn batch_norm2d(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> (Var, Option<(Tensor, Tensor)>);
    /// Embedding lookup: gathers rows of `weight` (`[V, D]`) by token id.
    fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var;
    /// Inverted dropout; identity in inference mode.
    fn dropout(&mut self, x: Var, p: f32) -> Var;

    // ----- fused composites -----------------------------------------------
    //
    // Composite ops with a default decomposition into the primitives above.
    // The tape uses the defaults (so gradients flow through the recorded
    // primitives); `EagerExec` overrides them with single-pass kernels that
    // skip the intermediate allocations. Both produce bitwise-identical
    // values.

    /// The quadratic energy `y₂[r, j] = Σᵢ λ[j, i] · f[r, j·k + i]²` of the
    /// paper's efficient neuron: `f` is `[rows, m·k]` (per-neuron feature
    /// groups of width `k`), `lambda` is `[m, k]`; returns `[rows, m]`.
    fn weighted_square_sum(&mut self, f: Var, lambda: Var, neurons: usize, k: usize) -> Var {
        let rows = self.value(f).shape().dim(0);
        let f3 = self.reshape(f, &[rows, neurons, k]);
        let fsq = self.square(f3);
        let weighted = self.mul_bcast(fsq, lambda);
        self.sum_axis(weighted, 2)
    }

    /// Interleaves scalar outputs `y` (`[rows, m]`) with their feature
    /// groups `f` (`[rows, m·k]`) neuron-major into `[rows, m·(k+1)]`:
    /// `[y₀, f₀…, y₁, f₁…, …]` — the paper's vectorized output layout.
    fn interleave_last(&mut self, y: Var, f: Var, k: usize) -> Var {
        let (rows, m) = self.value(y).dims2();
        let f3 = self.reshape(f, &[rows, m, k]);
        let y3 = self.reshape(y, &[rows, m, 1]);
        let out3 = self.concat(&[y3, f3], 2);
        self.reshape(out3, &[rows, m * (k + 1)])
    }

    /// Reinterprets patch-major rows `[B·OH·OW, C]` (the output of a dense
    /// layer applied to im2col patches) as a `[B, C, OH, OW]` feature map.
    fn rows_to_nchw(&mut self, v: Var, b: usize, oh: usize, ow: usize, c: usize) -> Var {
        let r = self.reshape(v, &[b, oh, ow, c]);
        self.permute(r, &[0, 3, 1, 2])
    }
}

impl Exec for Graph {
    fn leaf(&mut self, t: Tensor) -> Var {
        Graph::leaf(self, t)
    }
    fn param(&mut self, p: &Parameter) -> Var {
        Graph::param(self, p)
    }
    fn value(&self, v: Var) -> &Tensor {
        Graph::value(self, v)
    }
    fn is_training(&self) -> bool {
        Graph::is_training(self)
    }
    fn add(&mut self, a: Var, b: Var) -> Var {
        Graph::add(self, a, b)
    }
    fn sub(&mut self, a: Var, b: Var) -> Var {
        Graph::sub(self, a, b)
    }
    fn mul(&mut self, a: Var, b: Var) -> Var {
        Graph::mul(self, a, b)
    }
    fn scale(&mut self, a: Var, s: f32) -> Var {
        Graph::scale(self, a, s)
    }
    fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        Graph::add_scalar(self, a, s)
    }
    fn neg(&mut self, a: Var) -> Var {
        Graph::neg(self, a)
    }
    fn square(&mut self, a: Var) -> Var {
        Graph::square(self, a)
    }
    fn powi(&mut self, a: Var, p: i32) -> Var {
        Graph::powi(self, a, p)
    }
    fn relu(&mut self, a: Var) -> Var {
        Graph::relu(self, a)
    }
    fn tanh(&mut self, a: Var) -> Var {
        Graph::tanh(self, a)
    }
    fn sigmoid(&mut self, a: Var) -> Var {
        Graph::sigmoid(self, a)
    }
    fn add_bcast(&mut self, a: Var, b: Var) -> Var {
        Graph::add_bcast(self, a, b)
    }
    fn mul_bcast(&mut self, a: Var, b: Var) -> Var {
        Graph::mul_bcast(self, a, b)
    }
    fn add_channel(&mut self, a: Var, bias: Var) -> Var {
        Graph::add_channel(self, a, bias)
    }
    fn mul_channel(&mut self, a: Var, scale: Var) -> Var {
        Graph::mul_channel(self, a, scale)
    }
    fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        Graph::reshape(self, a, dims)
    }
    fn permute(&mut self, a: Var, axes: &[usize]) -> Var {
        Graph::permute(self, a, axes)
    }
    fn concat(&mut self, parts: &[Var], axis: usize) -> Var {
        Graph::concat(self, parts, axis)
    }
    fn slice_axis(&mut self, a: Var, axis: usize, start: usize, end: usize) -> Var {
        Graph::slice_axis(self, a, axis, start, end)
    }
    fn sum_all(&mut self, a: Var) -> Var {
        Graph::sum_all(self, a)
    }
    fn mean_all(&mut self, a: Var) -> Var {
        Graph::mean_all(self, a)
    }
    fn sum_axis(&mut self, a: Var, axis: usize) -> Var {
        Graph::sum_axis(self, a, axis)
    }
    fn mean_axis(&mut self, a: Var, axis: usize) -> Var {
        Graph::mean_axis(self, a, axis)
    }
    fn matmul(&mut self, a: Var, b: Var) -> Var {
        Graph::matmul(self, a, b)
    }
    fn matmul_transb(&mut self, a: Var, b: Var) -> Var {
        Graph::matmul_transb(self, a, b)
    }
    fn bmm(&mut self, a: Var, b: Var) -> Var {
        Graph::bmm(self, a, b)
    }
    fn im2col(&mut self, x: Var, spec: Conv2dSpec) -> Var {
        Graph::im2col(self, x, spec)
    }
    fn conv2d(&mut self, x: Var, weight: Var, spec: Conv2dSpec) -> Var {
        Graph::conv2d(self, x, weight, spec)
    }
    fn max_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var {
        Graph::max_pool2d(self, x, spec)
    }
    fn avg_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var {
        Graph::avg_pool2d(self, x, spec)
    }
    fn global_avg_pool(&mut self, x: Var) -> Var {
        Graph::global_avg_pool(self, x)
    }
    fn softmax_last(&mut self, x: Var) -> Var {
        Graph::softmax_last(self, x)
    }
    fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        Graph::layer_norm(self, x, gamma, beta, eps)
    }
    fn batch_norm2d(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> (Var, Option<(Tensor, Tensor)>) {
        Graph::batch_norm2d(self, x, gamma, beta, running_mean, running_var, eps)
    }
    fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var {
        Graph::embedding(self, weight, ids)
    }
    fn dropout(&mut self, x: Var, p: f32) -> Var {
        Graph::dropout(self, x, p)
    }
}

/// Tape-free eager execution arena for inference.
///
/// Holds only the computed activation tensors — no gradients, parents or
/// backward closures — so a forward pass allocates a fraction of what the
/// tape does. [`EagerExec::reset`] clears the arena while keeping its
/// capacity, letting a serving loop (see `InferenceSession` in `qn-models`)
/// reuse the same context across requests.
///
/// Parameter snapshots are **recycled** across resets: `param` moves a
/// weight tensor out of an internal cache instead of cloning the parameter
/// storage, and `reset` moves it back — so steady-state serving copies no
/// weights at all. The cache is keyed by parameter storage identity
/// (holding the [`Parameter`] handle, so identity cannot be recycled) and
/// invalidated by [`Parameter::version`], so a weight update between
/// requests triggers exactly one fresh snapshot.
///
/// Always in inference mode: dropout is the identity and batch norm uses
/// running statistics.
#[derive(Default)]
pub struct EagerExec {
    values: Vec<Tensor>,
    /// `(parameter handle, version, snapshot)` of parameters not currently
    /// in the arena. Holding the handle keeps the storage alive, so
    /// identity can never be recycled to a different parameter (no
    /// pointer-reuse aliasing). Linear scan: models hold tens of
    /// parameters, not thousands.
    param_cache: Vec<(Parameter, u64, Tensor)>,
    /// `(arena slot, parameter handle, version)` of parameters pushed
    /// since the last reset, so their snapshots can be reclaimed.
    param_slots: Vec<(usize, Parameter, u64)>,
}

impl EagerExec {
    /// Creates an empty arena.
    pub fn new() -> Self {
        EagerExec::default()
    }

    /// Clears all values while retaining the arena's capacity; parameter
    /// snapshots move back into the recycle cache.
    pub fn reset(&mut self) {
        for (slot, param, version) in self.param_slots.drain(..) {
            let t = std::mem::replace(&mut self.values[slot], Tensor::zeros(&[1]));
            self.param_cache.push((param, version, t));
        }
        self.values.clear();
    }

    /// Number of values held.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the arena holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Removes the value of `v` from the arena, transferring ownership to
    /// the caller (the slot is replaced by an empty placeholder). Used by
    /// serving code to extract the output without a final copy.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this arena.
    pub fn take(&mut self, v: Var) -> Tensor {
        // if the caller extracts a parameter leaf, it must not be recycled
        self.param_slots.retain(|(slot, _, _)| *slot != v.id);
        std::mem::replace(&mut self.values[v.id], Tensor::zeros(&[1]))
    }

    fn push(&mut self, value: Tensor) -> Var {
        let id = self.values.len();
        self.values.push(value);
        Var { id }
    }
}

impl Exec for EagerExec {
    fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t)
    }

    fn param(&mut self, p: &Parameter) -> Var {
        let version = p.version();
        let snapshot = match self
            .param_cache
            .iter()
            .position(|(cp, v, _)| cp.same_storage(p) && *v == version)
        {
            Some(i) => self.param_cache.swap_remove(i).2,
            None => {
                // drop only *stale* snapshots of this parameter; same-version
                // copies stay cached (weight sharing uses several per pass)
                self.param_cache
                    .retain(|(cp, v, _)| !cp.same_storage(p) || *v == version);
                p.value()
            }
        };
        let var = self.push(snapshot);
        self.param_slots.push((var.id, p.clone(), version));
        var
    }

    fn value(&self, v: Var) -> &Tensor {
        &self.values[v.id]
    }

    fn is_training(&self) -> bool {
        false
    }

    fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v)
    }

    fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v)
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v)
    }

    fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(v)
    }

    fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).add_scalar(s);
        self.push(v)
    }

    fn square(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x * x);
        self.push(v)
    }

    fn powi(&mut self, a: Var, p: i32) -> Var {
        assert!(p >= 1, "powi requires p >= 1, got {p}");
        let v = self.value(a).map(|x| x.powi(p));
        self.push(v)
    }

    fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v)
    }

    fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.tanh());
        self.push(v)
    }

    fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v)
    }

    fn add_bcast(&mut self, a: Var, b: Var) -> Var {
        let v = add_bcast_forward(self.value(a), self.value(b));
        self.push(v)
    }

    fn mul_bcast(&mut self, a: Var, b: Var) -> Var {
        let v = mul_bcast_forward(self.value(a), self.value(b));
        self.push(v)
    }

    fn add_channel(&mut self, a: Var, bias: Var) -> Var {
        let v = self.value(a).add_channel(self.value(bias));
        self.push(v)
    }

    fn mul_channel(&mut self, a: Var, scale: Var) -> Var {
        let v = self.value(a).mul_channel(self.value(scale));
        self.push(v)
    }

    fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        if self.value(a).shape().dims() == dims {
            // shape is unchanged: reuse the node, no copy
            return a;
        }
        let v = self
            .value(a)
            .reshape(dims)
            .unwrap_or_else(|e| panic!("reshape: {e}"));
        self.push(v)
    }

    fn permute(&mut self, a: Var, axes: &[usize]) -> Var {
        let v = self.value(a).permute(axes);
        self.push(v)
    }

    fn concat(&mut self, parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero vars");
        let refs: Vec<&Tensor> = parts.iter().map(|v| self.value(*v)).collect();
        let v = Tensor::concat(&refs, axis);
        self.push(v)
    }

    fn slice_axis(&mut self, a: Var, axis: usize, start: usize, end: usize) -> Var {
        let v = self.value(a).slice_axis(axis, start, end);
        self.push(v)
    }

    fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::from_vec(vec![self.value(a).sum()], &[1]).expect("scalar");
        self.push(v)
    }

    fn sum_axis(&mut self, a: Var, axis: usize) -> Var {
        let v = self.value(a).sum_axis(axis);
        self.push(v)
    }

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v)
    }

    fn matmul_transb(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul_transb(self.value(b));
        self.push(v)
    }

    fn bmm(&mut self, a: Var, b: Var) -> Var {
        let v = crate::matops::bmm_forward(self.value(a), self.value(b));
        self.push(v)
    }

    fn im2col(&mut self, x: Var, spec: Conv2dSpec) -> Var {
        let v = im2col(self.value(x), spec);
        self.push(v)
    }

    fn conv2d(&mut self, x: Var, weight: Var, spec: Conv2dSpec) -> Var {
        // Fused lowering through the shared GEMM core: per sample, the
        // output plane block `[OC, OH·OW]` is `W [OC, n] @ colsᵀ [n, OH·OW]`
        // with the im2col transpose as a zero-copy stride swap — the same
        // arithmetic as the taped im2col → matmul_transb → reshape → permute
        // pipeline (bit-identical), minus two full-tensor copies.
        let (b, c, h, w) = self.value(x).dims4();
        let (oc, wc, kh, kw) = self.value(weight).dims4();
        assert_eq!(c, wc, "conv2d channel mismatch: input {c}, weight {wc}");
        assert_eq!(kh, spec.kernel, "conv2d kernel mismatch");
        assert_eq!(kw, spec.kernel, "conv2d kernel mismatch");
        let (oh, ow) = spec.output_hw(h, w);
        let cols = im2col(self.value(x), spec); // [B*OH*OW, n]
        let n = c * kh * kw;
        let hw = oh * ow;
        let mut out = Tensor::zeros(&[b, oc, oh, ow]);
        {
            let wdata = self.value(weight).data(); // [OC, n] row-major
            let cdata = cols.data();
            gemm_batched(
                out.data_mut(),
                b,
                oc,
                hw,
                n,
                |_| MatRef::new(wdata, oc, n),
                |bi| MatRef::new(&cdata[bi * hw * n..(bi + 1) * hw * n], hw, n).transpose(),
            );
        }
        self.push(out)
    }

    fn max_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var {
        let (v, _argmax) = max_pool2d(self.value(x), spec);
        self.push(v)
    }

    fn avg_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var {
        let v = avg_pool2d(self.value(x), spec);
        self.push(v)
    }

    fn global_avg_pool(&mut self, x: Var) -> Var {
        let (b, c, h, w) = self.value(x).dims4();
        assert_eq!(h, w, "global_avg_pool expects square feature maps");
        // single pass, same summation order as avg_pool2d over a full window
        let norm = 1.0 / (h * w) as f32;
        let data = self.value(x).data();
        let mut out = Tensor::zeros(&[b, c]);
        qn_parallel::par_chunks_mut_min(out.data_mut(), c.max(1), PAR_MIN_ELEMS, |bi, orow| {
            for (ci, o) in orow.iter_mut().enumerate() {
                let base = (bi * c + ci) * h * w;
                let mut acc = 0.0f32;
                for &v in &data[base..base + h * w] {
                    acc += v;
                }
                *o = acc * norm;
            }
        });
        self.push(out)
    }

    fn softmax_last(&mut self, x: Var) -> Var {
        let v = softmax_last(self.value(x));
        self.push(v)
    }

    fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        // shared forward kernel, with no x̂ / 1/σ capture (nothing to
        // backprop)
        let out = layer_norm_forward(
            self.value(x),
            self.value(gamma),
            self.value(beta),
            eps,
            None,
        );
        self.push(out)
    }

    fn batch_norm2d(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> (Var, Option<(Tensor, Tensor)>) {
        // Inference-only: normalize with running statistics through the
        // shared kernel, without materializing x̂ or batch moments.
        let xv = self.value(x);
        let gv = self.value(gamma);
        let bv = self.value(beta);
        let c = xv.dims4().1;
        assert_eq!(gv.numel(), c, "gamma width {} != {c}", gv.numel());
        assert_eq!(bv.numel(), c, "beta width {} != {c}", bv.numel());
        let inv_std: Vec<f32> = running_var
            .data()
            .iter()
            .map(|&v| 1.0 / (v + eps).sqrt())
            .collect();
        let out = batch_norm_apply(xv, gv, bv, running_mean.data(), &inv_std, None);
        (self.push(out), None)
    }

    fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var {
        let wv = self.value(weight);
        let (v, _d) = wv.dims2();
        for &id in ids {
            assert!(id < v, "token id {id} out of range for vocab {v}");
        }
        let out = wv.select_rows(ids);
        self.push(out)
    }

    fn dropout(&mut self, x: Var, p: f32) -> Var {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0, 1), got {p}"
        );
        // inference mode: identity (no new node needed)
        x
    }

    fn weighted_square_sum(&mut self, f: Var, lambda: Var, neurons: usize, k: usize) -> Var {
        // single pass over f: same per-term expression and summation order as
        // the default square → mul_bcast → sum_axis decomposition
        let fv = self.value(f);
        let lv = self.value(lambda);
        let (rows, mk) = fv.dims2();
        assert_eq!(mk, neurons * k, "feature width {mk} != {neurons}·{k}");
        assert_eq!(lv.numel(), neurons * k, "lambda size mismatch");
        let mut out = Tensor::zeros(&[rows, neurons]);
        {
            let fd = fv.data();
            let ld = lv.data();
            qn_parallel::par_chunks_mut_min(
                out.data_mut(),
                neurons.max(1),
                PAR_MIN_ELEMS,
                |r, orow| {
                    for (j, o) in orow.iter_mut().enumerate() {
                        let base = r * mk + j * k;
                        let mut acc = 0.0f32;
                        for i in 0..k {
                            let x = fd[base + i];
                            acc += x * x * ld[j * k + i];
                        }
                        *o = acc;
                    }
                },
            );
        }
        self.push(out)
    }

    fn interleave_last(&mut self, y: Var, f: Var, k: usize) -> Var {
        let yv = self.value(y);
        let fv = self.value(f);
        let (rows, m) = yv.dims2();
        assert_eq!(fv.numel(), rows * m * k, "feature size mismatch");
        let mut out = Tensor::zeros(&[rows, m * (k + 1)]);
        {
            let yd = yv.data();
            let fd = fv.data();
            qn_parallel::par_chunks_mut_min(
                out.data_mut(),
                (m * (k + 1)).max(1),
                PAR_MIN_ELEMS,
                |r, orow| {
                    for j in 0..m {
                        let dst = j * (k + 1);
                        orow[dst] = yd[r * m + j];
                        orow[dst + 1..dst + 1 + k]
                            .copy_from_slice(&fd[r * m * k + j * k..r * m * k + (j + 1) * k]);
                    }
                },
            );
        }
        self.push(out)
    }

    fn rows_to_nchw(&mut self, v: Var, b: usize, oh: usize, ow: usize, c: usize) -> Var {
        let vv = self.value(v);
        assert_eq!(vv.numel(), b * oh * ow * c, "rows_to_nchw size mismatch");
        let mut out = Tensor::zeros(&[b, c, oh, ow]);
        let hw = oh * ow;
        {
            let vd = vv.data();
            qn_parallel::par_chunks_mut_min(
                out.data_mut(),
                (c * hw).max(1),
                PAR_MIN_ELEMS,
                |bi, oslab| {
                    for pos in 0..hw {
                        let row = &vd[(bi * hw + pos) * c..(bi * hw + pos + 1) * c];
                        for (ci, &x) in row.iter().enumerate() {
                            oslab[ci * hw + pos] = x;
                        }
                    }
                },
            );
        }
        self.push(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_tensor::Rng;

    /// Runs `f` on both contexts and asserts identical outputs.
    fn both(f: impl Fn(&mut dyn Exec) -> Var) -> (Tensor, Tensor) {
        let mut g = Graph::new();
        let tv = f(&mut g);
        let mut e = EagerExec::new();
        let ev = f(&mut e);
        (g.value(tv).clone(), e.value(ev).clone())
    }

    #[test]
    fn elementwise_ops_match_tape() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[3, 4], &mut rng);
        for op in [
            |cx: &mut dyn Exec, v: Var| cx.relu(v),
            |cx: &mut dyn Exec, v: Var| cx.tanh(v),
            |cx: &mut dyn Exec, v: Var| cx.sigmoid(v),
            |cx: &mut dyn Exec, v: Var| cx.square(v),
            |cx: &mut dyn Exec, v: Var| cx.powi(v, 3),
            |cx: &mut dyn Exec, v: Var| cx.scale(v, -2.5),
            |cx: &mut dyn Exec, v: Var| cx.add_scalar(v, 0.7),
            |cx: &mut dyn Exec, v: Var| cx.neg(v),
        ] {
            let (t, e) = both(|cx| {
                let v = cx.leaf(x.clone());
                op(cx, v)
            });
            assert!(t.allclose(&e, 0.0));
        }
    }

    #[test]
    fn conv2d_matches_tape_exactly() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let w = Tensor::randn(&[5, 3, 3, 3], &mut rng);
        for spec in [Conv2dSpec::new(3, 1, 1), Conv2dSpec::new(3, 2, 0)] {
            let (t, e) = both(|cx| {
                let xv = cx.leaf(x.clone());
                let wv = cx.leaf(w.clone());
                cx.conv2d(xv, wv, spec)
            });
            assert_eq!(t.shape().dims(), e.shape().dims());
            assert!(t.allclose(&e, 0.0), "fused conv must be bitwise equal");
        }
    }

    #[test]
    fn norms_and_softmax_match_tape() {
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn(&[2, 4, 8], &mut rng).scale(3.0);
        let gamma = Tensor::rand_uniform(&[8], 0.5, 1.5, &mut rng);
        let beta = Tensor::randn(&[8], &mut rng);
        let (t, e) = both(|cx| {
            let xv = cx.leaf(x.clone());
            let gv = cx.leaf(gamma.clone());
            let bv = cx.leaf(beta.clone());
            cx.layer_norm(xv, gv, bv, 1e-5)
        });
        assert!(t.allclose(&e, 0.0));
        let (t, e) = both(|cx| {
            let xv = cx.leaf(x.clone());
            cx.softmax_last(xv)
        });
        assert!(t.allclose(&e, 0.0));
    }

    #[test]
    fn batch_norm_inference_matches_tape() {
        let mut rng = Rng::seed_from(4);
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        let gamma = Tensor::rand_uniform(&[3], 0.5, 1.5, &mut rng);
        let beta = Tensor::randn(&[3], &mut rng);
        let rm = Tensor::randn(&[3], &mut rng);
        let rv = Tensor::rand_uniform(&[3], 0.5, 2.0, &mut rng);
        let (t, e) = both(|cx| {
            let xv = cx.leaf(x.clone());
            let gv = cx.leaf(gamma.clone());
            let bv = cx.leaf(beta.clone());
            let (y, stats) = cx.batch_norm2d(xv, gv, bv, &rm, &rv, 1e-5);
            assert!(stats.is_none());
            y
        });
        assert!(t.allclose(&e, 0.0));
    }

    #[test]
    fn pooling_and_shape_ops_match_tape() {
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        for op in [
            |cx: &mut dyn Exec, v: Var| cx.max_pool2d(v, PoolSpec::new(2, 2)),
            |cx: &mut dyn Exec, v: Var| cx.avg_pool2d(v, PoolSpec::new(3, 3)),
            |cx: &mut dyn Exec, v: Var| cx.global_avg_pool(v),
            |cx: &mut dyn Exec, v: Var| cx.reshape(v, &[6, 36]),
            |cx: &mut dyn Exec, v: Var| cx.permute(v, &[0, 2, 3, 1]),
            |cx: &mut dyn Exec, v: Var| cx.slice_axis(v, 1, 1, 3),
            |cx: &mut dyn Exec, v: Var| cx.im2col(v, Conv2dSpec::new(3, 1, 1)),
            |cx: &mut dyn Exec, v: Var| cx.sum_axis(v, 2),
            |cx: &mut dyn Exec, v: Var| cx.mean_axis(v, 1),
            |cx: &mut dyn Exec, v: Var| cx.sum_all(v),
            |cx: &mut dyn Exec, v: Var| cx.mean_all(v),
        ] {
            let (t, e) = both(|cx| {
                let v = cx.leaf(x.clone());
                op(cx, v)
            });
            assert!(t.allclose(&e, 0.0));
        }
    }

    #[test]
    fn matmuls_and_bcast_match_tape() {
        let mut rng = Rng::seed_from(6);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 5], &mut rng);
        let bt = Tensor::randn(&[5, 4], &mut rng);
        let bias = Tensor::randn(&[4], &mut rng);
        let (t, e) = both(|cx| {
            let av = cx.leaf(a.clone());
            let bv = cx.leaf(b.clone());
            cx.matmul(av, bv)
        });
        assert!(t.allclose(&e, 0.0));
        let (t, e) = both(|cx| {
            let av = cx.leaf(a.clone());
            let bv = cx.leaf(bt.clone());
            cx.matmul_transb(av, bv)
        });
        assert!(t.allclose(&e, 0.0));
        type BcastOp = fn(&mut dyn Exec, Var, Var) -> Var;
        let bcast_ops: [BcastOp; 2] =
            [|cx, a, b| cx.add_bcast(a, b), |cx, a, b| cx.mul_bcast(a, b)];
        for op in bcast_ops {
            let (t, e) = both(|cx| {
                let av = cx.leaf(a.clone());
                let bv = cx.leaf(bias.clone());
                op(cx, av, bv)
            });
            assert!(t.allclose(&e, 0.0));
        }
        let a3 = Tensor::randn(&[2, 3, 4], &mut rng);
        let b3 = Tensor::randn(&[2, 4, 2], &mut rng);
        let (t, e) = both(|cx| {
            let av = cx.leaf(a3.clone());
            let bv = cx.leaf(b3.clone());
            cx.bmm(av, bv)
        });
        assert!(t.allclose(&e, 0.0));
    }

    #[test]
    fn eager_dropout_and_embedding() {
        let mut rng = Rng::seed_from(7);
        let mut e = EagerExec::new();
        let x = e.leaf(Tensor::randn(&[2, 2], &mut rng));
        let y = e.dropout(x, 0.5);
        assert_eq!(x, y, "eager dropout is the identity");
        let w = e.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let emb = e.embedding(w, &[1, 0]);
        assert_eq!(e.value(emb).data(), &[3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn reset_retains_capacity_and_take_moves() {
        let mut e = EagerExec::new();
        let v = e.leaf(Tensor::ones(&[4]));
        let w = e.relu(v);
        assert_eq!(e.len(), 2);
        let out = e.take(w);
        assert_eq!(out.data(), &[1.0, 1.0, 1.0, 1.0]);
        e.reset();
        assert!(e.is_empty());
        // arena is reusable after reset
        let v2 = e.leaf(Tensor::zeros(&[2]));
        assert_eq!(v2.id, 0);
    }

    #[test]
    fn eager_param_is_not_bound() {
        let p = Parameter::new(Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let mut e = EagerExec::new();
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[2.0]);
        assert!(!e.is_training());
    }

    #[test]
    fn eager_param_snapshots_recycle_and_invalidate() {
        let p = Parameter::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let mut e = EagerExec::new();
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[1.0, 2.0]);
        // recycled across reset: same value, no stale data
        e.reset();
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[1.0, 2.0]);
        // a weight update invalidates the cached snapshot
        e.reset();
        p.update(|value, _| value.map_inplace(|x| x + 10.0));
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[11.0, 12.0]);
        // weight sharing: the same parameter twice in one pass
        e.reset();
        let a = e.param(&p);
        let b = e.param(&p);
        assert_eq!(e.value(a).data(), &[11.0, 12.0]);
        assert_eq!(e.value(b).data(), &[11.0, 12.0]);
        e.reset();
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[11.0, 12.0]);
        // taking a param leaf out of the arena must not poison the cache
        let t = e.take(v);
        assert_eq!(t.data(), &[11.0, 12.0]);
        e.reset();
        let v = e.param(&p);
        assert_eq!(e.value(v).data(), &[11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "token id 9 out of range")]
    fn eager_embedding_bounds_checked() {
        let mut e = EagerExec::new();
        let w = e.leaf(Tensor::zeros(&[3, 2]));
        e.embedding(w, &[9]);
    }
}
