//! Matrix and batched-matrix products.
//!
//! Everything here routes through the shared `qn-tensor` [`gemm`] core: the
//! batch dimension of `bmm` is a loop of zero-copy [`MatRef`] subslices, and
//! the backward passes pass stride-transposed views instead of materializing
//! (or hand-rolling) transposed kernels. That gives all of them the core's
//! guarantees for free — bit-identical results at any thread count and the
//! finiteness-guarded zero-coefficient skip (`0 × NaN` propagates).

use crate::graph::{Graph, Var};
use qn_tensor::{gemm_batched, MatRef, Tensor};

impl Graph {
    /// Matrix product `a @ b` of `[M, K] × [K, N]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or inner-dimension mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = av.matmul(&bv);
        self.push_ephemeral(
            value,
            vec![a.id, b.id],
            Some(Box::new(move |g: Tensor| {
                // dA = g @ Bᵀ ; dB = Aᵀ @ g
                vec![g.matmul_transb(&bv), av.matmul_transa(&g)]
            })),
        )
    }

    /// Matrix product `a @ bᵀ` of `[M, K] × [N, K]ᵀ` — used when weights are
    /// stored row-major as `[out, in]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or trailing-dimension mismatch.
    pub fn matmul_transb(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = av.matmul_transb(&bv);
        self.push_ephemeral(
            value,
            vec![a.id, b.id],
            Some(Box::new(move |g: Tensor| {
                // y = a bᵀ : dA = g @ B ; dB = gᵀ @ A
                vec![g.matmul(&bv), g.matmul_transa(&av)]
            })),
        )
    }

    /// Batched matrix product of `[N, M, K] × [N, K, P]` (attention scores
    /// and context aggregation).
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = bmm_forward(&av, &bv);
        self.push_ephemeral(
            value,
            vec![a.id, b.id],
            Some(Box::new(move |g: Tensor| {
                vec![bmm_transb(&g, &bv), bmm_transa(&av, &g)]
            })),
        )
    }
}

/// Validated `(N, M, K, P)` dims of a `[N, M, K] × [N, K, P]` batched
/// product — shared by the taped and eager paths.
pub(crate) fn bmm_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(a.ndim(), 3, "bmm lhs must be 3-D");
    assert_eq!(b.ndim(), 3, "bmm rhs must be 3-D");
    let (n, m, k) = (a.shape().dim(0), a.shape().dim(1), a.shape().dim(2));
    let (n2, k2, p) = (b.shape().dim(0), b.shape().dim(1), b.shape().dim(2));
    assert_eq!(n, n2, "bmm batch dims differ: {n} vs {n2}");
    assert_eq!(k, k2, "bmm inner dims differ: {k} vs {k2}");
    (n, m, k, p)
}

/// `[N, M, K] × [N, K, P] -> [N, M, P]` through the shared GEMM core: one
/// zero-copy `MatRef` subslice pair per batch element. Bit-identical at any
/// thread count; the finiteness-guarded zero-coefficient skip (dropped
/// outright in PR 3) is back via the core's packing step.
pub(crate) fn bmm_forward(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, m, _k, p) = bmm_dims(a, b);
    let mut out = vec![0.0f32; n * m * p];
    bmm_forward_into(&mut out, a, b);
    Tensor::from_vec(out, &[n, m, p]).expect("bmm shape consistent")
}

/// [`bmm_forward`] into a caller-provided (slot-recycled) buffer of
/// `N·M·P` elements; fully overwritten, bit-identical to the allocating
/// version.
pub(crate) fn bmm_forward_into(dst: &mut [f32], a: &Tensor, b: &Tensor) {
    let (n, m, k, p) = bmm_dims(a, b);
    let (ad, bd) = (a.data(), b.data());
    gemm_batched(
        dst,
        n,
        m,
        p,
        k,
        |ni| MatRef::new(&ad[ni * m * k..(ni + 1) * m * k], m, k),
        |ni| MatRef::new(&bd[ni * k * p..(ni + 1) * k * p], k, p),
    );
}

/// `g [N, M, P] × bᵀ [N, P, K]` per batch: returns `[N, M, K]`. The
/// per-batch transpose of `b` is a stride swap, not a copy.
fn bmm_transb(g: &Tensor, b: &Tensor) -> Tensor {
    let (n, k, p) = (b.shape().dim(0), b.shape().dim(1), b.shape().dim(2));
    let m = g.shape().dim(1);
    let mut out = vec![0.0f32; n * m * k];
    let (gd, bd) = (g.data(), b.data());
    gemm_batched(
        &mut out,
        n,
        m,
        k,
        p,
        |ni| MatRef::new(&gd[ni * m * p..(ni + 1) * m * p], m, p),
        |ni| MatRef::new(&bd[ni * k * p..(ni + 1) * k * p], k, p).transpose(),
    );
    Tensor::from_vec(out, &[n, m, k]).expect("bmm shape consistent")
}

/// `aᵀ [N, K, M] × g [N, M, P]` per batch: returns `[N, K, P]`. The
/// per-batch transpose of `a` is a stride swap, not a copy.
fn bmm_transa(a: &Tensor, g: &Tensor) -> Tensor {
    let (n, m, k) = (a.shape().dim(0), a.shape().dim(1), a.shape().dim(2));
    let p = g.shape().dim(2);
    let mut out = vec![0.0f32; n * k * p];
    let (ad, gd) = (a.data(), g.data());
    gemm_batched(
        &mut out,
        n,
        k,
        p,
        m,
        |ni| MatRef::new(&ad[ni * m * k..(ni + 1) * m * k], m, k).transpose(),
        |ni| MatRef::new(&gd[ni * m * p..(ni + 1) * m * p], m, p),
    );
    Tensor::from_vec(out, &[n, k, p]).expect("bmm shape consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use qn_tensor::Rng;

    #[test]
    fn matmul_forward_matches_tensor() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 5], &mut rng);
        let mut g = Graph::new();
        let av = g.leaf(a.clone());
        let bv = g.leaf(b.clone());
        let c = g.matmul(av, bv);
        assert!(g.value(c).allclose(&a.matmul(&b), 1e-5));
    }

    #[test]
    fn matmul_gradcheck_both_sides() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 2], &mut rng);
        let bc = b.clone();
        assert!(gradcheck(
            move |g, v| {
                let bv = g.leaf(bc.clone());
                let y = g.matmul(v, bv);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &a,
            1e-2,
            2e-2
        ));
        let ac = a.clone();
        assert!(gradcheck(
            move |g, v| {
                let av = g.leaf(ac.clone());
                let y = g.matmul(av, v);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &b,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn matmul_transb_equals_explicit_transpose() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let w = Tensor::randn(&[5, 4], &mut rng); // [out, in]
        let mut g = Graph::new();
        let av = g.leaf(a.clone());
        let wv = g.leaf(w.clone());
        let y = g.matmul_transb(av, wv);
        assert!(g.value(y).allclose(&a.matmul(&w.transpose2()), 1e-5));
    }

    #[test]
    fn matmul_transb_gradcheck() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(&[2, 3], &mut rng);
        let w = Tensor::randn(&[4, 3], &mut rng);
        let wc = w.clone();
        assert!(gradcheck(
            move |g, v| {
                let wv = g.leaf(wc.clone());
                let y = g.matmul_transb(v, wv);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &a,
            1e-2,
            2e-2
        ));
        let ac = a.clone();
        assert!(gradcheck(
            move |g, v| {
                let av = g.leaf(ac.clone());
                let y = g.matmul_transb(av, v);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &w,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(&[3, 2, 4], &mut rng);
        let b = Tensor::randn(&[3, 4, 5], &mut rng);
        let out = bmm_forward(&a, &b);
        for ni in 0..3 {
            let ai = a.slice_axis(0, ni, ni + 1).reshape(&[2, 4]).unwrap();
            let bi = b.slice_axis(0, ni, ni + 1).reshape(&[4, 5]).unwrap();
            let oi = out.slice_axis(0, ni, ni + 1).reshape(&[2, 5]).unwrap();
            assert!(oi.allclose(&ai.matmul(&bi), 1e-5));
        }
    }

    #[test]
    fn bmm_gradcheck() {
        let mut rng = Rng::seed_from(6);
        let a = Tensor::randn(&[2, 3, 4], &mut rng);
        let b = Tensor::randn(&[2, 4, 2], &mut rng);
        let bc = b.clone();
        assert!(gradcheck(
            move |g, v| {
                let bv = g.leaf(bc.clone());
                let y = g.bmm(v, bv);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &a,
            1e-2,
            2e-2
        ));
        let ac = a.clone();
        assert!(gradcheck(
            move |g, v| {
                let av = g.leaf(ac.clone());
                let y = g.bmm(av, v);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &b,
            1e-2,
            2e-2
        ));
    }

    #[test]
    #[should_panic(expected = "batch dims differ")]
    fn bmm_batch_mismatch_panics() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::zeros(&[2, 2, 2]));
        let b = g.leaf(Tensor::zeros(&[3, 2, 2]));
        g.bmm(a, b);
    }
}
