//! Finite-difference gradient checking used by every layer's tests.

use crate::graph::{Graph, Var};
use qn_tensor::Tensor;

/// Verifies the analytic gradient of `build` at `x` against central finite
/// differences.
///
/// `build` receives a fresh graph and the input leaf and must return a
/// **scalar** output var. Comparison is relative: for each coordinate,
/// `|analytic - numeric| <= tol * max(1, |analytic|, |numeric|)`.
///
/// `f32` arithmetic limits attainable precision; `eps` around `1e-2` and
/// `tol` around `2e-2` are appropriate.
pub fn gradcheck(build: impl Fn(&mut Graph, Var) -> Var, x: &Tensor, eps: f32, tol: f32) -> bool {
    let mut g = Graph::new();
    let v = g.leaf(x.clone());
    let out = build(&mut g, v);
    g.backward(out);
    let analytic = g.grad(v).expect("input must receive a gradient").clone();

    let eval = |t: &Tensor| -> f32 {
        let mut g = Graph::new();
        let v = g.leaf(t.clone());
        let out = build(&mut g, v);
        g.value(out).data()[0]
    };

    for i in 0..x.numel() {
        let mut plus = x.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x.clone();
        minus.data_mut()[i] -= eps;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        let a = analytic.data()[i];
        let denom = 1.0f32.max(a.abs()).max(numeric.abs());
        if (a - numeric).abs() > tol * denom {
            eprintln!(
                "gradcheck failed at flat index {i}: analytic {a}, numeric {numeric} (tol {tol})"
            );
            return false;
        }
    }
    true
}

/// Gradient check over several inputs at once: `build` receives leaves for
/// every tensor in `xs` and returns a scalar var. Checks each input.
pub fn gradcheck_multi(
    build: impl Fn(&mut Graph, &[Var]) -> Var,
    xs: &[Tensor],
    eps: f32,
    tol: f32,
) -> bool {
    for (which, x) in xs.iter().enumerate() {
        let others: Vec<Tensor> = xs.to_vec();
        let build_one = |g: &mut Graph, v: Var| {
            let vars: Vec<Var> = others
                .iter()
                .enumerate()
                .map(|(i, t)| if i == which { v } else { g.leaf(t.clone()) })
                .collect();
            build(g, &vars)
        };
        if !gradcheck(build_one, x, eps, tol) {
            eprintln!("gradcheck_multi failed for input {which}");
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_tensor::Rng;

    #[test]
    fn accepts_correct_gradient() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[3, 3], &mut rng);
        assert!(gradcheck(
            |g, v| {
                let sq = g.square(v);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn multi_checks_every_input() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn(&[2, 3], &mut rng);
        let b = Tensor::randn(&[3, 2], &mut rng);
        assert!(gradcheck_multi(
            |g, vars| {
                let y = g.matmul(vars[0], vars[1]);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &[a, b],
            1e-2,
            2e-2
        ));
    }
}
