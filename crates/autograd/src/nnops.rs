//! Fused neural-network ops: softmax, cross-entropy, normalization,
//! embedding and dropout.

use crate::graph::{Graph, Var};
use crate::PAR_MIN_ELEMS;
use qn_simd::KernelProfile;
use qn_tensor::Tensor;

/// Accumulates one row's label-smoothed cross-entropy into `loss`:
/// `loss -= w · y_j · ln(max(p_j, 1e-12))` with `y_j = on` at the target and
/// `off` elsewhere. The shared inner loop of [`Graph::softmax_cross_entropy`]
/// and [`Graph::softmax_cross_entropy_weighted`]; `w = 1` multiplies
/// bit-exactly, so the unweighted loss is unchanged by sharing. Zero-weight
/// rows contribute nothing (masked padding).
fn ce_row_loss(loss: &mut f32, row: &[f32], t: usize, on: f32, off: f32, w: f32) {
    if w == 0.0 {
        return;
    }
    for (j, &p) in row.iter().enumerate() {
        let y = if j == t { on } else { off };
        if y > 0.0 {
            *loss -= w * y * p.max(1e-12).ln();
        }
    }
}

/// Rewrites one probability row into its cross-entropy gradient
/// `(p_j - y_j) · scale · w`; zero-weight rows zero out (their loss term was
/// skipped). Shared by both loss backward closures — `w = 1` multiplies
/// bit-exactly, matching the unweighted form.
fn ce_row_grad(row: &mut [f32], t: usize, on: f32, off: f32, scale: f32, w: f32) {
    if w == 0.0 {
        row.fill(0.0);
        return;
    }
    for (j, v) in row.iter_mut().enumerate() {
        let y = if j == t { on } else { off };
        *v = (*v - y) * scale * w;
    }
}

impl Graph {
    /// Numerically-stable softmax over the **last** axis.
    pub fn softmax_last(&mut self, x: Var) -> Var {
        let value = softmax_last(self.value(x));
        let out = value.clone();
        let last = self.value(x).shape().dims().last().copied().unwrap_or(1);
        self.push_ephemeral(
            value,
            vec![x.id],
            Some(Box::new(move |mut g: Tensor| {
                // dx = p ⊙ (g - sum(g ⊙ p, last)), rewriting g in place:
                // each row's sum is taken before any of its elements are
                // overwritten, so the fold is identical to the two-tensor
                // form
                let pd = out.data();
                let gd = g.data_mut();
                // Under the `Fast` profile the per-row Σ g·p runs the vector
                // dot (FMA + reassociated partial sums, ULP-bounded); `Exact`
                // keeps the seed sequential fold.
                let fast = KernelProfile::active() == KernelProfile::Fast;
                for row in 0..pd.len() / last {
                    let base = row * last;
                    let s: f32 = if fast {
                        qn_simd::dot(&gd[base..base + last], &pd[base..base + last])
                    } else {
                        (0..last).map(|j| gd[base + j] * pd[base + j]).sum()
                    };
                    for j in 0..last {
                        gd[base + j] = pd[base + j] * (gd[base + j] - s);
                    }
                }
                vec![g]
            })),
        )
    }

    /// Fused softmax + cross-entropy loss over logits `[B, C]` with integer
    /// targets, optional label smoothing. Returns the mean loss as `[1]`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not 2-D, `targets.len() != B`, or any target is
    /// out of range.
    pub fn softmax_cross_entropy(
        &mut self,
        logits: Var,
        targets: &[usize],
        label_smoothing: f32,
    ) -> Var {
        let lv = self.value(logits).clone();
        let (b, c) = lv.dims2();
        assert_eq!(
            targets.len(),
            b,
            "target count {} != batch {b}",
            targets.len()
        );
        for &t in targets {
            assert!(t < c, "target {t} out of range for {c} classes");
        }
        let probs = softmax_last(&lv);
        let eps = label_smoothing;
        let off = eps / c as f32;
        let on = 1.0 - eps + off;
        let mut loss = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            ce_row_loss(
                &mut loss,
                &probs.data()[i * c..(i + 1) * c],
                t,
                on,
                off,
                1.0,
            );
        }
        loss /= b as f32;
        let targets = targets.to_vec();
        let value = Tensor::from_vec(vec![loss], &[1]).expect("scalar");
        self.push_ephemeral(
            value,
            vec![logits.id],
            Some(Box::new(move |g: Tensor| {
                let scale = g.data()[0] / b as f32;
                let mut dx = probs.clone();
                for (i, &t) in targets.iter().enumerate() {
                    ce_row_grad(
                        &mut dx.data_mut()[i * c..(i + 1) * c],
                        t,
                        on,
                        off,
                        scale,
                        1.0,
                    );
                }
                vec![dx]
            })),
        )
    }

    /// Per-position weighted softmax cross-entropy over logits `[B, C]`:
    /// the loss is `Σᵢ wᵢ·CE(logitsᵢ, targetᵢ) / Σᵢ wᵢ`. Zero weights mask
    /// padding positions in sequence models.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches, out-of-range targets, or if all weights
    /// are zero.
    pub fn softmax_cross_entropy_weighted(
        &mut self,
        logits: Var,
        targets: &[usize],
        weights: &[f32],
        label_smoothing: f32,
    ) -> Var {
        let lv = self.value(logits).clone();
        let (b, c) = lv.dims2();
        assert_eq!(
            targets.len(),
            b,
            "target count {} != batch {b}",
            targets.len()
        );
        assert_eq!(
            weights.len(),
            b,
            "weight count {} != batch {b}",
            weights.len()
        );
        // Loss normalizer: vector partial sums under `Fast` (ULP-bounded),
        // the seed sequential fold under `Exact`.
        let wsum: f32 = if KernelProfile::active() == KernelProfile::Fast {
            qn_simd::reduce_sum(weights)
        } else {
            weights.iter().sum()
        };
        assert!(wsum > 0.0, "all weights are zero");
        for &t in targets {
            assert!(t < c, "target {t} out of range for {c} classes");
        }
        let probs = softmax_last(&lv);
        let eps = label_smoothing;
        let off = eps / c as f32;
        let on = 1.0 - eps + off;
        let mut loss = 0.0f32;
        for (i, (&t, &wi)) in targets.iter().zip(weights.iter()).enumerate() {
            ce_row_loss(&mut loss, &probs.data()[i * c..(i + 1) * c], t, on, off, wi);
        }
        loss /= wsum;
        let targets = targets.to_vec();
        let weights = weights.to_vec();
        let value = Tensor::from_vec(vec![loss], &[1]).expect("scalar");
        self.push_ephemeral(
            value,
            vec![logits.id],
            Some(Box::new(move |g: Tensor| {
                let scale = g.data()[0] / wsum;
                let mut dx = probs.clone();
                for (i, (&t, &wi)) in targets.iter().zip(weights.iter()).enumerate() {
                    ce_row_grad(
                        &mut dx.data_mut()[i * c..(i + 1) * c],
                        t,
                        on,
                        off,
                        scale,
                        wi,
                    );
                }
                vec![dx]
            })),
        )
    }

    /// Layer normalization over the last axis with affine parameters
    /// `gamma`/`beta` of shape `[D]`.
    ///
    /// # Panics
    ///
    /// Panics if the trailing dim of `x` differs from `gamma`/`beta`.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xv = self.value(x).clone();
        let gv = self.value(gamma).clone();
        let bv = self.value(beta).clone();
        let d = *xv.shape().dims().last().expect("non-empty shape");
        assert_eq!(gv.numel(), d, "gamma width {} != {d}", gv.numel());
        assert_eq!(bv.numel(), d, "beta width {} != {d}", bv.numel());
        let rows = xv.numel() / d;
        let mut xhat = vec![0.0f32; xv.numel()];
        let mut inv_std = vec![0.0f32; rows];
        let out = layer_norm_forward(&xv, &gv, &bv, eps, Some((&mut xhat, &mut inv_std)));
        let xshape = xv.shape().dims().to_vec();
        self.push_ephemeral(
            out,
            vec![x.id, gamma.id, beta.id],
            Some(Box::new(move |g: Tensor| {
                let gd = g.data();
                let mut dgamma = vec![0.0f32; d];
                let mut dbeta = vec![0.0f32; d];
                let mut dx = vec![0.0f32; gd.len()];
                for (r, &istd) in inv_std.iter().enumerate() {
                    let base = r * d;
                    // accumulate affine grads
                    for j in 0..d {
                        dgamma[j] += gd[base + j] * xhat[base + j];
                        dbeta[j] += gd[base + j];
                    }
                    let mut sum_dxhat = 0.0f32;
                    let mut sum_dxhat_xhat = 0.0f32;
                    for j in 0..d {
                        let dxh = gd[base + j] * gv.data()[j];
                        sum_dxhat += dxh;
                        sum_dxhat_xhat += dxh * xhat[base + j];
                    }
                    for j in 0..d {
                        let dxh = gd[base + j] * gv.data()[j];
                        dx[base + j] = istd
                            * (dxh
                                - sum_dxhat / d as f32
                                - xhat[base + j] * sum_dxhat_xhat / d as f32);
                    }
                }
                vec![
                    Tensor::from_vec(dx, &xshape).expect("shape consistent"),
                    Tensor::from_vec(dgamma, &[d]).expect("width consistent"),
                    Tensor::from_vec(dbeta, &[d]).expect("width consistent"),
                ]
            })),
        )
    }

    /// Batch normalization over `[B, C, H, W]` with per-channel affine
    /// parameters. In training mode uses batch statistics and returns the
    /// batch mean/variance for the caller to fold into running statistics;
    /// in inference mode normalizes with the provided running statistics.
    ///
    /// # Panics
    ///
    /// Panics on rank or channel-width mismatch.
    pub fn batch_norm2d(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> (Var, Option<(Tensor, Tensor)>) {
        let xv = self.value(x).clone();
        let gv = self.value(gamma).clone();
        let bv = self.value(beta).clone();
        let (b, c, h, w) = xv.dims4();
        assert_eq!(gv.numel(), c, "gamma width {} != {c}", gv.numel());
        assert_eq!(bv.numel(), c, "beta width {} != {c}", bv.numel());
        let m = (b * h * w) as f32;
        let training = self.is_training();
        let (mean, var) = if training {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            let hw = h * w;
            // Training batch moments: per-plane reductions run the vector
            // kernels under `Fast` (reassociated partial sums, ULP-bounded);
            // `Exact` keeps the seed sequential folds.
            let fast = KernelProfile::active() == KernelProfile::Fast;
            for bi in 0..b {
                for (ci, mc) in mean.iter_mut().enumerate() {
                    let base = (bi * c + ci) * hw;
                    let plane = &xv.data()[base..base + hw];
                    *mc += if fast {
                        qn_simd::reduce_sum(plane)
                    } else {
                        plane.iter().sum::<f32>()
                    };
                }
            }
            for v in &mut mean {
                *v /= m;
            }
            let mut centered = if fast { vec![0.0f32; hw] } else { Vec::new() };
            for bi in 0..b {
                for ci in 0..c {
                    let base = (bi * c + ci) * hw;
                    let plane = &xv.data()[base..base + hw];
                    var[ci] += if fast {
                        // Σ (x − μ)² as a centered self-dot: one vector
                        // shift pass plus an FMA dot.
                        qn_simd::add_scalar_to(&mut centered, plane, -mean[ci]);
                        qn_simd::dot(&centered, &centered)
                    } else {
                        plane
                            .iter()
                            .map(|&x| (x - mean[ci]) * (x - mean[ci]))
                            .sum::<f32>()
                    };
                }
            }
            for v in &mut var {
                *v /= m;
            }
            (mean, var)
        } else {
            (running_mean.data().to_vec(), running_var.data().to_vec())
        };
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let hw = h * w;
        let mut xhat = vec![0.0f32; xv.numel()];
        let out = batch_norm_apply(&xv, &gv, &bv, &mean, &inv_std, Some(&mut xhat));
        let stats = if training {
            Some((
                Tensor::from_vec(mean.clone(), &[c]).expect("width consistent"),
                Tensor::from_vec(var.clone(), &[c]).expect("width consistent"),
            ))
        } else {
            None
        };
        let out_var = self.push_ephemeral(
            out,
            vec![x.id, gamma.id, beta.id],
            Some(Box::new(move |g: Tensor| {
                let gd = g.data();
                let mut dgamma = vec![0.0f32; c];
                let mut dbeta = vec![0.0f32; c];
                for bi in 0..b {
                    for ci in 0..c {
                        let base = (bi * c + ci) * hw;
                        for j in 0..hw {
                            dgamma[ci] += gd[base + j] * xhat[base + j];
                            dbeta[ci] += gd[base + j];
                        }
                    }
                }
                let mut dx = vec![0.0f32; gd.len()];
                if training {
                    for ci in 0..c {
                        let istd = inv_std[ci];
                        let gam = gv.data()[ci];
                        let sum_dxhat = dbeta[ci] * gam;
                        let sum_dxhat_xhat = dgamma[ci] * gam;
                        for bi in 0..b {
                            let base = (bi * c + ci) * hw;
                            for j in 0..hw {
                                let dxh = gd[base + j] * gam;
                                dx[base + j] = istd
                                    * (dxh - sum_dxhat / m - xhat[base + j] * sum_dxhat_xhat / m);
                            }
                        }
                    }
                } else {
                    for (ci, &istd) in inv_std.iter().enumerate() {
                        let gam = gv.data()[ci];
                        for bi in 0..b {
                            let base = (bi * c + ci) * hw;
                            for j in 0..hw {
                                dx[base + j] = gd[base + j] * gam * istd;
                            }
                        }
                    }
                }
                vec![
                    Tensor::from_vec(dx, &[b, c, h, w]).expect("shape consistent"),
                    Tensor::from_vec(dgamma, &[c]).expect("width consistent"),
                    Tensor::from_vec(dbeta, &[c]).expect("width consistent"),
                ]
            })),
        );
        (out_var, stats)
    }

    /// Embedding lookup: gathers rows of `weight` (`[V, D]`) by token id,
    /// returning `[ids.len(), D]`. The backward pass scatter-adds.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var {
        let wv = self.value(weight).clone();
        let (v, d) = wv.dims2();
        for &id in ids {
            assert!(id < v, "token id {id} out of range for vocab {v}");
        }
        let value = wv.select_rows(ids);
        let ids = ids.to_vec();
        self.push_ephemeral(
            value,
            vec![weight.id],
            Some(Box::new(move |g: Tensor| {
                let mut dw = Tensor::zeros(&[v, d]);
                for (row, &id) in ids.iter().enumerate() {
                    let src = &g.data()[row * d..(row + 1) * d];
                    let dst = &mut dw.data_mut()[id * d..(id + 1) * d];
                    for (o, &x) in dst.iter_mut().zip(src) {
                        *o += x;
                    }
                }
                vec![dw]
            })),
        )
    }

    /// Inverted dropout with keep-scale `1/(1-p)`; identity in inference
    /// mode.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn dropout(&mut self, x: Var, p: f32) -> Var {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0, 1), got {p}"
        );
        if !self.is_training() || p == 0.0 {
            return self.scale(x, 1.0);
        }
        let n = self.value(x).numel();
        let keep = 1.0 - p;
        let mask: Vec<f32> = (0..n)
            .map(|_| {
                if self.rng.chance(keep) {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::from_vec(mask, self.value(x).shape().dims()).expect("mask shape");
        let mv = mask.clone();
        let value = self.value(x).mul(&mask);
        self.push_ephemeral(
            value,
            vec![x.id],
            Some(Box::new(move |mut g: Tensor| {
                g.zip_inplace(&mv, |gi, m| gi * m);
                vec![g]
            })),
        )
    }
}

/// Forward layer normalization shared by the taped and eager execution
/// paths; when `capture` is provided, also records `x̂` and the per-row
/// `1/σ` for the backward pass.
///
/// # Panics
///
/// Panics if the trailing dim of `x` differs from `gamma`/`beta`.
pub(crate) fn layer_norm_forward(
    xv: &Tensor,
    gv: &Tensor,
    bv: &Tensor,
    eps: f32,
    mut capture: Option<(&mut [f32], &mut [f32])>,
) -> Tensor {
    let d = *xv.shape().dims().last().expect("non-empty shape");
    assert_eq!(gv.numel(), d, "gamma width {} != {d}", gv.numel());
    assert_eq!(bv.numel(), d, "beta width {} != {d}", bv.numel());
    let rows = xv.numel() / d;
    let mut out = xv.clone();
    if capture.is_none() {
        layer_norm_infer_into(out.data_mut(), xv, gv, bv, eps);
        return out;
    }
    let od = out.data_mut();
    for r in 0..rows {
        let base = r * d;
        let row = &xv.data()[base..base + d];
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + eps).sqrt();
        for j in 0..d {
            let xh = (row[j] - mean) * istd;
            if let Some((xhat, _)) = capture.as_mut() {
                xhat[base + j] = xh;
            }
            od[base + j] = xh * gv.data()[j] + bv.data()[j];
        }
        if let Some((_, inv_std)) = capture.as_mut() {
            inv_std[r] = istd;
        }
    }
    out
}

/// Per-channel batch-norm application `x̂ γ + β` with the given mean and
/// `1/σ`, shared by the taped and eager execution paths; records `x̂` when
/// `xhat` is provided (the backward pass needs it).
///
/// # Panics
///
/// Panics if `x` is not 4-D.
pub(crate) fn batch_norm_apply(
    xv: &Tensor,
    gv: &Tensor,
    bv: &Tensor,
    mean: &[f32],
    inv_std: &[f32],
    mut xhat: Option<&mut [f32]>,
) -> Tensor {
    let (b, c, h, w) = xv.dims4();
    let hw = h * w;
    let mut out = xv.clone();
    if xhat.is_none() {
        // Inference path: per-channel affine over disjoint planes, safe to
        // parallelize over batch × channel.
        batch_norm_infer_into(out.data_mut(), xv, gv, bv, mean, inv_std);
        return out;
    }
    let od = out.data_mut();
    for bi in 0..b {
        for ci in 0..c {
            let base = (bi * c + ci) * hw;
            for j in 0..hw {
                let xh = (xv.data()[base + j] - mean[ci]) * inv_std[ci];
                if let Some(x) = xhat.as_deref_mut() {
                    x[base + j] = xh;
                }
                od[base + j] = xh * gv.data()[ci] + bv.data()[ci];
            }
        }
    }
    out
}

/// Inference layer norm into a caller-provided (slot-recycled) buffer —
/// the parallel per-row kernel shared by [`layer_norm_forward`] and the
/// eager path. Fully overwrites `dst`; bit-identical to the allocating
/// version and to the sequential training sweep.
pub(crate) fn layer_norm_infer_into(
    dst: &mut [f32],
    xv: &Tensor,
    gv: &Tensor,
    bv: &Tensor,
    eps: f32,
) {
    let d = *xv.shape().dims().last().expect("non-empty shape");
    assert_eq!(gv.numel(), d, "gamma width {} != {d}", gv.numel());
    assert_eq!(bv.numel(), d, "beta width {} != {d}", bv.numel());
    assert_eq!(
        dst.len(),
        xv.numel(),
        "layer_norm_infer_into length mismatch"
    );
    // Inference path: rows are independent, so normalize them in
    // parallel (bit-identical to the sequential training sweep). Under the
    // `Fast` profile the row kernel vectorizes the mean/variance reductions
    // (reassociated, tolerance-bounded — see `qn_simd::layer_norm_row`).
    let fast = KernelProfile::active() == KernelProfile::Fast;
    qn_parallel::par_chunks_mut_min(dst, d.max(1), PAR_MIN_ELEMS, |r, orow| {
        let base = r * d;
        let row = &xv.data()[base..base + d];
        if fast {
            qn_simd::layer_norm_row(orow, row, gv.data(), bv.data(), eps);
            return;
        }
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + eps).sqrt();
        for (j, o) in orow.iter_mut().enumerate() {
            *o = (row[j] - mean) * istd * gv.data()[j] + bv.data()[j];
        }
    });
}

/// Inference batch norm into a caller-provided buffer: per-channel affine
/// `(x - mean[c]) · inv_std[c] · γ[c] + β[c]` parallel over disjoint
/// (batch, channel) planes. Fully overwrites `dst`; bit-identical to
/// [`batch_norm_apply`] without capture.
pub(crate) fn batch_norm_infer_into(
    dst: &mut [f32],
    xv: &Tensor,
    gv: &Tensor,
    bv: &Tensor,
    mean: &[f32],
    inv_std: &[f32],
) {
    let (_b, c, h, w) = xv.dims4();
    let hw = h * w;
    assert_eq!(
        dst.len(),
        xv.numel(),
        "batch_norm_infer_into length mismatch"
    );
    // The vector per-plane affine applies the same `(x − μ)·σ⁻¹·γ + β`
    // operation order lane-wise, so the `Fast` path is bit-identical here.
    let fast = KernelProfile::active() == KernelProfile::Fast;
    qn_parallel::par_chunks_mut_min(dst, hw.max(1), PAR_MIN_ELEMS, |plane, out_plane| {
        let ci = plane % c;
        let base = plane * hw;
        if fast {
            qn_simd::affine_channel_to(
                out_plane,
                &xv.data()[base..base + hw],
                mean[ci],
                inv_std[ci],
                gv.data()[ci],
                bv.data()[ci],
            );
            return;
        }
        for (j, o) in out_plane.iter_mut().enumerate() {
            *o = (xv.data()[base + j] - mean[ci]) * inv_std[ci] * gv.data()[ci] + bv.data()[ci];
        }
    });
}

/// Normalizes each `last`-wide row of `data` in place with the stable
/// softmax — the kernel under [`softmax_last`] and the eager path's
/// copy-then-normalize (bit-identical either way).
pub(crate) fn softmax_rows_inplace(data: &mut [f32], last: usize) {
    // Under the `Fast` profile each row runs the vector kernel: same stable
    // max-shift algorithm with a polynomial `exp` and reassociated sum
    // (≤ 32 ULP per probability — see `qn_simd::softmax_row_inplace`).
    let fast = KernelProfile::active() == KernelProfile::Fast;
    qn_parallel::par_chunks_mut_min(data, last.max(1), PAR_MIN_ELEMS, |_, row| {
        if fast {
            qn_simd::softmax_row_inplace(row);
            return;
        }
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    });
}

/// Stable softmax over the last axis (free function shared with the loss).
/// Rows normalize independently, so the sweep runs on the `qn-parallel`
/// pool for large inputs with bit-identical results at any thread count.
pub(crate) fn softmax_last(x: &Tensor) -> Tensor {
    let last = *x.shape().dims().last().expect("non-empty shape");
    let mut out = x.clone();
    softmax_rows_inplace(out.data_mut(), last);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use qn_tensor::Rng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[4, 7], &mut rng).scale(3.0);
        let p = softmax_last(&x);
        for r in 0..4 {
            let s: f32 = p.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.min() >= 0.0);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let shifted = x.add_scalar(100.0);
        assert!(softmax_last(&x).allclose(&softmax_last(&shifted), 1e-5));
    }

    #[test]
    fn softmax_gradcheck() {
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn(&[3, 5], &mut rng);
        assert!(gradcheck(
            |g, v| {
                let p = g.softmax_last(v);
                let sq = g.square(p);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn cross_entropy_known_value() {
        // two logits, uniform -> loss = ln 2
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[1, 2]));
        let l = g.softmax_cross_entropy(x, &[0], 0.0);
        assert!((g.value(l).data()[0] - std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let mut rng = Rng::seed_from(4);
        let x = Tensor::randn(&[4, 6], &mut rng);
        assert!(gradcheck(
            |g, v| g.softmax_cross_entropy(v, &[1, 0, 5, 3], 0.0),
            &x,
            1e-2,
            2e-2
        ));
        // with label smoothing
        assert!(gradcheck(
            |g, v| g.softmax_cross_entropy(v, &[1, 0, 5, 3], 0.1),
            &x,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn cross_entropy_decreases_with_confidence() {
        let mut g = Graph::new();
        let weak = g.leaf(Tensor::from_vec(vec![0.1, 0.0], &[1, 2]).unwrap());
        let strong = g.leaf(Tensor::from_vec(vec![5.0, 0.0], &[1, 2]).unwrap());
        let lw = g.softmax_cross_entropy(weak, &[0], 0.0);
        let ls = g.softmax_cross_entropy(strong, &[0], 0.0);
        assert!(g.value(ls).data()[0] < g.value(lw).data()[0]);
    }

    #[test]
    fn weighted_cross_entropy_masks_padding() {
        let mut rng = Rng::seed_from(11);
        let x = Tensor::randn(&[4, 5], &mut rng);
        // weights zero on rows 1 and 3: loss must equal the 2-row loss
        let mut g = Graph::new();
        let v = g.leaf(x.clone());
        let lw = g.softmax_cross_entropy_weighted(v, &[1, 0, 2, 3], &[1.0, 0.0, 1.0, 0.0], 0.0);
        let kept = Tensor::concat(&[&x.slice_axis(0, 0, 1), &x.slice_axis(0, 2, 3)], 0);
        let mut g2 = Graph::new();
        let v2 = g2.leaf(kept);
        let l2 = g2.softmax_cross_entropy(v2, &[1, 2], 0.0);
        assert!((g.value(lw).data()[0] - g2.value(l2).data()[0]).abs() < 1e-5);
    }

    #[test]
    fn weighted_cross_entropy_gradcheck() {
        let mut rng = Rng::seed_from(12);
        let x = Tensor::randn(&[3, 4], &mut rng);
        assert!(gradcheck(
            |g, v| g.softmax_cross_entropy_weighted(v, &[0, 2, 1], &[1.0, 0.0, 2.0], 0.1),
            &x,
            1e-2,
            2e-2
        ));
        // grad of masked row must be zero
        let mut g = Graph::new();
        let v = g.leaf(x.clone());
        let l = g.softmax_cross_entropy_weighted(v, &[0, 2, 1], &[1.0, 0.0, 2.0], 0.0);
        g.backward(l);
        let grad = g.grad(v).unwrap();
        for j in 0..4 {
            assert_eq!(grad.get(&[1, j]), 0.0);
        }
    }

    #[test]
    fn layer_norm_normalizes() {
        let mut rng = Rng::seed_from(5);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[3, 8], &mut rng).scale(4.0).add_scalar(2.0));
        let gamma = g.leaf(Tensor::ones(&[8]));
        let beta = g.leaf(Tensor::zeros(&[8]));
        let y = g.layer_norm(x, gamma, beta, 1e-5);
        let yv = g.value(y);
        for r in 0..3 {
            let row = &yv.data()[r * 8..(r + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layer_norm_gradcheck_all_inputs() {
        let mut rng = Rng::seed_from(6);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let gamma = Tensor::rand_uniform(&[5], 0.5, 1.5, &mut rng);
        let beta = Tensor::randn(&[5], &mut rng);
        let (gc, bc) = (gamma.clone(), beta.clone());
        assert!(gradcheck(
            move |g, v| {
                let ga = g.leaf(gc.clone());
                let be = g.leaf(bc.clone());
                let y = g.layer_norm(v, ga, be, 1e-5);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            3e-2
        ));
        let (xc, bc2) = (x.clone(), beta.clone());
        assert!(gradcheck(
            move |g, v| {
                let xv = g.leaf(xc.clone());
                let be = g.leaf(bc2.clone());
                let y = g.layer_norm(xv, v, be, 1e-5);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &gamma,
            1e-2,
            3e-2
        ));
        let (xc2, gc2) = (x.clone(), gamma.clone());
        assert!(gradcheck(
            move |g, v| {
                let xv = g.leaf(xc2.clone());
                let ga = g.leaf(gc2.clone());
                let y = g.layer_norm(xv, ga, v, 1e-5);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &beta,
            1e-2,
            3e-2
        ));
    }

    #[test]
    fn batch_norm_training_normalizes_channels() {
        let mut rng = Rng::seed_from(7);
        let mut g = Graph::training(0);
        let x = g.leaf(
            Tensor::randn(&[4, 3, 5, 5], &mut rng)
                .scale(3.0)
                .add_scalar(-1.0),
        );
        let gamma = g.leaf(Tensor::ones(&[3]));
        let beta = g.leaf(Tensor::zeros(&[3]));
        let (y, stats) = g.batch_norm2d(
            x,
            gamma,
            beta,
            &Tensor::zeros(&[3]),
            &Tensor::ones(&[3]),
            1e-5,
        );
        assert!(stats.is_some());
        let yv = g.value(y);
        // per-channel mean ~0, var ~1
        let (b, c, h, w) = yv.dims4();
        for ci in 0..c {
            let mut vals = Vec::new();
            for bi in 0..b {
                for p in 0..h * w {
                    vals.push(yv.data()[(bi * c + ci) * h * w + p]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn batch_norm_inference_uses_running_stats() {
        let mut g = Graph::new(); // inference
        let x = g.leaf(Tensor::full(&[1, 2, 2, 2], 3.0));
        let gamma = g.leaf(Tensor::ones(&[2]));
        let beta = g.leaf(Tensor::zeros(&[2]));
        let rm = Tensor::from_vec(vec![1.0, 3.0], &[2]).unwrap();
        let rv = Tensor::from_vec(vec![4.0, 1.0], &[2]).unwrap();
        let (y, stats) = g.batch_norm2d(x, gamma, beta, &rm, &rv, 0.0);
        assert!(stats.is_none());
        let yv = g.value(y);
        assert!((yv.get(&[0, 0, 0, 0]) - 1.0).abs() < 1e-4); // (3-1)/2
        assert!(yv.get(&[0, 1, 0, 0]).abs() < 1e-4); // (3-3)/1
    }

    #[test]
    fn batch_norm_training_gradcheck() {
        let mut rng = Rng::seed_from(8);
        let x = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        assert!(gradcheck(
            |g, v| {
                let gamma = g.leaf(Tensor::from_vec(vec![1.2, 0.7], &[2]).unwrap());
                let beta = g.leaf(Tensor::from_vec(vec![0.1, -0.2], &[2]).unwrap());
                let (y, _) = g.batch_norm2d(
                    v,
                    gamma,
                    beta,
                    &Tensor::zeros(&[2]),
                    &Tensor::ones(&[2]),
                    1e-5,
                );
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            5e-2
        ));
    }

    #[test]
    fn embedding_forward_and_scatter_backward() {
        let mut g = Graph::new();
        let w = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap());
        let e = g.embedding(w, &[2, 0, 2]);
        assert_eq!(g.value(e).data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = g.sum_all(e);
        g.backward(s);
        // row 2 used twice -> grad 2, row 0 once -> 1, row 1 unused -> 0
        assert_eq!(g.grad(w).unwrap().data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[4, 4], &mut rng);
        let mut g = Graph::new();
        let v = g.leaf(x.clone());
        let y = g.dropout(v, 0.5);
        assert!(g.value(y).allclose(&x, 0.0));
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let x = Tensor::ones(&[100, 100]);
        let mut g = Graph::training(13);
        let v = g.leaf(x);
        let y = g.dropout(v, 0.3);
        let mean = g.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // zeros really appear
        assert!(g.value(y).min() == 0.0);
    }
}
