//! Elementwise, broadcast and shape-manipulation ops.

use crate::graph::{Graph, Var};
use qn_tensor::Tensor;

impl Graph {
    /// Elementwise sum of two same-shape nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push_ephemeral(
            value,
            vec![a.id, b.id],
            Some(Box::new(|g: Tensor| vec![g.clone(), g])),
        )
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        self.push_ephemeral(
            value,
            vec![a.id, b.id],
            Some(Box::new(|g: Tensor| {
                let db = g.neg();
                vec![g, db]
            })),
        )
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = av.mul(&bv);
        self.push_ephemeral(
            value,
            vec![a.id, b.id],
            Some(Box::new(move |g: Tensor| {
                let da = g.mul(&bv);
                let mut db = g;
                db.zip_inplace(&av, |gi, ai| gi * ai);
                vec![da, db]
            })),
        )
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).scale(s);
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |mut g: Tensor| {
                g.map_inplace(move |v| v * s);
                vec![g]
            })),
        )
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).add_scalar(s);
        self.push_ephemeral(value, vec![a.id], Some(Box::new(|g: Tensor| vec![g])))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// Elementwise square `x²` (the `(·)⊙²` operation of Fan et al.).
    pub fn square(&mut self, a: Var) -> Var {
        let av = self.value(a).clone();
        let value = av.map(|v| v * v);
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |mut g: Tensor| {
                g.zip_inplace(&av, |gi, x| gi * x * 2.0);
                vec![g]
            })),
        )
    }

    /// Elementwise integer power `xᵖ` (`p >= 1`) — the polynomial kernel of
    /// kervolutional neurons.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` (use a constant instead).
    pub fn powi(&mut self, a: Var, p: i32) -> Var {
        assert!(p >= 1, "powi requires p >= 1, got {p}");
        let av = self.value(a).clone();
        let value = av.map(|v| v.powi(p));
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |mut g: Tensor| {
                g.zip_inplace(&av, |gi, x| gi * p as f32 * x.powi(p - 1));
                vec![g]
            })),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let av = self.value(a).clone();
        let value = av.map(|v| v.max(0.0));
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |mut g: Tensor| {
                // fused mask: the derivative rewrites the incoming gradient
                // in place instead of allocating a masked copy
                g.zip_inplace(&av, |gi, x| if x > 0.0 { gi } else { 0.0 });
                vec![g]
            })),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| v.tanh());
        let out = value.clone();
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |mut g: Tensor| {
                g.zip_inplace(&out, |gi, y| gi * (1.0 - y * y));
                vec![g]
            })),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| 1.0 / (1.0 + (-v).exp()));
        let out = value.clone();
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |mut g: Tensor| {
                g.zip_inplace(&out, |gi, y| gi * y * (1.0 - y));
                vec![g]
            })),
        )
    }

    // ----- broadcast arithmetic -------------------------------------------

    /// Adds `b` (whose shape is a trailing suffix of `a`'s shape) to `a`,
    /// broadcasting over the leading dims. Covers `[B, M] + [M]` biases and
    /// `[B, T, D] + [D]` affine shifts.
    ///
    /// # Panics
    ///
    /// Panics if `b`'s shape is not a trailing suffix of `a`'s.
    pub fn add_bcast(&mut self, a: Var, b: Var) -> Var {
        let value = add_bcast_forward(self.value(a), self.value(b));
        let bshape = self.value(b).shape().dims().to_vec();
        self.push_ephemeral(
            value,
            vec![a.id, b.id],
            Some(Box::new(move |g: Tensor| {
                let bl: usize = bshape.iter().product();
                let mut db = vec![0.0f32; bl];
                for chunk in g.data().chunks(bl) {
                    for (o, &x) in db.iter_mut().zip(chunk) {
                        *o += x;
                    }
                }
                let db = Tensor::from_vec(db, &bshape).expect("suffix shape consistent");
                vec![g, db]
            })),
        )
    }

    /// Multiplies `a` by `b` broadcast over the leading dims (shape-suffix
    /// rule as in [`Graph::add_bcast`]).
    ///
    /// # Panics
    ///
    /// Panics if `b`'s shape is not a trailing suffix of `a`'s.
    pub fn mul_bcast(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let out = mul_bcast_forward(&av, &bv);
        let bshape = bv.shape().dims().to_vec();
        self.push_ephemeral(
            out,
            vec![a.id, b.id],
            Some(Box::new(move |mut g: Tensor| {
                let bl: usize = bshape.iter().product();
                // db reads the *original* gradient, so compute it first,
                // then rescale g in place for da
                let mut db = vec![0.0f32; bl];
                for (gchunk, achunk) in g.data().chunks(bl).zip(av.data().chunks(bl)) {
                    for ((o, &gi), &ai) in db.iter_mut().zip(gchunk).zip(achunk) {
                        *o += gi * ai;
                    }
                }
                for chunk in g.data_mut().chunks_mut(bl) {
                    for (o, &x) in chunk.iter_mut().zip(bv.data()) {
                        *o *= x;
                    }
                }
                let db = Tensor::from_vec(db, &bshape).expect("suffix shape consistent");
                vec![g, db]
            })),
        )
    }

    /// Adds a per-channel bias `[C]` to a `[B, C, H, W]` activation.
    ///
    /// # Panics
    ///
    /// Panics on rank or width mismatch.
    pub fn add_channel(&mut self, a: Var, bias: Var) -> Var {
        let value = self.value(a).add_channel(self.value(bias));
        let dims = self.value(a).dims4();
        self.push_ephemeral(
            value,
            vec![a.id, bias.id],
            Some(Box::new(move |g: Tensor| {
                let (b, c, h, w) = dims;
                let mut db = vec![0.0f32; c];
                let hw = h * w;
                for bi in 0..b {
                    for (ci, dbc) in db.iter_mut().enumerate() {
                        let base = (bi * c + ci) * hw;
                        *dbc += g.data()[base..base + hw].iter().sum::<f32>();
                    }
                }
                let db = Tensor::from_vec(db, &[c]).expect("channel count consistent");
                vec![g, db]
            })),
        )
    }

    /// Multiplies a `[B, C, H, W]` activation by a per-channel scale `[C]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or width mismatch.
    pub fn mul_channel(&mut self, a: Var, scale: Var) -> Var {
        let av = self.value(a).clone();
        let sv = self.value(scale).clone();
        let value = av.mul_channel(&sv);
        let dims = av.dims4();
        self.push_ephemeral(
            value,
            vec![a.id, scale.id],
            Some(Box::new(move |mut g: Tensor| {
                let (b, c, h, w) = dims;
                let hw = h * w;
                // ds reads the original gradient; compute it before the
                // in-place per-channel rescale that produces da
                let mut ds = vec![0.0f32; c];
                for bi in 0..b {
                    for (ci, dsc) in ds.iter_mut().enumerate() {
                        let base = (bi * c + ci) * hw;
                        *dsc += g.data()[base..base + hw]
                            .iter()
                            .zip(&av.data()[base..base + hw])
                            .map(|(&gi, &ai)| gi * ai)
                            .sum::<f32>();
                    }
                }
                for bi in 0..b {
                    for ci in 0..c {
                        let base = (bi * c + ci) * hw;
                        let sc = sv.data()[ci];
                        for v in &mut g.data_mut()[base..base + hw] {
                            *v *= sc;
                        }
                    }
                }
                let ds = Tensor::from_vec(ds, &[c]).expect("channel count consistent");
                vec![g, ds]
            })),
        )
    }

    // ----- shape ops -------------------------------------------------------

    /// Reshapes to `dims` (element count must match).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        let old_dims = self.value(a).shape().dims().to_vec();
        let value = self
            .value(a)
            .reshape(dims)
            .unwrap_or_else(|e| panic!("reshape: {e}"));
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |g: Tensor| {
                vec![g
                    .into_reshaped(&old_dims)
                    .expect("inverse reshape consistent")]
            })),
        )
    }

    /// Permutes axes; the backward pass applies the inverse permutation.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is not a permutation.
    pub fn permute(&mut self, a: Var, axes: &[usize]) -> Var {
        let value = self.value(a).permute(axes);
        let mut inverse = vec![0usize; axes.len()];
        for (i, &ax) in axes.iter().enumerate() {
            inverse[ax] = i;
        }
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |g: Tensor| vec![g.permute(&inverse)])),
        )
    }

    /// Concatenates nodes along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes are incompatible.
    pub fn concat(&mut self, parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero vars");
        let tensors: Vec<Tensor> = parts.iter().map(|v| self.value(*v).clone()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let value = Tensor::concat(&refs, axis);
        let sizes: Vec<usize> = tensors.iter().map(|t| t.shape().dim(axis)).collect();
        let ids: Vec<usize> = parts.iter().map(|v| v.id).collect();
        self.push_ephemeral(
            value,
            ids,
            Some(Box::new(move |g: Tensor| {
                let mut grads = Vec::with_capacity(sizes.len());
                let mut start = 0usize;
                for &s in &sizes {
                    grads.push(g.slice_axis(axis, start, start + s));
                    start += s;
                }
                grads
            })),
        )
    }

    /// Copies the half-open `[start, end)` range of `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_axis(&mut self, a: Var, axis: usize, start: usize, end: usize) -> Var {
        let full = self.value(a).shape().dims().to_vec();
        let value = self.value(a).slice_axis(axis, start, end);
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |g: Tensor| {
                // embed the slice gradient into a zero tensor of the full shape
                let mut parts: Vec<Tensor> = Vec::new();
                if start > 0 {
                    let mut dims = full.clone();
                    dims[axis] = start;
                    parts.push(Tensor::zeros(&dims));
                }
                parts.push(g);
                if end < full[axis] {
                    let mut dims = full.clone();
                    dims[axis] = full[axis] - end;
                    parts.push(Tensor::zeros(&dims));
                }
                let refs: Vec<&Tensor> = parts.iter().collect();
                vec![Tensor::concat(&refs, axis)]
            })),
        )
    }

    // ----- reductions ----------------------------------------------------------

    /// Sum of all elements, as a `[1]` tensor.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let dims = self.value(a).shape().dims().to_vec();
        let value = Tensor::from_vec(vec![self.value(a).sum()], &[1]).expect("scalar");
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |g: Tensor| {
                vec![Tensor::full(&dims, g.data()[0])]
            })),
        )
    }

    /// Mean of all elements, as a `[1]` tensor.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).numel() as f32;
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n)
    }

    /// Sums over `axis`, removing it.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn sum_axis(&mut self, a: Var, axis: usize) -> Var {
        let dims = self.value(a).shape().dims().to_vec();
        let value = self.value(a).sum_axis(axis);
        self.push_ephemeral(
            value,
            vec![a.id],
            Some(Box::new(move |g: Tensor| {
                // broadcast g back along the removed axis
                let outer: usize = dims[..axis].iter().product();
                let mid = dims[axis];
                let inner: usize = dims[axis + 1..].iter().product();
                let mut out = vec![0.0f32; outer * mid * inner];
                for o in 0..outer {
                    for m in 0..mid {
                        let dst = (o * mid + m) * inner;
                        let src = o * inner;
                        out[dst..dst + inner].copy_from_slice(&g.data()[src..src + inner]);
                    }
                }
                vec![Tensor::from_vec(out, &dims).expect("shape consistent")]
            })),
        )
    }

    /// Mean over `axis`, removing it.
    pub fn mean_axis(&mut self, a: Var, axis: usize) -> Var {
        let n = self.value(a).shape().dim(axis) as f32;
        let s = self.sum_axis(a, axis);
        self.scale(s, 1.0 / n)
    }
}

/// Forward computation of [`Graph::add_bcast`], shared with the eager
/// execution path.
pub(crate) fn add_bcast_forward(av: &Tensor, bv: &Tensor) -> Tensor {
    bcast_lead(av, bv);
    let mut out = av.clone();
    let bl = bv.numel();
    for chunk in out.data_mut().chunks_mut(bl) {
        for (o, &x) in chunk.iter_mut().zip(bv.data()) {
            *o += x;
        }
    }
    out
}

/// Forward computation of [`Graph::mul_bcast`], shared with the eager
/// execution path.
pub(crate) fn mul_bcast_forward(av: &Tensor, bv: &Tensor) -> Tensor {
    bcast_lead(av, bv);
    let mut out = av.clone();
    let bl = bv.numel();
    for chunk in out.data_mut().chunks_mut(bl) {
        for (o, &x) in chunk.iter_mut().zip(bv.data()) {
            *o *= x;
        }
    }
    out
}

/// Validates the suffix-broadcast contract and returns the number of leading
/// broadcast elements. Shared with the eager execution path.
pub(crate) fn bcast_lead(a: &Tensor, b: &Tensor) -> usize {
    let ad = a.shape().dims();
    let bd = b.shape().dims();
    assert!(
        bd.len() <= ad.len() && ad[ad.len() - bd.len()..] == *bd,
        "broadcast shape {:?} is not a trailing suffix of {:?}",
        bd,
        ad
    );
    ad[..ad.len() - bd.len()].iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use qn_tensor::Rng;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn add_sub_mul_forward() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0, 2.0], &[2]));
        let b = g.leaf(t(&[3.0, 4.0], &[2]));
        let sum = g.add(a, b);
        assert_eq!(g.value(sum).data(), &[4.0, 6.0]);
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0, 2.0], &[2]));
        let b = g.leaf(t(&[3.0, 4.0], &[2]));
        let d = g.sub(a, b);
        assert_eq!(g.value(d).data(), &[-2.0, -2.0]);
        let m = g.mul(a, b);
        assert_eq!(g.value(m).data(), &[3.0, 8.0]);
    }

    #[test]
    fn gradcheck_elementwise() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[3, 4], &mut rng);
        assert!(gradcheck(
            |g, v| {
                let y = g.square(v);
                g.sum_all(y)
            },
            &x,
            1e-2,
            2e-2
        ));
        assert!(gradcheck(
            |g, v| {
                let y = g.tanh(v);
                g.sum_all(y)
            },
            &x,
            1e-2,
            2e-2
        ));
        assert!(gradcheck(
            |g, v| {
                let y = g.sigmoid(v);
                g.sum_all(y)
            },
            &x,
            1e-2,
            2e-2
        ));
        assert!(gradcheck(
            |g, v| {
                let y = g.powi(v, 3);
                g.sum_all(y)
            },
            &x,
            1e-2,
            5e-2
        ));
        assert!(gradcheck(
            |g, v| {
                let y = g.scale(v, -2.5);
                g.sum_all(y)
            },
            &x,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn gradcheck_relu_away_from_kink() {
        let mut rng = Rng::seed_from(2);
        // keep values away from 0 so finite differences are valid
        let x = Tensor::randn(&[3, 3], &mut rng).map(|v| if v.abs() < 0.2 { v + 0.5 } else { v });
        assert!(gradcheck(
            |g, v| {
                let y = g.relu(v);
                g.sum_all(y)
            },
            &x,
            1e-3,
            2e-2
        ));
    }

    #[test]
    fn add_bcast_forward_and_grad() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = g.leaf(t(&[10.0, 20.0], &[2]));
        let y = g.add_bcast(a, b);
        assert_eq!(g.value(y).data(), &[11.0, 22.0, 13.0, 24.0]);
        let s = g.sum_all(y);
        g.backward(s);
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 2.0]);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn mul_bcast_gradcheck_both_sides() {
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn(&[2, 3, 4], &mut rng);
        let w = Tensor::randn(&[3, 4], &mut rng);
        let wc = w.clone();
        assert!(gradcheck(
            move |g, v| {
                let wv = g.leaf(wc.clone());
                let y = g.mul_bcast(v, wv);
                g.sum_all(y)
            },
            &x,
            1e-2,
            2e-2
        ));
        let xc = x.clone();
        assert!(gradcheck(
            move |g, v| {
                let xv = g.leaf(xc.clone());
                let y = g.mul_bcast(xv, v);
                g.sum_all(y)
            },
            &w,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn channel_ops_grad() {
        let mut rng = Rng::seed_from(4);
        let x = Tensor::randn(&[2, 3, 2, 2], &mut rng);
        let bias = Tensor::randn(&[3], &mut rng);
        let bc = bias.clone();
        assert!(gradcheck(
            move |g, v| {
                let b = g.leaf(bc.clone());
                let y = g.add_channel(v, b);
                let y2 = g.square(y);
                g.sum_all(y2)
            },
            &x,
            1e-2,
            2e-2
        ));
        let xc = x.clone();
        assert!(gradcheck(
            move |g, v| {
                let xv = g.leaf(xc.clone());
                let y = g.mul_channel(xv, v);
                g.sum_all(y)
            },
            &bias,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn reshape_permute_grad_flow() {
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[2, 3, 4], &mut rng);
        assert!(gradcheck(
            |g, v| {
                let r = g.reshape(v, &[6, 4]);
                let p = g.permute(r, &[1, 0]);
                let sq = g.square(p);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn concat_slice_grads() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[1.0, 2.0], &[1, 2]));
        let b = g.leaf(t(&[3.0, 4.0, 5.0], &[1, 3]));
        let c = g.concat(&[a, b], 1);
        assert_eq!(g.value(c).data(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let sl = g.slice_axis(c, 1, 1, 4);
        let sq = g.square(sl);
        let s = g.sum_all(sq);
        g.backward(s);
        // d/dx of x² over sliced [2, 3, 4]
        assert_eq!(g.grad(a).unwrap().data(), &[0.0, 4.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[6.0, 8.0, 0.0]);
    }

    #[test]
    fn sum_axis_grad() {
        let mut rng = Rng::seed_from(6);
        let x = Tensor::randn(&[3, 4, 2], &mut rng);
        for axis in 0..3 {
            assert!(
                gradcheck(
                    move |g, v| {
                        let s = g.sum_axis(v, axis);
                        let sq = g.square(s);
                        g.sum_all(sq)
                    },
                    &x,
                    1e-2,
                    3e-2
                ),
                "axis {axis}"
            );
        }
    }

    #[test]
    fn mean_ops() {
        let mut g = Graph::new();
        let a = g.leaf(t(&[2.0, 4.0, 6.0, 8.0], &[2, 2]));
        let m = g.mean_all(a);
        assert!((g.value(m).data()[0] - 5.0).abs() < 1e-6);
        let ma = g.mean_axis(a, 0);
        assert_eq!(g.value(ma).data(), &[4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "trailing suffix")]
    fn bad_broadcast_panics() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::zeros(&[2, 3]));
        let b = g.leaf(Tensor::zeros(&[2]));
        g.add_bcast(a, b);
    }
}
