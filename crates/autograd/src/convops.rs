//! Convolution and pooling ops (im2col lowering shared with quadratic convs).

use crate::graph::{Graph, Var};
use qn_tensor::{
    avg_pool2d, avg_pool2d_backward, col2im, im2col, max_pool2d, max_pool2d_backward, Conv2dSpec,
    PoolSpec, Tensor,
};

impl Graph {
    /// Lowers `[B, C, H, W]` to patch rows `[B·OH·OW, C·K·K]` (differentiable
    /// im2col). Quadratic convolutions are built on this: the patch row *is*
    /// the neuron input `x`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D or smaller than the kernel.
    pub fn im2col(&mut self, x: Var, spec: Conv2dSpec) -> Var {
        let dims = self.value(x).dims4();
        let value = im2col(self.value(x), spec);
        self.push_ephemeral(
            value,
            vec![x.id],
            Some(Box::new(move |g: Tensor| vec![col2im(&g, spec, dims)])),
        )
    }

    /// 2-D convolution of `[B, C, H, W]` with filters `[OC, C, K, K]`,
    /// producing `[B, OC, OH, OW]`.
    ///
    /// # Panics
    ///
    /// Panics on geometry mismatch.
    pub fn conv2d(&mut self, x: Var, weight: Var, spec: Conv2dSpec) -> Var {
        let (b, c, h, w) = self.value(x).dims4();
        let (oc, wc, kh, kw) = self.value(weight).dims4();
        assert_eq!(c, wc, "conv2d channel mismatch: input {c}, weight {wc}");
        assert_eq!(kh, spec.kernel, "conv2d kernel mismatch");
        assert_eq!(kw, spec.kernel, "conv2d kernel mismatch");
        let (oh, ow) = spec.output_hw(h, w);
        let cols = self.im2col(x, spec); // [B*OH*OW, C*K*K]
        let wmat = self.reshape(weight, &[oc, c * kh * kw]);
        let out = self.matmul_transb(cols, wmat); // [B*OH*OW, OC]
        let out = self.reshape(out, &[b, oh, ow, oc]);
        self.permute(out, &[0, 3, 1, 2])
    }

    /// Max pooling with a square window.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D or smaller than the window.
    pub fn max_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var {
        let dims = self.value(x).dims4();
        let (value, argmax) = max_pool2d(self.value(x), spec);
        self.push_ephemeral(
            value,
            vec![x.id],
            Some(Box::new(move |g: Tensor| {
                vec![max_pool2d_backward(&g, &argmax, dims)]
            })),
        )
    }

    /// Average pooling with a square window.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D or smaller than the window.
    pub fn avg_pool2d(&mut self, x: Var, spec: PoolSpec) -> Var {
        let dims = self.value(x).dims4();
        let value = avg_pool2d(self.value(x), spec);
        self.push_ephemeral(
            value,
            vec![x.id],
            Some(Box::new(move |g: Tensor| {
                vec![avg_pool2d_backward(&g, spec, dims)]
            })),
        )
    }

    /// Global average pooling: `[B, C, H, W] -> [B, C]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D.
    pub fn global_avg_pool(&mut self, x: Var) -> Var {
        let (b, c, h, w) = self.value(x).dims4();
        let spec = PoolSpec::new(h, 1);
        assert_eq!(h, w, "global_avg_pool expects square feature maps");
        let pooled = self.avg_pool2d(x, spec); // [B, C, 1, 1]
        self.reshape(pooled, &[b, c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use qn_tensor::Rng;

    #[test]
    fn conv2d_gradcheck_input_and_weight() {
        let mut rng = Rng::seed_from(7);
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::randn(&[2, 2, 4, 4], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng).scale(0.5);
        let wc = w.clone();
        assert!(gradcheck(
            move |g, v| {
                let wv = g.leaf(wc.clone());
                let y = g.conv2d(v, wv, spec);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            3e-2
        ));
        let xc = x.clone();
        assert!(gradcheck(
            move |g, v| {
                let xv = g.leaf(xc.clone());
                let y = g.conv2d(xv, v, spec);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &w,
            1e-2,
            3e-2
        ));
    }

    #[test]
    fn strided_conv_shapes() {
        let mut rng = Rng::seed_from(8);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[1, 2, 8, 8], &mut rng));
        let w = g.leaf(Tensor::randn(&[4, 2, 3, 3], &mut rng));
        let y = g.conv2d(x, w, Conv2dSpec::new(3, 2, 1));
        assert_eq!(g.value(y).shape().dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn max_pool_gradcheck() {
        let rng = Rng::seed_from(9);
        // well-separated values so the argmax does not flip under perturbation
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| (i as f32 * 7.3) % 11.0);
        let _ = rng;
        assert!(gradcheck(
            |g, v| {
                let y = g.max_pool2d(v, PoolSpec::new(2, 2));
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &x,
            1e-3,
            2e-2
        ));
    }

    #[test]
    fn avg_pool_gradcheck() {
        let mut rng = Rng::seed_from(10);
        let x = Tensor::randn(&[2, 2, 4, 4], &mut rng);
        assert!(gradcheck(
            |g, v| {
                let y = g.avg_pool2d(v, PoolSpec::new(2, 2));
                let sq = g.square(y);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            2e-2
        ));
    }

    #[test]
    fn global_avg_pool_shape_and_value() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[2, 3, 4, 4]));
        let y = g.global_avg_pool(x);
        assert_eq!(g.value(y).shape().dims(), &[2, 3]);
        assert!(g.value(y).allclose(&Tensor::ones(&[2, 3]), 1e-6));
    }

    #[test]
    fn im2col_gradcheck() {
        let mut rng = Rng::seed_from(11);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        assert!(gradcheck(
            |g, v| {
                let cols = g.im2col(v, Conv2dSpec::new(3, 1, 1));
                let sq = g.square(cols);
                g.sum_all(sq)
            },
            &x,
            1e-2,
            3e-2
        ));
    }
}
