//! Named model slots with atomic hot-swap for serving.
//!
//! A [`ModelRegistry`] maps names to shared-ownership models. Publishing a
//! new model into an existing slot is an **atomic hot-swap**: readers that
//! grabbed the old [`Arc`] keep serving it untouched, new sessions see the
//! new weights, and the old model is dropped when its last session drops.
//! Each publish bumps the slot's generation counter, which
//! [`RegistrySession`] polls to lazily rebuild its serving session after a
//! swap — the serving loop never blocks on a weight reload.
//!
//! Combined with [`qn_nn::checkpoint`] this gives zero-downtime weight
//! updates: load a checkpoint into a fresh model (zero-copy via
//! [`LoadMode::Mapped`](qn_nn::LoadMode)), then [`publish`] it over the
//! running slot.
//!
//! [`publish`]: ModelRegistry::publish
//!
//! # Example
//!
//! ```
//! use qn_models::{ModelRegistry, RegistrySession};
//! use qn_nn::{Linear, Module};
//! use qn_tensor::{Rng, Tensor};
//! use std::sync::Arc;
//!
//! let registry = ModelRegistry::new();
//! let mut rng = Rng::seed_from(0);
//! registry.publish("clf", Arc::new(Linear::new(4, 2, true, &mut rng)));
//!
//! let mut session = registry.session("clf").unwrap();
//! let before = session.predict(&Tensor::ones(&[4]));
//!
//! // hot-swap: publish retrained weights; the session picks them up
//! registry.publish("clf", Arc::new(Linear::new(4, 2, true, &mut rng)));
//! let after = session.predict(&Tensor::ones(&[4]));
//! assert!(!before.bit_identical(&after));
//! ```

use crate::InferenceSession;
use qn_nn::Module;
use qn_tensor::Tensor;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A published model plus its generation.
struct Slot {
    model: Arc<dyn Module + Send + Sync>,
    generation: u64,
}

/// Thread-safe name → model map with atomically hot-swappable slots.
#[derive(Default)]
pub struct ModelRegistry {
    slots: RwLock<HashMap<String, Slot>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            slots: RwLock::new(HashMap::new()),
        }
    }

    /// Publishes `model` under `name`, replacing any previous model in one
    /// atomic swap, and returns the slot's new generation (1 for a fresh
    /// slot). In-flight sessions keep serving the model they hold; new and
    /// refreshed sessions see this one.
    pub fn publish(&self, name: &str, model: Arc<dyn Module + Send + Sync>) -> u64 {
        let mut slots = self.slots.write().expect("registry lock poisoned");
        match slots.get_mut(name) {
            Some(slot) => {
                slot.generation += 1;
                slot.model = model;
                slot.generation
            }
            None => {
                slots.insert(
                    name.to_string(),
                    Slot {
                        model,
                        generation: 1,
                    },
                );
                1
            }
        }
    }

    /// Removes a slot, returning its model if it existed. Sessions already
    /// holding the model keep working.
    pub fn retire(&self, name: &str) -> Option<Arc<dyn Module + Send + Sync>> {
        let mut slots = self.slots.write().expect("registry lock poisoned");
        slots.remove(name).map(|s| s.model)
    }

    /// A shared handle to the current model under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Module + Send + Sync>> {
        let slots = self.slots.read().expect("registry lock poisoned");
        slots.get(name).map(|s| Arc::clone(&s.model))
    }

    /// The slot's current generation (bumped on every publish).
    pub fn generation(&self, name: &str) -> Option<u64> {
        let slots = self.slots.read().expect("registry lock poisoned");
        slots.get(name).map(|s| s.generation)
    }

    /// All slot names, sorted.
    pub fn names(&self) -> Vec<String> {
        let slots = self.slots.read().expect("registry lock poisoned");
        let mut names: Vec<String> = slots.keys().cloned().collect();
        names.sort();
        names
    }

    /// Opens a generation-tracking serving session on a slot. Returns
    /// `None` for an unknown name.
    pub fn session<'r>(&'r self, name: &str) -> Option<RegistrySession<'r>> {
        let (model, generation) = {
            let slots = self.slots.read().expect("registry lock poisoned");
            let slot = slots.get(name)?;
            (Arc::clone(&slot.model), slot.generation)
        };
        Some(RegistrySession {
            registry: self,
            name: name.to_string(),
            generation,
            session: InferenceSession::owned(model),
        })
    }
}

/// An [`InferenceSession`] bound to a registry slot: before every request
/// it compares its generation against the slot's and rebuilds the session
/// when a newer model was published (cheap check, no lock while serving).
pub struct RegistrySession<'r> {
    registry: &'r ModelRegistry,
    name: String,
    generation: u64,
    session: InferenceSession<'static>,
}

impl RegistrySession<'_> {
    /// The generation of the model this session currently serves.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Picks up a newer published model if there is one. Returns `true`
    /// when the session was rebuilt. Called implicitly by
    /// [`RegistrySession::predict`] / [`predict_batch`]; call it directly
    /// to control when the swap cost (a fresh arena) is paid.
    ///
    /// If the slot was retired, the session keeps serving the model it
    /// already holds.
    ///
    /// [`predict_batch`]: RegistrySession::predict_batch
    pub fn refresh(&mut self) -> bool {
        match self.registry.generation(&self.name) {
            Some(generation) if generation != self.generation => {
                let model = self
                    .registry
                    .get(&self.name)
                    .expect("slot exists at this generation");
                self.session = InferenceSession::owned(model);
                self.generation = generation;
                true
            }
            _ => false,
        }
    }

    /// [`InferenceSession::predict`] against the latest published model.
    ///
    /// # Panics
    ///
    /// Panics if the sample's shape does not fit the model.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        self.refresh();
        self.session.predict(x)
    }

    /// [`InferenceSession::predict_batch`] against the latest published
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if the batch's shape does not fit the model.
    pub fn predict_batch(&mut self, x: &Tensor) -> Tensor {
        self.refresh();
        self.session.predict_batch(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NeuronPlacement, ResNet, ResNetConfig};
    use qn_core::NeuronSpec;
    use qn_nn::{checkpoint, Linear, LoadMode};
    use qn_tensor::Rng;

    fn tiny_net(seed: u64) -> ResNet {
        ResNet::cifar(ResNetConfig {
            depth: 8,
            base_width: 4,
            num_classes: 10,
            neuron: NeuronSpec::EfficientQuadratic { rank: 3 },
            placement: NeuronPlacement::All,
            seed,
        })
    }

    #[test]
    fn publish_and_get_roundtrip() {
        let reg = ModelRegistry::new();
        assert!(reg.get("missing").is_none());
        let mut rng = Rng::seed_from(0);
        assert_eq!(
            reg.publish("a", Arc::new(Linear::new(2, 2, false, &mut rng))),
            1
        );
        assert_eq!(
            reg.publish("a", Arc::new(Linear::new(2, 2, false, &mut rng))),
            2
        );
        assert_eq!(reg.generation("a"), Some(2));
        assert_eq!(reg.names(), vec!["a".to_string()]);
        assert!(reg.get("a").is_some());
        assert!(reg.retire("a").is_some());
        assert!(reg.get("a").is_none());
    }

    #[test]
    fn hot_swap_changes_session_outputs() {
        let reg = ModelRegistry::new();
        reg.publish("net", Arc::new(tiny_net(1)));
        let mut session = reg.session("net").unwrap();
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[3, 16, 16], &mut rng);
        let before = session.predict(&x);
        assert_eq!(session.generation(), 1);

        reg.publish("net", Arc::new(tiny_net(2)));
        let after = session.predict(&x);
        assert_eq!(session.generation(), 2);
        assert!(!before.bit_identical(&after), "new weights must serve");

        // republishing identical weights keeps outputs bit-identical
        reg.publish("net", Arc::new(tiny_net(2)));
        let again = session.predict(&x);
        assert_eq!(session.generation(), 3);
        assert!(after.bit_identical(&again));
    }

    #[test]
    fn retired_slot_keeps_serving_old_model() {
        let reg = ModelRegistry::new();
        reg.publish("net", Arc::new(tiny_net(1)));
        let mut session = reg.session("net").unwrap();
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[3, 16, 16], &mut rng);
        let before = session.predict(&x);
        reg.retire("net");
        let after = session.predict(&x);
        assert!(before.bit_identical(&after));
        assert!(reg.session("net").is_none());
    }

    #[test]
    fn checkpoint_reload_publishes_identical_model() {
        let src = tiny_net(3);
        let path = std::env::temp_dir().join("qn_registry_swap.qnckpt");
        checkpoint::save_module(&src, &[], &path).expect("save");

        let reg = ModelRegistry::new();
        reg.publish("net", Arc::new(src));
        let mut session = reg.session("net").unwrap();
        let mut rng = Rng::seed_from(11);
        let x = Tensor::randn(&[3, 16, 16], &mut rng);
        let before = session.predict(&x);

        // reload the same weights into a differently-seeded skeleton and swap
        let reloaded = tiny_net(4);
        checkpoint::load_module(&reloaded, &path, LoadMode::Mapped).expect("load");
        reg.publish("net", Arc::new(reloaded));
        let after = session.predict(&x);
        assert!(before.bit_identical(&after));
        let _ = std::fs::remove_file(&path);
    }
}
